"""Unit tests for the fault-injection subsystem (repro.faults)."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    BudgetShock,
    DeliveryFaults,
    FaultInjector,
    FaultPlan,
    OutageWindow,
    StragglerSpikes,
    WorkerChurn,
    chaos_suite,
    random_plan,
    run_chaos,
)
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.pool import WorkerPool


def full_plan(seed=3):
    return FaultPlan(
        seed=seed,
        outages=(OutageWindow(start=100.0, end=250.0),),
        churn=WorkerChurn(leave_rate=0.1, join_rate=0.5),
        delivery=DeliveryFaults(duplicate_rate=0.1, late_rate=0.2, corrupt_rate=0.05),
        stragglers=StragglerSpikes(rate=0.2, multiplier=6.0),
        budget_shocks=(BudgetShock(at_batch=2, factor=0.5),),
        name="full",
    )


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        plan = FaultPlan(seed=0)
        assert plan.empty
        assert plan.outage_delay(0.0) == 0.0
        assert plan.shock_factor(0) is None
        assert not full_plan().empty

    def test_outage_delay_inside_window(self):
        plan = FaultPlan(seed=0, outages=(OutageWindow(start=10.0, end=40.0),))
        assert plan.outage_delay(25.0) == pytest.approx(15.0)
        assert plan.outage_delay(40.0) == 0.0
        assert plan.outage_delay(5.0) == 0.0

    def test_validation_rejects_bad_window(self):
        with pytest.raises(FaultPlanError):
            OutageWindow(start=50.0, end=10.0)

    def test_validation_rejects_bad_rates(self):
        with pytest.raises(FaultPlanError):
            DeliveryFaults(duplicate_rate=1.5)
        with pytest.raises(FaultPlanError):
            WorkerChurn(leave_rate=-0.1)
        with pytest.raises(FaultPlanError):
            StragglerSpikes(rate=0.1, multiplier=0.5)
        with pytest.raises(FaultPlanError):
            BudgetShock(at_batch=-1, factor=0.5)

    def test_json_round_trip(self, tmp_path):
        plan = full_plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        loaded = FaultPlan.from_file(path)
        assert loaded == plan

    def test_from_dict_round_trip(self):
        plan = full_plan(seed=9)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_to_json_is_valid_json(self):
        payload = json.loads(full_plan().to_json())
        assert payload["seed"] == 3

    def test_random_plan_is_deterministic(self):
        assert random_plan(5) == random_plan(5)
        assert random_plan(5) != random_plan(6)

    def test_random_plan_intensity_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            random_plan(0, intensity=0.0)


class TestFaultInjector:
    def make_platform(self, seed=11, pool_size=8):
        pool = WorkerPool.heterogeneous(
            pool_size, accuracy_low=0.7, accuracy_high=0.95, seed=seed
        )
        return SimulatedPlatform(pool, seed=seed + 1)

    def test_delivery_is_deterministic_per_stream(self):
        plan = FaultPlan(
            seed=4, delivery=DeliveryFaults(duplicate_rate=0.5, late_rate=0.5)
        )
        platform = self.make_platform()
        task = single_choice("q?", ("yes", "no"), truth="yes")
        platform.publish([task])
        answer = platform.ask(task)
        first = FaultInjector(plan).deliver(answer, task, stream=7)
        second = FaultInjector(plan).deliver(answer, task, stream=7)
        assert [a.submitted_at for a in [first[0], *first[1]]] == [
            a.submitted_at for a in [second[0], *second[1]]
        ]
        assert first[2] == second[2]

    def test_duplicates_are_not_charged(self):
        plan = FaultPlan(seed=2, delivery=DeliveryFaults(duplicate_rate=1.0))
        platform = self.make_platform()
        task = single_choice("q?", ("yes", "no"), truth="yes")
        platform.publish([task])
        answer = platform.ask(task)
        _, duplicates, names = FaultInjector(plan).deliver(answer, task, stream=0)
        assert duplicates and all(d.reward_paid == 0.0 for d in duplicates)
        assert "duplicated" in names

    def test_corruption_flips_the_value(self):
        plan = FaultPlan(seed=2, delivery=DeliveryFaults(corrupt_rate=1.0))
        platform = self.make_platform()
        task = single_choice("q?", ("yes", "no"), truth="yes")
        platform.publish([task])
        answer = platform.ask(task)
        delivered, _, names = FaultInjector(plan).deliver(answer, task, stream=0)
        assert "corrupted" in names
        assert delivered.value in task.options

    def test_churn_respects_min_pool(self):
        plan = FaultPlan(seed=6, churn=WorkerChurn(leave_rate=1.0, join_rate=0.0))
        platform = self.make_platform(pool_size=5)
        FaultInjector(plan).on_batch_start(0, platform, redundancy=3)
        assert sum(1 for w in platform.pool if w.active) >= 3

    def test_churn_joins_use_deterministic_ids(self):
        plan = FaultPlan(seed=6, churn=WorkerChurn(leave_rate=0.0, join_rate=3.0))
        platform = self.make_platform()
        before = {w.worker_id for w in platform.pool}
        FaultInjector(plan).on_batch_start(1, platform, redundancy=3)
        joined = {w.worker_id for w in platform.pool} - before
        assert joined and all(w.startswith("j6b1n") for w in joined)

    def test_budget_shock_shrinks_remaining_budget(self):
        plan = FaultPlan(seed=0, budget_shocks=(BudgetShock(at_batch=0, factor=0.5),))
        pool = WorkerPool.heterogeneous(5, accuracy_low=0.7, accuracy_high=0.9, seed=0)
        platform = SimulatedPlatform(pool, budget=10.0, seed=1)
        FaultInjector(plan).on_batch_start(0, platform, redundancy=3)
        assert platform.budget == pytest.approx(5.0)

    def test_straggler_perturbs_duration(self):
        plan = FaultPlan(seed=1, stragglers=StragglerSpikes(rate=1.0, multiplier=10.0))
        injector = FaultInjector(plan)
        duration, straggled = injector.perturb_duration(0, 10.0)
        assert straggled and duration == pytest.approx(100.0)


class TestChaosHarness:
    def test_same_seed_same_digest(self):
        a = run_chaos(0, n_tasks=16, n_workers=8)
        b = run_chaos(0, n_tasks=16, n_workers=8)
        assert a.digest == b.digest
        assert a.checks == b.checks

    def test_different_seeds_differ(self):
        a = run_chaos(0, n_tasks=16, n_workers=8)
        b = run_chaos(1, n_tasks=16, n_workers=8)
        assert a.digest != b.digest

    def test_survival_contract_checks_recorded(self):
        report = run_chaos(2, n_tasks=16, n_workers=8)
        assert report.survived
        assert "cost_spent equals the sum of rewards paid" in report.checks
        assert "degrade keeps a key for every requested task" in report.checks

    def test_tight_budget_degrades_instead_of_crashing(self):
        report = run_chaos(3, n_tasks=30, n_workers=8, budget=0.25)
        coverage = report.result.coverage
        assert coverage.requested == 30
        assert coverage.failed > 0
        assert report.result.degraded

    def test_suite_runs_many_seeds(self):
        reports = chaos_suite(range(2), n_tasks=10, n_workers=6)
        assert [r.seed for r in reports] == [0, 1]
        summaries = [r.summary() for r in reports]
        assert all("coverage" in s for s in summaries)
