"""Integration tests: cross-module end-to-end scenarios.

Each test exercises a realistic pipeline the way a downstream user would —
multiple subsystems composed through public APIs only.
"""

from repro import CrowdEngine, CrowdOracle, EngineConfig
from repro.cost.pruning import SimilarityPruner
from repro.experiments.datasets import er_dataset, fill_dataset, ranking_dataset
from repro.operators.collect import CrowdCollect, bind_zipf_knowledge
from repro.operators.join import CrowdJoin
from repro.platform.platform import SimulatedPlatform
from repro.quality.assignment import Cdas, Qasca, run_assignment
from repro.quality.truth import DawidSkene, MajorityVote
from repro.quality.workerqc import GoldInjector, eliminate_spammers
from repro.workers.models import CollectorModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

from conftest import make_choice_tasks


class TestQualityPipeline:
    def test_gold_screen_then_label_then_infer(self):
        """Qualification via gold -> eliminate -> label with DS inference."""
        pool = WorkerPool.with_spammers(24, spammer_fraction=0.25, good_accuracy=0.88, seed=1)
        platform = SimulatedPlatform(pool, seed=2)

        gold = make_choice_tasks(25, labels=("yes", "no"), seed=3)
        for g in gold:
            g.is_gold = True
        injector = GoldInjector(gold_tasks=gold, seed=4)
        gold_answers = platform.collect(gold, redundancy=8)
        tasks_by_id = {g.task_id: g for g in gold}
        for answers in gold_answers.values():
            injector.score(answers, tasks_by_id)
        eliminate_spammers(
            pool, injector.worker_accuracy(), injector.gold_counts(), min_observations=5
        )

        real = make_choice_tasks(80, labels=("yes", "no"), seed=5)
        answers = platform.collect(real, redundancy=5)
        result = DawidSkene().infer(answers)
        truth = {t.task_id: t.truth for t in real}
        assert result.accuracy_against(truth) > 0.9

    def test_online_assignment_feeds_inference(self):
        pool = WorkerPool.heterogeneous(25, seed=6)
        platform = SimulatedPlatform(pool, seed=7)
        tasks = make_choice_tasks(60, labels=("yes", "no"), seed=8)
        strategy = Qasca(redundancy_cap=7, confidence_target=0.9)
        outcome = run_assignment(platform, strategy, tasks, max_answers=240)
        result = MajorityVote().infer(outcome.answers_by_task)
        truth = {t.task_id: t.truth for t in tasks}
        assert result.accuracy_against(truth) > 0.8
        assert outcome.cost <= 2.4 + 1e-9

    def test_cdas_saves_versus_fixed_at_same_quality(self):
        def run(strategy_factory, seed):
            pool = WorkerPool.uniform(20, 0.9, seed=seed)
            platform = SimulatedPlatform(pool, seed=seed + 1)
            tasks = make_choice_tasks(50, labels=("yes", "no"), seed=seed)
            strategy = strategy_factory()
            outcome = run_assignment(platform, strategy, tasks, max_answers=10_000)
            truth = {t.task_id: t.truth for t in tasks}
            inferred = (
                strategy.inferred_truths()
                if hasattr(strategy, "inferred_truths")
                else MajorityVote().infer(outcome.answers_by_task).truths
            )
            accuracy = sum(1 for t in truth if inferred[t] == truth[t]) / len(truth)
            return outcome.answers_used, accuracy

        from repro.quality.assignment import RoundRobinAssignment

        fixed_answers, fixed_acc = run(lambda: RoundRobinAssignment(redundancy=5), 10)
        cdas_answers, cdas_acc = run(lambda: Cdas(confidence=0.92, min_answers=2), 10)
        assert cdas_answers < fixed_answers
        assert cdas_acc >= fixed_acc - 0.06


class TestEntityResolutionPipeline:
    def test_prune_dedupe_full_stack(self):
        ds = er_dataset(n_entities=20, records_per_entity=(2, 3), seed=11)
        platform = SimulatedPlatform(WorkerPool.uniform(20, 0.93, seed=12), seed=13)
        join = CrowdJoin(
            platform,
            ds.truth_fn,
            pruner=SimilarityPruner(0.35),
            use_transitivity=True,
            redundancy=3,
        )
        result = join.run(ds.records)
        _p, recall, f1 = result.precision_recall_f1(ds.true_pairs)
        n = len(ds.records)
        assert result.questions_asked < n * (n - 1) // 2 / 3
        assert f1 > 0.7
        assert recall > 0.6


class TestDeclarativePipeline:
    def test_crowdsql_over_generated_fill_dataset(self):
        ds = fill_dataset(10, seed=14)
        oracle = CrowdOracle(fill_fn=ds.truth_fn)
        engine = CrowdEngine(
            EngineConfig(seed=15, pool_size=15, pool_accuracy_range=(0.9, 0.99)),
            oracle=oracle,
        )
        engine.sql(
            "CREATE TABLE directory (name STRING NOT NULL, hometown STRING CROWD, "
            "employer STRING CROWD, PRIMARY KEY (name))"
        )
        table = engine.table("directory")
        for row in ds.rows:
            table.insert(row)
        result = engine.query("SELECT name, hometown FROM directory")
        assert len(result) == 10
        assert result.stats.cells_filled == 10  # hometown only, employer pruned
        assert engine.table("directory").cnull_cells() == [
            (i, "employer") for i in range(1, 11)
        ]
        # Majority of filled values should match ground truth.
        correct = sum(
            1 for row in result.rows
            if row["hometown"] == ds.answers[row["name"]]["hometown"]
        )
        assert correct >= 8

    def test_mixed_machine_crowd_query_cost_order(self):
        """Optimizer must make the mixed query cheaper than crowd-first."""
        oracle = CrowdOracle(filter_fn=lambda v, q: int(str(v)[-1]) % 2 == 0)
        engine = CrowdEngine(EngineConfig(seed=16, pool_size=15), oracle=oracle)
        engine.sql("CREATE TABLE items (label STRING, price INTEGER)")
        table = engine.table("items")
        for i in range(30):
            table.insert({"label": f"item{i}", "price": i})
        result = engine.query(
            "SELECT label FROM items WHERE CROWDFILTER(label, 'even tail?') AND price < 10"
        )
        # Machine predicate first: crowd questions bounded by 10 surviving rows.
        assert result.stats.crowd_questions <= 10


class TestCollectionPipeline:
    def test_collect_until_coverage_then_estimate(self):
        universe = [f"plant-{i}" for i in range(40)]
        pool = WorkerPool([Worker(model=CollectorModel()) for _ in range(15)], seed=17)
        bind_zipf_knowledge(pool, universe, knowledge_size=18, zipf_s=1.0, seed=18)
        platform = SimulatedPlatform(pool, seed=19)
        result = CrowdCollect(platform, "name a plant").run(
            max_queries=400, stop_at_coverage=0.95
        )
        assert result.distinct_count >= 15
        # Chao92 should be between observed and a sane multiple of truth.
        assert result.distinct_count <= result.estimated_richness <= 120


class TestRankingPipeline:
    def test_engine_topk_agrees_with_sort(self):
        ds = ranking_dataset(12, seed=20)
        engine = CrowdEngine(
            EngineConfig(seed=21, pool_size=20, pool_accuracy_range=(0.95, 0.99))
        )
        sort_result = engine.sort(ds.items, ds.score_fn, strategy="merge", redundancy=3)
        top_result = engine.topk(ds.items, ds.score_fn, k=3, redundancy=3)
        assert set(top_result.winners) & set(sort_result.order[:4])
