"""Unit tests for the hybrid human/machine layer (NB + active learning)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.datasets import text_classification_dataset
from repro.hybrid import ActiveLearner, NaiveBayesText
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


class TestNaiveBayes:
    CORPUS = [
        ("goal match striker penalty", "sports"),
        ("striker goal referee", "sports"),
        ("stock market shares dividend", "finance"),
        ("market dividend bond", "finance"),
    ]

    def _model(self):
        docs, labels = zip(*self.CORPUS)
        return NaiveBayesText().fit(list(docs), list(labels))

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            NaiveBayesText(alpha=0)

    def test_fit_requires_alignment(self):
        with pytest.raises(ConfigurationError):
            NaiveBayesText().fit(["a"], ["x", "y"])

    def test_predict_unseen_before_training(self):
        with pytest.raises(ConfigurationError):
            NaiveBayesText().predict("anything")

    def test_classifies_obvious_documents(self):
        model = self._model()
        assert model.predict("penalty goal") == "sports"
        assert model.predict("shares bond market") == "finance"

    def test_proba_normalized(self):
        proba = self._model().predict_proba("goal dividend")
        assert sum(proba.values()) == pytest.approx(1.0)
        assert set(proba) == {"sports", "finance"}

    def test_margin_reflects_confidence(self):
        model = self._model()
        confident = model.margin("goal goal striker penalty referee")
        torn = model.margin("goal dividend")
        assert confident > torn

    def test_unknown_tokens_fall_back_to_prior(self):
        model = self._model()
        proba = model.predict_proba("zzz qqq www")
        # Balanced corpus -> near-uniform posterior on unknown text.
        assert abs(proba["sports"] - 0.5) < 0.05

    def test_partial_fit_shifts_prediction(self):
        model = self._model()
        for _ in range(5):
            model.partial_fit("quiche oven flour", "cooking")
        assert model.predict("oven flour") == "cooking"
        assert "cooking" in model.classes

    def test_accuracy_helper(self):
        model = self._model()
        docs, labels = zip(*self.CORPUS)
        assert model.accuracy(list(docs), list(labels)) == 1.0
        with pytest.raises(ConfigurationError):
            model.accuracy([], [])


class TestTextDataset:
    def test_shapes_and_balance(self):
        ds = text_classification_dataset(90, heldout=30, seed=1)
        assert len(ds.documents) == 90
        assert len(ds.heldout_documents) == 30
        counts = {c: ds.labels.count(c) for c in ds.classes}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_signal_validated(self):
        with pytest.raises(ConfigurationError):
            text_classification_dataset(10, signal_strength=2.0)

    def test_high_signal_is_learnable(self):
        ds = text_classification_dataset(120, signal_strength=0.8, seed=2)
        model = NaiveBayesText().fit(ds.documents, ds.labels)
        assert model.accuracy(ds.heldout_documents, ds.heldout_labels) > 0.9

    def test_reproducible(self):
        a = text_classification_dataset(30, seed=3)
        b = text_classification_dataset(30, seed=3)
        assert a.documents == b.documents


class TestActiveLearner:
    def _setup(self, selection, seed=5, signal=0.5, n=150):
        ds = text_classification_dataset(n, signal_strength=signal, seed=seed)
        truth = dict(zip(ds.documents, ds.labels))
        platform = SimulatedPlatform(WorkerPool.uniform(15, 0.92, seed=seed + 1), seed=seed + 2)
        learner = ActiveLearner(
            platform, ds.classes, truth_fn=truth.get,
            selection=selection, batch_size=10, seed=seed + 3,
        )
        return ds, learner

    def test_config_validated(self):
        ds, learner = self._setup("random")
        with pytest.raises(ConfigurationError):
            ActiveLearner(learner.platform, ("one",), truth_fn=lambda d: "one")
        with pytest.raises(ConfigurationError):
            ActiveLearner(learner.platform, ("a", "b"), truth_fn=None, selection="magic")
        with pytest.raises(ConfigurationError):
            learner.run(ds.documents, label_budget=0)

    def test_budget_respected(self):
        ds, learner = self._setup("uncertainty")
        result = learner.run(ds.documents, label_budget=30)
        assert len(result.crowd_labels) == 30
        assert result.crowd_questions == 90  # 30 items x redundancy 3
        assert result.cost == pytest.approx(0.9)

    def test_final_labels_cover_everything(self):
        ds, learner = self._setup("uncertainty")
        result = learner.run(ds.documents, label_budget=25)
        assert len(result.final_labels) == len(ds.documents)
        assert all(label in ds.classes for label in result.final_labels)

    def test_crowd_labels_used_verbatim(self):
        ds, learner = self._setup("random")
        result = learner.run(ds.documents, label_budget=20)
        for i, label in result.crowd_labels.items():
            assert result.final_labels[i] == label

    def test_trajectory_recorded(self):
        ds, learner = self._setup("uncertainty")
        result = learner.run(
            ds.documents, label_budget=30,
            heldout=(ds.heldout_documents, ds.heldout_labels),
        )
        assert [n for n, _acc in result.trajectory] == [10, 20, 30]
        # Learning curves trend upward overall.
        assert result.trajectory[-1][1] >= result.trajectory[0][1] - 0.1

    def test_hybrid_beats_crowd_only_at_equal_budget(self):
        ds, learner = self._setup("uncertainty", seed=9, signal=0.6, n=240)
        result = learner.run(ds.documents, label_budget=40)
        hybrid_accuracy = result.accuracy_against(ds.labels)
        # Crowd-only: the 40 crowd labels are right, the remaining 200
        # items get the best constant guess (majority class).
        crowd_only = (40 * 1.0 + 200 * (1 / 3)) / 240
        assert hybrid_accuracy > crowd_only + 0.15

    def test_budget_larger_than_dataset_labels_everything(self):
        ds, learner = self._setup("random", n=30)
        result = learner.run(ds.documents, label_budget=999)
        assert len(result.crowd_labels) == 30
