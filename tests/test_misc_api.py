"""Tests for smaller public APIs not covered elsewhere."""


import pytest

from repro.cost.taskdesign import FatigueModel, iterate_hit_slots
from repro.hybrid import NaiveBayesText
from repro.platform.pricing import PriceResponseModel, PricingPolicy
from repro.platform.task import HIT, fill
from repro.quality.truth import answers_from_platform
from repro.workers.models import ConfusionMatrixModel
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


class TestPricingHelpers:
    def test_apply_stamps_rewards(self):
        policy = PricingPolicy(default=0.05)
        tasks = [fill("a"), fill("b")]
        policy.apply(tasks)
        assert all(t.reward == pytest.approx(0.05) for t in tasks)

    def test_expected_speedup_equals_rate_multiplier(self):
        model = PriceResponseModel()
        assert model.expected_speedup(0.05) == model.rate_multiplier(0.05)


class TestTaskDesignHelpers:
    def test_effective_accuracy(self):
        fatigue = FatigueModel(decay=0.1, floor=0.5)
        assert fatigue.effective_accuracy(0.9, 0) == pytest.approx(0.9)
        assert fatigue.effective_accuracy(0.9, 3) == pytest.approx(0.9 * 0.7)
        with pytest.raises(Exception):
            fatigue.multiplier(-1)

    def test_iterate_hit_slots(self):
        hit = HIT(tasks=[fill("a"), fill("b")])
        slots = list(iterate_hit_slots(hit))
        assert [s for s, _t in slots] == [0, 1]
        assert slots[1][1].question == "b"


class TestAnswersFromPlatform:
    def test_normalizes_collect_output(self, platform):
        tasks = make_choice_tasks(3, seed=1)
        collected = platform.collect(tasks, redundancy=2)
        normalized = answers_from_platform(tasks, collected)
        assert set(normalized) == {t.task_id for t in tasks}
        assert all(len(v) == 2 for v in normalized.values())

    def test_missing_tasks_get_empty_lists(self, platform):
        tasks = make_choice_tasks(2, seed=2)
        normalized = answers_from_platform(tasks, {})
        assert all(v == [] for v in normalized.values())


class TestConfusionPool:
    def test_factory_builds_per_worker_matrices(self):
        def factory(rng):
            flip = float(rng.uniform(0.0, 0.2))
            return ConfusionMatrixModel(
                {"a": {"a": 1 - flip, "b": flip}, "b": {"a": flip, "b": 1 - flip}}
            )

        pool = WorkerPool.confusion_pool(6, factory, seed=3)
        assert len(pool) == 6
        matrices = [w.model.matrix["a"]["a"] for w in pool]
        assert len(set(matrices)) > 1  # factory varied per worker


class TestNaiveBayesInternals:
    def test_predict_log_proba_orders_like_proba(self):
        model = NaiveBayesText().fit(
            ["goal match", "stock bond"], ["sports", "finance"]
        )
        logs = model.predict_log_proba("goal goal")
        probas = model.predict_proba("goal goal")
        assert max(logs, key=logs.get) == max(probas, key=probas.get)
        assert model.n_documents == 2


class TestReportPrinting:
    def test_print_table_and_series(self, capsys):
        from repro.experiments.report import print_series, print_table

        print_table([{"a": 1}], title="T")
        print_series([1, 2], [3.0, 4.0], title="S")
        out = capsys.readouterr().out
        assert "T" in out and "S" in out and "#" in out


class TestRoundRecordHelpers:
    def test_critical_path(self, platform):
        from repro.latency.rounds import RoundScheduler

        scheduler = RoundScheduler(platform, redundancy=1)
        outcome = scheduler.run(
            make_choice_tasks(2, seed=4), lambda answers, i: []
        )
        assert outcome.critical_path == [outcome.rounds[0].duration]

    def test_mitigation_from_timeline(self, platform):
        from repro.latency.mitigation import MitigationResult

        tasks = make_choice_tasks(5, seed=5)
        timeline = platform.simulate_timeline(tasks, redundancy=1)
        result = MitigationResult.from_timeline(timeline, cost=0.05, strategy="x")
        assert result.makespan == pytest.approx(timeline.makespan)
        assert result.answers_used == 5
        assert result.strategy == "x"


class TestDecoAnchorKeys:
    def test_anchor_keys_in_insertion_order(self):
        from repro.deco import ConceptualRelation, single_column_group

        relation = ConceptualRelation(
            "r", ("name",), [single_column_group("g")]
        )
        relation.add_anchor(name="b")
        relation.add_anchor(name="a")
        assert relation.anchor_keys == [("b",), ("a",)]


class TestWorkerHelpers:
    def test_answer_value_no_bookkeeping(self, rng):
        from repro.workers.worker import Worker
        from repro.workers.models import OneCoinModel

        worker = Worker(model=OneCoinModel(1.0))
        task = make_choice_tasks(1, seed=6)[0]
        value = worker.answer_value(task, rng)
        assert value == task.truth
        assert worker.tasks_done == 0 and worker.earned == 0.0

    def test_inter_arrival_positive(self, rng):
        from repro.workers.worker import LatencyModel

        model = LatencyModel(arrival_rate=0.1)
        assert all(model.inter_arrival(rng) > 0 for _ in range(50))
