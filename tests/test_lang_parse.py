"""Unit tests for the CrowdSQL lexer and parser."""

import pytest

from repro.data.expressions import (
    And,
    Comparison,
    CrowdPredicate,
    InList,
    IsCNull,
    IsNull,
    Not,
    Or,
)
from repro.data.schema import CNULL
from repro.errors import ParseError
from repro.lang.ast_nodes import CreateTable, DropTable, Insert, Select
from repro.lang.lexer import TokenType, tokenize
from repro.lang.parser import parse, parse_one


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "MyTable"

    def test_string_with_escape(self):
        tokens = tokenize("'it''s here'")
        assert tokens[0].value == "it's here"

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == pytest.approx(3.14)

    def test_qualified_name_dot_not_float(self):
        tokens = tokenize("t.col")
        values = [(t.type, t.value) for t in tokens[:-1]]
        assert values == [
            (TokenType.IDENTIFIER, "t"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENTIFIER, "col"),
        ]

    def test_operators_normalized(self):
        tokens = tokenize("a <> b != c")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["!=", "!="]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", 1]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestCreateParse:
    def test_basic(self):
        stmt = parse_one(
            "CREATE TABLE t (a STRING NOT NULL, b INTEGER, PRIMARY KEY (a))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "t"
        assert stmt.columns[0].not_null
        assert stmt.primary_key == ("a",)
        assert not stmt.crowd_table

    def test_crowd_table_and_columns(self):
        stmt = parse_one(
            "CREATE CROWD TABLE t (a TEXT, b FLOAT CROWD, c INT CROWD NOT NULL)"
        )
        assert stmt.crowd_table
        assert stmt.columns[0].type_name == "STRING"
        assert stmt.columns[1].crowd
        assert stmt.columns[2].type_name == "INTEGER" and stmt.columns[2].not_null

    def test_if_not_exists(self):
        stmt = parse_one("CREATE TABLE IF NOT EXISTS t (a STRING)")
        assert stmt.if_not_exists

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_one("CREATE TABLE t (a BLOB)")


class TestInsertParse:
    def test_multi_row(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, Insert)
        assert stmt.rows == ((1, "x"), (2, "y"))

    def test_literals(self):
        stmt = parse_one("INSERT INTO t VALUES (NULL, CNULL, TRUE, FALSE, -5, 2.5)")
        assert stmt.rows[0] == (None, CNULL, True, False, -5, 2.5)

    def test_without_columns(self):
        stmt = parse_one("INSERT INTO t VALUES (1)")
        assert stmt.columns == ()


class TestSelectParse:
    def test_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert stmt.columns == ()

    def test_columns_and_alias(self):
        stmt = parse_one("SELECT a, b FROM t AS x")
        assert stmt.columns == ("a", "b")
        assert stmt.alias == "x"

    def test_qualified_columns_unqualified(self):
        stmt = parse_one("SELECT t.a FROM t")
        assert stmt.columns == ("a",)

    def test_where_tree(self):
        stmt = parse_one("SELECT * FROM t WHERE a > 1 AND (b = 'x' OR NOT c < 2)")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.right, Or)
        assert isinstance(stmt.where.right.right, Not)

    def test_is_null_and_cnull(self):
        stmt = parse_one("SELECT * FROM t WHERE a IS NULL AND b IS NOT CNULL")
        assert isinstance(stmt.where.left, IsNull)
        right = stmt.where.right
        assert isinstance(right, IsCNull) and right.negated

    def test_in_list(self):
        stmt = parse_one("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert stmt.where.values == (1, 2, 3)

    def test_not_in(self):
        stmt = parse_one("SELECT * FROM t WHERE a NOT IN ('x')")
        assert stmt.where.negated

    def test_crowdequal(self):
        stmt = parse_one("SELECT * FROM t WHERE CROWDEQUAL(a, b)")
        assert isinstance(stmt.where, CrowdPredicate)
        assert stmt.where.kind == "equal"

    def test_crowdfilter_question(self):
        stmt = parse_one("SELECT * FROM t WHERE CROWDFILTER(a, 'is it red?')")
        assert stmt.where.kind == "filter"
        assert stmt.where.question == "is it red?"

    def test_crowdfilter_requires_string(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM t WHERE CROWDFILTER(a, b)")

    def test_order_by(self):
        stmt = parse_one("SELECT * FROM t ORDER BY a DESC LIMIT 5")
        assert stmt.order[0].column == "a" and not stmt.order[0].ascending
        assert stmt.limit == 5

    def test_order_by_multiple_keys(self):
        stmt = parse_one("SELECT * FROM t ORDER BY a DESC, b, c ASC")
        assert [(o.column, o.ascending) for o in stmt.order] == [
            ("a", False), ("b", True), ("c", True),
        ]

    def test_crowdorder_by_defaults_best_first(self):
        stmt = parse_one("SELECT * FROM t CROWDORDER BY a")
        assert stmt.crowd_order.column == "a"
        assert not stmt.crowd_order.ascending

    def test_join(self):
        stmt = parse_one("SELECT * FROM a JOIN b ON x = y")
        assert len(stmt.joins) == 1
        assert not stmt.joins[0].crowd
        assert isinstance(stmt.joins[0].condition, Comparison)

    def test_crowdjoin(self):
        stmt = parse_one("SELECT * FROM a CROWDJOIN b ON CROWDEQUAL(x, y)")
        assert stmt.joins[0].crowd

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM t LIMIT 2.5")

    def test_bare_identifier_is_alias(self):
        # SQL-style implicit alias: FROM t x.
        assert parse_one("SELECT * FROM t wat").alias == "wat"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM t LIMIT 5 nonsense")

    def test_arithmetic_in_where(self):
        stmt = parse_one("SELECT * FROM t WHERE a + 1 > b * 2")
        row = {"a": 3, "b": 1}
        assert stmt.where.evaluate(row) is True

    def test_parenthesized_expression(self):
        stmt = parse_one("SELECT * FROM t WHERE (a + 1) * 2 = 8")
        assert stmt.where.evaluate({"a": 3}) is True

    def test_unary_minus_expression(self):
        stmt = parse_one("SELECT * FROM t WHERE a = -b")
        assert stmt.where.evaluate({"a": -2, "b": 2}) is True


class TestScript:
    def test_multi_statement(self):
        script = parse("CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x');")
        assert len(script.statements) == 2
        assert isinstance(script.statements[0], CreateTable)
        assert isinstance(script.statements[1], Insert)

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_parse_one_rejects_multi(self):
        with pytest.raises(ParseError):
            parse_one("SELECT * FROM a; SELECT * FROM b")

    def test_drop_variants(self):
        assert isinstance(parse_one("DROP TABLE t"), DropTable)
        assert parse_one("DROP TABLE IF EXISTS t").if_exists

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_one("SELECT *\nFROM")
        assert excinfo.value.line == 2
