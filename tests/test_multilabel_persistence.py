"""Tests for MULTI_CHOICE tasks, multi-label aggregation, and persistence."""

import pytest

from repro.data import Database, SchemaBuilder, load_database, save_database
from repro.data.schema import is_cnull
from repro.errors import InferenceError, TaskStateError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, multi_choice
from repro.quality.truth import MultiLabelVote, set_f1
from repro.workers.pool import WorkerPool


class TestMultiChoiceTasks:
    def test_builder_normalizes_truth(self):
        task = multi_choice("tags?", ("a", "b", "c"), truth={"a", "b"})
        assert task.truth == frozenset({"a", "b"})

    def test_truth_must_be_subset(self):
        with pytest.raises(TaskStateError):
            multi_choice("q", ("a", "b"), truth={"z"})

    def test_one_coin_answers_are_frozensets(self, rng):
        from repro.workers.models import OneCoinModel

        task = multi_choice("q", ("a", "b", "c"), truth={"a"})
        answer = OneCoinModel(0.9).answer(task, rng)
        assert isinstance(answer, frozenset)
        assert answer <= {"a", "b", "c"}

    def test_perfect_worker_exact(self, rng):
        from repro.workers.models import OneCoinModel

        task = multi_choice("q", ("a", "b", "c"), truth={"a", "c"})
        assert OneCoinModel(1.0).answer(task, rng) == frozenset({"a", "c"})

    def test_empty_truth_supported(self, rng):
        from repro.workers.models import OneCoinModel

        task = multi_choice("q", ("a", "b"), truth=set())
        assert OneCoinModel(1.0).answer(task, rng) == frozenset()


class TestSetF1:
    def test_exact(self):
        assert set_f1(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_both_empty(self):
        assert set_f1(frozenset(), frozenset()) == 1.0

    def test_disjoint(self):
        assert set_f1(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_partial(self):
        value = set_f1(frozenset({"a", "b"}), frozenset({"a", "c"}))
        assert value == pytest.approx(0.5)


class TestMultiLabelVote:
    def _evidence(self, sets_by_task):
        return {
            task_id: [
                Answer(task_id=task_id, worker_id=f"w{i}", value=frozenset(s))
                for i, s in enumerate(sets)
            ]
            for task_id, sets in sets_by_task.items()
        }

    def test_threshold_validated(self):
        with pytest.raises(InferenceError):
            MultiLabelVote(threshold=1.0)

    def test_per_option_majority(self):
        evidence = self._evidence(
            {"t1": [{"a", "b"}, {"a"}, {"a", "c"}]}
        )
        result = MultiLabelVote().infer(evidence)
        assert result.truths["t1"] == frozenset({"a"})

    def test_rejects_non_set_answers(self):
        evidence = {"t1": [Answer(task_id="t1", worker_id="w", value="a")]}
        with pytest.raises(InferenceError):
            MultiLabelVote().infer(evidence)

    def test_posterior_shares(self):
        evidence = self._evidence({"t1": [{"a"}, {"a", "b"}]})
        result = MultiLabelVote().infer(evidence)
        assert result.posteriors["t1"] == {"a": 1.0, "b": 0.5}

    def test_end_to_end_recovers_label_sets(self):
        platform = SimulatedPlatform(WorkerPool.uniform(15, 0.9, seed=1), seed=2)
        import numpy as np

        rng = np.random.default_rng(3)
        options = ("cat", "dog", "car", "tree")
        tasks = []
        for i in range(60):
            truth = frozenset(
                o for o in options if rng.random() < 0.4
            )
            tasks.append(multi_choice(f"tags #{i}", options, truth=truth))
        answers = platform.collect(tasks, redundancy=5)
        result = MultiLabelVote().infer(answers)
        mean_f1 = sum(
            set_f1(result.truths[t.task_id], t.truth) for t in tasks
        ) / len(tasks)
        assert mean_f1 > 0.9

    def test_worker_quality_reflects_agreement(self):
        evidence = self._evidence(
            {
                f"t{i}": [{"a"}, {"a"}, {"b", "c"}] for i in range(10)
            }
        )
        result = MultiLabelVote().infer(evidence)
        assert result.worker_quality["w0"] > result.worker_quality["w2"]


class TestPersistence:
    def _db(self):
        database = Database("demo")
        schema = (
            SchemaBuilder()
            .string("name", nullable=False)
            .integer("age")
            .crowd_string("hometown")
            .key("name")
            .build()
        )
        database.create_table(
            "people",
            schema,
            rows=[
                {"name": "ann", "age": 30, "hometown": "paris"},
                {"name": "bob", "age": None},
            ],
        )
        other = SchemaBuilder().string("tag").crowd_table().build()
        database.create_table("tags", other, rows=[{"tag": "x"}])
        return database

    def test_roundtrip(self, tmp_path):
        database = self._db()
        save_database(database, tmp_path)
        loaded = load_database(tmp_path)
        assert loaded.name == "demo"
        assert set(loaded.table_names) == {"people", "tags"}
        people = loaded.table("people")
        assert people.schema.primary_key == ("name",)
        assert people.lookup(name="ann")["hometown"] == "paris"
        assert people.lookup(name="bob")["age"] is None
        assert is_cnull(people.lookup(name="bob")["hometown"])
        assert loaded.table("tags").schema.crowd_table

    def test_missing_catalog_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="catalog"):
            load_database(tmp_path)

    def test_missing_table_csv_raises(self, tmp_path):
        save_database(self._db(), tmp_path)
        (tmp_path / "people.csv").unlink()
        with pytest.raises(FileNotFoundError, match="people"):
            load_database(tmp_path)

    def test_loaded_database_queryable(self, tmp_path):
        from repro.lang.interpreter import CrowdSQLSession

        save_database(self._db(), tmp_path)
        session = CrowdSQLSession(database=load_database(tmp_path))
        result = session.query("SELECT name FROM people WHERE age > 20")
        assert [r["name"] for r in result.rows] == ["ann"]

    def test_roundtrip_preserves_nulls(self, tmp_path):
        database = Database("nulls")
        schema = SchemaBuilder().string("a").integer("n").float("x").build()
        database.create_table(
            "t",
            schema,
            rows=[
                {"a": None, "n": None, "x": None},
                {"a": "kept", "n": 0, "x": 0.0},
            ],
        )
        save_database(database, tmp_path)
        rows = [r.as_dict() for r in load_database(tmp_path).table("t")]
        assert rows[0] == {"a": None, "n": None, "x": None}
        assert rows[1] == {"a": "kept", "n": 0, "x": 0.0}

    def test_roundtrip_preserves_unicode_and_csv_specials(self, tmp_path):
        database = Database("unicode")
        schema = SchemaBuilder().string("title").build()
        tricky = [
            "Amélie — 映画",
            'has "quotes", commas, and\nnewlines',
            "emoji 🎬 and ß",
        ]
        database.create_table("films", schema, rows=[{"title": t} for t in tricky])
        save_database(database, tmp_path)
        loaded = [r["title"] for r in load_database(tmp_path).table("films")]
        assert loaded == tricky

    def test_roundtrip_empty_string_becomes_null(self, tmp_path):
        # CSV represents NULL as an empty cell, so an empty string is
        # indistinguishable from NULL after a round-trip — pin the coercion.
        database = Database("emptystr")
        database.create_table(
            "t", SchemaBuilder().string("s").build(), rows=[{"s": ""}]
        )
        save_database(database, tmp_path)
        loaded = next(iter(load_database(tmp_path).table("t")))
        assert loaded["s"] is None

    def test_roundtrip_preserves_empty_tables(self, tmp_path):
        database = Database("empty")
        schema = (
            SchemaBuilder().string("name", nullable=False).crowd_integer("votes").build()
        )
        database.create_table("nothing", schema)
        save_database(database, tmp_path)
        loaded = load_database(tmp_path)
        table = loaded.table("nothing")
        assert len(table) == 0
        assert table.schema == schema
        table.insert({"name": "works"})  # still a usable table

    def test_save_is_overwrite_safe(self, tmp_path):
        database = self._db()
        save_database(database, tmp_path)
        database.table("people").insert({"name": "cal", "age": 7})
        save_database(database, tmp_path)
        loaded = load_database(tmp_path)
        assert len(loaded.table("people")) == 3
