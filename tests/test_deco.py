"""Unit tests for the Deco layer: model, fetch rules, query semantics."""

import pytest

from repro.deco import (
    AnchorFetchRule,
    ConceptualRelation,
    DecoQueryEngine,
    DependentFetchRule,
    DependentGroup,
    FetchRuleSet,
    dedup_exact,
    first_resolution,
    majority_resolution,
    mean_resolution,
    single_column_group,
)
from repro.errors import ConfigurationError, SchemaError
from repro.operators.collect import bind_zipf_knowledge
from repro.platform.platform import SimulatedPlatform
from repro.workers.models import CollectorModel, OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker


class TestResolutionFunctions:
    def test_majority(self):
        assert majority_resolution(["a", "b", "a"]) == "a"

    def test_majority_tie_deterministic(self):
        assert majority_resolution(["b", "a"]) == "a"

    def test_majority_empty(self):
        assert majority_resolution([]) is None

    def test_mean(self):
        assert mean_resolution([1, 2, 3]) == pytest.approx(2.0)

    def test_first(self):
        assert first_resolution(["x", "y"]) == "x"
        assert first_resolution([]) is None

    def test_dedup_exact_preserves_order(self):
        assert dedup_exact(["b", "a", "b", "c"]) == ["b", "a", "c"]


class TestDependentGroup:
    def test_validation(self):
        with pytest.raises(SchemaError):
            DependentGroup(name="g", columns=())
        with pytest.raises(SchemaError):
            DependentGroup(name="g", columns=("a",), min_raw=0)

    def test_resolve_insufficient_raw(self):
        group = single_column_group("cuisine", min_raw=2)
        assert group.resolve([{"cuisine": "thai"}]) is None

    def test_resolve_majority(self):
        group = single_column_group("cuisine", min_raw=2)
        resolved = group.resolve(
            [{"cuisine": "thai"}, {"cuisine": "thai"}, {"cuisine": "pizza"}]
        )
        assert resolved == {"cuisine": "thai"}

    def test_multi_column_default_resolution(self):
        group = DependentGroup(name="geo", columns=("lat", "lon"))
        resolved = group.resolve([{"lat": 1.0, "lon": 2.0}, {"lat": 1.0, "lon": 3.0}])
        assert resolved["lat"] == 1.0
        assert resolved["lon"] in (2.0, 3.0)

    def test_custom_resolution(self):
        group = single_column_group("rating", mean_resolution, min_raw=2)
        assert group.resolve([{"rating": 2}, {"rating": 4}]) == {"rating": 3.0}


class TestConceptualRelation:
    @pytest.fixture
    def relation(self):
        return ConceptualRelation(
            "restaurants",
            anchors=("name",),
            groups=[
                single_column_group("cuisine", min_raw=2),
                single_column_group("rating", mean_resolution, min_raw=1),
            ],
        )

    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            ConceptualRelation("r", anchors=(), groups=[])
        with pytest.raises(SchemaError):
            ConceptualRelation(
                "r", anchors=("a",),
                groups=[single_column_group("x"), single_column_group("x")],
            )
        with pytest.raises(SchemaError):
            ConceptualRelation(
                "r", anchors=("a",), groups=[single_column_group("a")]
            )

    def test_disjoint_group_columns_enforced(self):
        with pytest.raises(SchemaError):
            ConceptualRelation(
                "r", anchors=("k",),
                groups=[
                    DependentGroup("g1", ("x", "y")),
                    DependentGroup("g2", ("y",)),
                ],
            )

    def test_anchor_dedup(self, relation):
        assert relation.add_anchor(name="joes") is True
        assert relation.add_anchor(name="joes") is False
        assert len(relation) == 1

    def test_raw_values_accumulate(self, relation):
        relation.add_anchor(name="joes")
        relation.add_raw_value({"name": "joes"}, "cuisine", cuisine="thai")
        relation.add_raw_value({"name": "joes"}, "cuisine", cuisine="thai")
        assert relation.raw_count({"name": "joes"}, "cuisine") == 2

    def test_raw_value_requires_known_anchor(self, relation):
        with pytest.raises(ConfigurationError):
            relation.add_raw_value({"name": "ghost"}, "cuisine", cuisine="x")

    def test_raw_value_rejects_unknown_group_or_column(self, relation):
        relation.add_anchor(name="joes")
        with pytest.raises(ConfigurationError):
            relation.add_raw_value({"name": "joes"}, "nope", cuisine="x")
        with pytest.raises(ConfigurationError):
            relation.add_raw_value({"name": "joes"}, "cuisine", wrong_col="x")

    def test_unresolved_groups(self, relation):
        relation.add_anchor(name="joes")
        assert set(relation.unresolved_groups({"name": "joes"})) == {"cuisine", "rating"}
        relation.add_raw_value({"name": "joes"}, "rating", rating=4)
        assert relation.unresolved_groups({"name": "joes"}) == ["cuisine"]

    def test_resolved_rows_require_all_groups(self, relation):
        relation.add_anchor(name="joes")
        relation.add_raw_value({"name": "joes"}, "rating", rating=4)
        assert relation.resolved_rows() == []
        relation.add_raw_value({"name": "joes"}, "cuisine", cuisine="thai")
        relation.add_raw_value({"name": "joes"}, "cuisine", cuisine="thai")
        rows = relation.resolved_rows()
        assert rows == [{"name": "joes", "cuisine": "thai", "rating": 4.0}]

    def test_include_partial(self, relation):
        relation.add_anchor(name="joes")
        relation.add_raw_value({"name": "joes"}, "rating", rating=5)
        partial = relation.resolved_rows(include_partial=True)
        assert partial == [{"name": "joes", "rating": 5.0}]


def _mixed_platform(universe, cuisine_of, seed=1):
    workers = [Worker(model=CollectorModel()) for _ in range(8)]
    workers += [Worker(model=OneCoinModel(0.95)) for _ in range(12)]
    pool = WorkerPool(workers, seed=seed)
    bind_zipf_knowledge(pool, universe, knowledge_size=12, seed=seed + 1)
    return SimulatedPlatform(pool, seed=seed + 2)


def _rules(cuisine_of):
    return FetchRuleSet(
        anchor_rule=AnchorFetchRule("Name a restaurant."),
        dependent_rules={
            "cuisine": DependentFetchRule(
                "cuisine",
                truth_fn=lambda anchor, col: cuisine_of.get(anchor["name"], "unknown"),
            )
        },
    )


class TestFetchRules:
    UNIVERSE = [f"r{i}" for i in range(20)]
    CUISINE = {r: ("thai", "sushi")[i % 2] for i, r in enumerate(UNIVERSE)}

    def test_anchor_fetch_adds_new(self):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE)
        relation = ConceptualRelation(
            "r", ("name",), [single_column_group("cuisine", min_raw=1)]
        )
        rule = AnchorFetchRule("Name one.")
        added = rule.fetch(relation, platform, attempts=30)
        assert 1 <= added <= 30
        assert len(relation) == added

    def test_anchor_fetch_multi_anchor_needs_parse(self):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE)
        relation = ConceptualRelation(
            "r", ("city", "name"), [single_column_group("cuisine", min_raw=1)]
        )
        with pytest.raises(ConfigurationError, match="parse"):
            AnchorFetchRule("q").fetch(relation, platform, attempts=1)

    def test_anchor_fetch_with_parse(self):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE)
        relation = ConceptualRelation(
            "r", ("city", "name"), [single_column_group("cuisine", min_raw=1)]
        )
        rule = AnchorFetchRule(
            "q", parse=lambda value: {"city": "here", "name": value}
        )
        added = rule.fetch(relation, platform, attempts=20)
        assert added >= 1

    def test_dependent_fetch_records_raw(self):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE)
        relation = ConceptualRelation(
            "r", ("name",), [single_column_group("cuisine", min_raw=2)]
        )
        relation.add_anchor(name="r0")
        rule = DependentFetchRule(
            "cuisine", truth_fn=lambda anchor, col: self.CUISINE[anchor["name"]]
        )
        made = rule.fetch(relation, platform, {"name": "r0"}, times=3)
        assert made == 3
        assert relation.raw_count({"name": "r0"}, "cuisine") == 3

    def test_fetch_charges_budget(self):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE)
        relation = ConceptualRelation(
            "r", ("name",), [single_column_group("cuisine", min_raw=1)]
        )
        relation.add_anchor(name="r0")
        rule = DependentFetchRule("cuisine", truth_fn=lambda a, c: "thai")
        rule.fetch(relation, platform, {"name": "r0"}, times=2)
        assert platform.stats.cost_spent == pytest.approx(0.02)


class TestDecoQuery:
    UNIVERSE = [f"r{i}" for i in range(25)]
    CUISINE = {
        f"r{i}": ("thai", "sushi", "pizza")[i % 3] for i in range(25)
    }

    def _engine(self, seed=5, budget=float("inf")):
        platform = _mixed_platform(self.UNIVERSE, self.CUISINE, seed=seed)
        platform.budget = budget
        relation = ConceptualRelation(
            "restaurants", ("name",), [single_column_group("cuisine", min_raw=2)]
        )
        return DecoQueryEngine(relation, _rules(self.CUISINE), platform)

    def test_min_tuples_satisfied(self):
        engine = self._engine()
        result = engine.min_tuples(4, predicate=lambda row: row["cuisine"] == "thai")
        assert result.satisfied
        assert len(result.rows) >= 4
        assert all(row["cuisine"] == "thai" for row in result.rows)
        assert result.anchors_fetched > 0
        assert result.dependent_fetches >= 2 * result.anchors_fetched * 0  # sanity

    def test_min_tuples_validates_n(self):
        engine = self._engine()
        with pytest.raises(ConfigurationError):
            engine.min_tuples(0)

    def test_missing_fetch_rule_rejected(self):
        engine = self._engine()
        engine.rules.dependent_rules = {}
        with pytest.raises(ConfigurationError, match="fetch rule"):
            engine.min_tuples(1)

    def test_budget_exhaustion_is_graceful(self):
        engine = self._engine(budget=0.05)
        result = engine.min_tuples(20)
        assert not result.satisfied
        assert result.stop_reason == "budget_exhausted"
        assert result.cost <= 0.05 + 1e-9

    def test_no_anchor_rule_stops(self):
        engine = self._engine()
        engine.rules.anchor_rule = None
        result = engine.min_tuples(3)
        assert not result.satisfied
        assert result.stop_reason == "no_anchor_fetch_rule"

    def test_existing_anchors_resolved_first(self):
        engine = self._engine()
        for name in ("r0", "r3", "r6"):  # all thai
            engine.relation.add_anchor(name=name)
        result = engine.min_tuples(3, predicate=lambda row: row["cuisine"] == "thai")
        assert result.satisfied
        # No enumeration needed: the pre-seeded anchors suffice.
        assert result.anchors_fetched == 0

    def test_resolve_all(self):
        engine = self._engine()
        for name in ("r0", "r1"):
            engine.relation.add_anchor(name=name)
        result = engine.resolve_all()
        assert result.satisfied
        assert len(result.rows) == 2
        assert result.dependent_fetches == 4  # 2 anchors x min_raw 2
