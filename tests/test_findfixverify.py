"""Unit tests for the Find-Fix-Verify workflow."""

import pytest

from repro.errors import ConfigurationError
from repro.operators.findfixverify import (
    FfvDocument,
    FindFixVerify,
    proofreading_dataset,
)
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


def _platform(accuracy=0.93, seed=1, n=15):
    return SimulatedPlatform(WorkerPool.uniform(n, accuracy, seed=seed), seed=seed + 1)


class TestDataset:
    def test_shapes(self):
        docs = proofreading_dataset(5, words_per_document=10, errors_per_document=2, seed=1)
        assert len(docs) == 5
        for doc in docs:
            assert len(doc.words) == 10
            assert len(doc.corrections) == 2
            # Corrupted slots differ from their corrections.
            for position, correct in doc.corrections.items():
                assert doc.words[position] != correct
                assert doc.words[position].startswith(correct)

    def test_too_many_errors_rejected(self):
        with pytest.raises(ConfigurationError):
            proofreading_dataset(1, words_per_document=3, errors_per_document=3)

    def test_text_property(self):
        doc = FfvDocument(words=["a", "b"])
        assert doc.text == "a b"


class TestFindFixVerify:
    def test_config_validated(self):
        with pytest.raises(ConfigurationError):
            FindFixVerify(_platform(), find_redundancy=0)
        with pytest.raises(ConfigurationError):
            FindFixVerify(_platform(), max_rounds_per_document=0)
        with pytest.raises(ConfigurationError):
            FindFixVerify(_platform()).run([])

    def test_corrects_planted_errors(self):
        docs = proofreading_dataset(6, seed=4)
        ffv = FindFixVerify(_platform(seed=5))
        result = ffv.run(docs)
        total = sum(len(d.corrections) for d in docs)
        assert result.residual_errors(docs) <= max(1, total // 8)

    def test_clean_document_untouched(self):
        doc = FfvDocument(words=["alpha", "beta", "gamma"])
        ffv = FindFixVerify(_platform(accuracy=0.98, seed=7))
        result = ffv.run([doc])
        assert result.corrected[0] == ["alpha", "beta", "gamma"]
        assert result.fix_questions == 0
        assert result.verify_questions == 0

    def test_round_cap_bounds_work(self):
        docs = proofreading_dataset(2, errors_per_document=4, seed=8)
        ffv = FindFixVerify(_platform(seed=9), max_rounds_per_document=2)
        result = ffv.run(docs)
        assert result.rounds <= 2 * len(docs)

    def test_question_accounting(self):
        docs = proofreading_dataset(3, seed=10)
        platform = _platform(seed=11)
        ffv = FindFixVerify(
            platform, find_redundancy=3, fix_candidates=2, verify_redundancy=3
        )
        result = ffv.run(docs)
        assert result.total_questions == (
            result.find_questions + result.fix_questions + result.verify_questions
        )
        assert result.cost == pytest.approx(result.total_questions * 0.01)

    def test_independent_agreement_gate(self):
        # With 1-vote Find (no agreement possible to fail), every round
        # advances; with 5-vote Find against a clean document, the workers
        # disagree and nothing advances.
        doc = FfvDocument(words=["w1", "w2", "w3", "w4"])
        ffv = FindFixVerify(_platform(accuracy=0.95, seed=12), find_redundancy=5)
        result = ffv.run([doc])
        assert result.fix_questions == 0

    def test_low_accuracy_pool_leaves_residuals(self):
        docs = proofreading_dataset(6, seed=13)
        sloppy = FindFixVerify(_platform(accuracy=0.55, seed=14))
        careful = FindFixVerify(_platform(accuracy=0.95, seed=14))
        sloppy_result = sloppy.run(docs)
        careful_result = careful.run(
            proofreading_dataset(6, seed=13)  # fresh copies (run mutates nothing,
        )                                      # but keep evidence independent)
        assert careful_result.residual_errors(docs) <= sloppy_result.residual_errors(docs)
