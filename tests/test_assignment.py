"""Unit tests for repro.quality.assignment."""

import pytest

from repro.errors import AssignmentError
from repro.platform.platform import SimulatedPlatform
from repro.quality.assignment import (
    Cdas,
    Qasca,
    RandomAssignment,
    RoundRobinAssignment,
    run_assignment,
)
from repro.quality.truth import MajorityVote
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


def _setup(n_tasks=40, pool_size=15, accuracy=0.85, seed=10):
    pool = WorkerPool.uniform(pool_size, accuracy, seed=seed)
    platform = SimulatedPlatform(pool, seed=seed + 1)
    tasks = make_choice_tasks(n_tasks, labels=("yes", "no"), seed=seed)
    truth = {t.task_id: t.truth for t in tasks}
    return platform, tasks, truth


class TestDriver:
    def test_budget_is_respected(self):
        platform, tasks, _ = _setup()
        outcome = run_assignment(
            platform, RandomAssignment(redundancy=5, seed=0), tasks, max_answers=30
        )
        assert outcome.answers_used == 30
        assert outcome.stopped_reason == "budget_exhausted"

    def test_completes_when_strategy_satisfied(self):
        platform, tasks, _ = _setup(n_tasks=10)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=2), tasks, max_answers=1000
        )
        assert outcome.answers_used == 20
        assert outcome.stopped_reason == "strategy_complete"

    def test_invalid_budget_rejected(self):
        platform, tasks, _ = _setup(n_tasks=2)
        with pytest.raises(AssignmentError):
            run_assignment(platform, RandomAssignment(), tasks, max_answers=0)

    def test_no_assignable_work_detected(self):
        # 2 workers, redundancy 3 can never complete: each worker answers
        # each task at most once.
        platform, tasks, _ = _setup(n_tasks=2, pool_size=2)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=3), tasks, max_answers=100
        )
        assert outcome.stopped_reason == "no_assignable_work"
        assert outcome.answers_used == 4  # 2 tasks x 2 workers

    def test_cost_matches_answers(self):
        platform, tasks, _ = _setup(n_tasks=5)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=2), tasks, max_answers=100
        )
        assert outcome.cost == pytest.approx(outcome.answers_used * 0.01)


class TestBaselines:
    def test_round_robin_spreads_evenly(self):
        platform, tasks, _ = _setup(n_tasks=20)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=3), tasks, max_answers=1000
        )
        counts = [len(outcome.answers_by_task[t.task_id]) for t in tasks]
        assert counts == [3] * 20

    def test_random_never_exceeds_redundancy(self):
        platform, tasks, _ = _setup(n_tasks=20)
        outcome = run_assignment(
            platform, RandomAssignment(redundancy=3, seed=1), tasks, max_answers=1000
        )
        assert all(
            len(outcome.answers_by_task[t.task_id]) <= 3 for t in tasks
        )

    def test_no_worker_answers_task_twice(self):
        platform, tasks, _ = _setup(n_tasks=10)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=4), tasks, max_answers=1000
        )
        for answers in outcome.answers_by_task.values():
            workers = [a.worker_id for a in answers]
            assert len(workers) == len(set(workers))

    def test_redundancy_validated(self):
        with pytest.raises(AssignmentError):
            RandomAssignment(redundancy=0)


class TestQasca:
    def test_config_validated(self):
        with pytest.raises(AssignmentError):
            Qasca(confidence_target=0.4)

    def test_produces_truths_for_all_tasks(self):
        platform, tasks, _ = _setup()
        strategy = Qasca(redundancy_cap=5)
        run_assignment(platform, strategy, tasks, max_answers=200)
        assert set(strategy.inferred_truths()) == {t.task_id for t in tasks}

    def test_skips_settled_tasks(self):
        platform, tasks, _ = _setup(n_tasks=10, accuracy=0.95)
        strategy = Qasca(redundancy_cap=9, confidence_target=0.9)
        outcome = run_assignment(platform, strategy, tasks, max_answers=500)
        # With 95% workers, tasks settle after ~2-3 agreeing answers.
        assert outcome.answers_used < 10 * 9

    def test_matches_or_beats_random_at_equal_budget(self):
        accuracies = []
        for strategy_factory in (
            lambda: RandomAssignment(redundancy=3, seed=2),
            lambda: Qasca(redundancy_cap=7),
        ):
            platform, tasks, truth = _setup(n_tasks=50, accuracy=0.75, seed=21)
            strategy = strategy_factory()
            outcome = run_assignment(platform, strategy, tasks, max_answers=150)
            if hasattr(strategy, "inferred_truths"):
                inferred = strategy.inferred_truths()
            else:
                inferred = MajorityVote().infer(outcome.answers_by_task).truths
            accuracies.append(
                sum(1 for t in truth if inferred.get(t) == truth[t]) / len(truth)
            )
        random_acc, qasca_acc = accuracies
        assert qasca_acc >= random_acc - 0.02

    def test_worker_quality_estimates_bounded(self):
        platform, tasks, _ = _setup()
        strategy = Qasca()
        run_assignment(platform, strategy, tasks, max_answers=100)
        for worker in platform.pool:
            assert 0.0 < strategy.worker_quality(worker.worker_id) < 1.0


class TestCdas:
    def test_config_validated(self):
        with pytest.raises(AssignmentError):
            Cdas(confidence=0.3)
        with pytest.raises(AssignmentError):
            Cdas(min_answers=5, max_answers_per_task=3)
        with pytest.raises(AssignmentError):
            Cdas(assumed_accuracy=0.4)

    def test_early_termination_saves_answers(self):
        platform, tasks, _ = _setup(n_tasks=30, accuracy=0.95)
        fixed = RoundRobinAssignment(redundancy=5)
        outcome_fixed = run_assignment(platform, fixed, tasks, max_answers=10_000)

        platform2, tasks2, _ = _setup(n_tasks=30, accuracy=0.95, seed=77)
        cdas = Cdas(confidence=0.9, min_answers=2, max_answers_per_task=5)
        outcome_cdas = run_assignment(platform2, cdas, tasks2, max_answers=10_000)
        assert outcome_cdas.answers_used < outcome_fixed.answers_used

    def test_terminated_tasks_recorded(self):
        platform, tasks, _ = _setup(n_tasks=10, accuracy=0.95)
        cdas = Cdas(confidence=0.85, min_answers=2)
        run_assignment(platform, cdas, tasks, max_answers=10_000)
        assert len(cdas.terminated_tasks) > 0

    def test_accuracy_stays_high_despite_savings(self):
        platform, tasks, truth = _setup(n_tasks=40, accuracy=0.9, seed=31)
        cdas = Cdas(confidence=0.9, min_answers=2, max_answers_per_task=7)
        run_assignment(platform, cdas, tasks, max_answers=10_000)
        inferred = cdas.inferred_truths()
        accuracy = sum(1 for t in truth if inferred[t] == truth[t]) / len(truth)
        assert accuracy > 0.85
