"""Tests for the multi-tenant crowd service (ISSUE 10 tentpole).

Pins the concurrent-tenant invariants:

* two tenants can never jointly overspend the shared platform budget
  (the serialized charge), and tenant ledgers always sum to the
  platform's spend;
* per-tenant budgets bound each tenant independently;
* fair share: deficit round-robin bounds how long a light tenant's unit
  waits behind a heavy tenant's backlog, proportionally to weights;
* cache hits are free for everyone and never credit the wrong tenant's
  spend ledger;
* a single-tenant service run is bit-identical to the plain engine path
  at the same seed (barrier and pipelined executors);
* admission control rejects units once a breaker opens.
"""

import asyncio
import threading

import pytest

from repro.data.database import Database
from repro.errors import (
    AdmissionRejectedError,
    BudgetExceededError,
    ConfigurationError,
    ServiceError,
)
from repro.lang.interpreter import CrowdSQLSession
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_prometheus
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.recovery.breakers import BudgetBreaker
from repro.service import CrowdService, TenantSpec, WorkUnit
from repro.workers.pool import WorkerPool

SCRIPT = """
CREATE TABLE films (title STRING NOT NULL, score FLOAT, PRIMARY KEY (title));
INSERT INTO films VALUES ('a', 1.0), ('b', 2.0), ('c', 3.0);
CREATE TABLE imports (listing STRING NOT NULL, PRIMARY KEY (listing));
INSERT INTO imports VALUES ('a'), ('b');
SELECT listing, title FROM imports CROWDJOIN films ON CROWDEQUAL(listing, title);
SELECT title FROM films CROWDORDER BY score LIMIT 2;
"""


def make_platform(seed=11, budget=float("inf"), metrics=None, pool_size=8):
    pool = WorkerPool.uniform(pool_size, 0.9, seed=seed)
    return SimulatedPlatform(
        pool,
        budget=budget,
        seed=seed + 1,
        batch=BatchConfig(batch_size=8, max_parallel=4, seed=seed + 2),
        metrics=metrics,
    )


def choice_tasks(n, tag, options=("yes", "no")):
    return [
        Task(TaskType.SINGLE_CHOICE, question=f"{tag} q{i}?", options=options)
        for i in range(n)
    ]


class TestTenantRegistry:
    def test_register_and_lookup(self):
        service = CrowdService(make_platform())
        tenant = service.register(TenantSpec("alice", budget=5.0, weight=2.0))
        assert service.tenant("alice") is tenant
        assert tenant.account.remaining == 5.0
        assert service.tenants == [tenant]

    def test_duplicate_rejected(self):
        service = CrowdService(make_platform())
        service.register("alice")
        with pytest.raises(ServiceError, match="already registered"):
            service.register("alice")

    def test_unknown_tenant(self):
        with pytest.raises(ServiceError, match="unknown tenant"):
            CrowdService(make_platform()).tenant("nobody")

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            TenantSpec("")
        with pytest.raises(ConfigurationError):
            TenantSpec("a", budget=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec("a", weight=0.0)

    def test_submit_requires_running_service(self):
        service = CrowdService(make_platform())
        tenant = service.register("alice")
        with pytest.raises(ServiceError, match="not running"):
            service.submit(tenant, choice_tasks(1, "x"), redundancy=1)


def run_plain(seed, pipeline=False):
    platform = make_platform(seed)
    session = CrowdSQLSession(
        database=Database(), platform=platform, redundancy=3, pipeline=pipeline
    )
    results = session.execute(SCRIPT)
    return {
        "rows": [r.rows for r in results if hasattr(r, "rows")],
        "cost": platform.stats.cost_spent,
        "answers": platform.stats.answers_collected,
        "published": platform.stats.tasks_published,
        "values": [a.value for a in platform.answers],
    }


def run_service(seed, pipeline=False):
    platform = make_platform(seed)
    with CrowdService(platform) as service:
        tenant = service.register("solo")
        session = service.session(
            tenant, database=Database(), redundancy=3, pipeline=pipeline
        )
        results = session.execute(SCRIPT)
        out = {
            "rows": [r.rows for r in results if hasattr(r, "rows")],
            "cost": platform.stats.cost_spent,
            "answers": platform.stats.answers_collected,
            "published": platform.stats.tasks_published,
            "values": [a.value for a in platform.answers],
        }
        assert tenant.account.spent == pytest.approx(platform.stats.cost_spent)
    return out


class TestSingleTenantBitIdentity:
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_service_matches_plain_engine(self, pipeline):
        plain = run_plain(31, pipeline=pipeline)
        via_service = run_service(31, pipeline=pipeline)
        assert via_service == plain

    def test_service_replay_is_deterministic(self):
        assert run_service(47) == run_service(47)


class TestJointBudget:
    def test_concurrent_tenants_cannot_jointly_overspend(self):
        platform = make_platform(seed=5, budget=1.0, pool_size=16)
        with CrowdService(platform) as service:
            alice = service.register("alice")
            bob = service.register("bob")
            exhausted = []

            def spend(tenant, tag):
                try:
                    for i in range(10):
                        service.submit(
                            tenant, choice_tasks(5, f"{tag}{i}"), redundancy=2
                        )
                except BudgetExceededError:
                    exhausted.append(tag)

            threads = [
                threading.Thread(target=spend, args=(alice, "a")),
                threading.Thread(target=spend, args=(bob, "b")),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            total = platform.stats.cost_spent
            assert total <= 1.0 + 1e-9  # never jointly overspent
            assert alice.account.spent + bob.account.spent == pytest.approx(total)
            assert len(exhausted) == 2  # both eventually hit the shared wall

    def test_tenant_budget_bounds_tenant_only(self):
        platform = make_platform(seed=7, pool_size=16)
        with CrowdService(platform) as service:
            small = service.register(TenantSpec("small", budget=0.05))
            big = service.register(TenantSpec("big"))
            with pytest.raises(BudgetExceededError, match="tenant 'small'"):
                service.submit(small, choice_tasks(10, "s"), redundancy=3)
            assert small.account.spent <= 0.05 + 1e-12
            # The other tenant is untouched by small's exhaustion.
            result = service.submit(big, choice_tasks(2, "b"), redundancy=2)
            assert len(result.answers) == 2
            assert big.account.spent > 0

    def test_failed_charge_books_nothing_to_either_ledger(self):
        platform = make_platform(seed=9)
        account_spend_before = 0.123
        with CrowdService(platform) as service:
            tenant = service.register(TenantSpec("t", budget=1.0))
            tenant.account.spent = account_spend_before
            platform.budget = 0.0  # next charge must fail the global check
            with pytest.raises(BudgetExceededError):
                service.submit(tenant, choice_tasks(1, "x"), redundancy=1)
            assert tenant.account.spent == account_spend_before
            assert platform.stats.cost_spent == 0


class TestFairShare:
    def _drain_order(self, service, units):
        """Tenant names in dispatch order for manually queued *units*."""
        for unit in units:
            unit.tenant.queue.append(unit)
        order = []
        while any(t.queue for t in service.tenants):
            order.append(service._next_unit_locked().tenant.name)
        return order

    def test_equal_weights_alternate(self):
        service = CrowdService(make_platform(), quantum_tasks=8)
        heavy = service.register("heavy")
        light = service.register("light")
        units = [WorkUnit(heavy, choice_tasks(4, f"h{i}"), 2, True) for i in range(6)]
        units += [WorkUnit(light, choice_tasks(4, f"l{i}"), 2, True) for i in range(2)]
        order = self._drain_order(service, units)
        # Light's two units both dispatch within the first four turns:
        # a 3x backlog cannot starve an equal-weight tenant.
        assert set(order[:4]) == {"heavy", "light"}
        assert order.count("light") == 2 and order.count("heavy") == 6
        assert order.index("light") <= 1

    def test_weighted_share(self):
        service = CrowdService(make_platform(), quantum_tasks=8)
        fast = service.register(TenantSpec("fast", weight=2.0))
        slow = service.register(TenantSpec("slow", weight=1.0))
        units = [WorkUnit(fast, choice_tasks(4, f"f{i}"), 2, True) for i in range(9)]
        units += [WorkUnit(slow, choice_tasks(4, f"s{i}"), 2, True) for i in range(9)]
        order = self._drain_order(service, units)
        # While both stay backlogged, dispatches track the 2:1 weights.
        prefix = order[:9]
        assert prefix.count("fast") == 6 and prefix.count("slow") == 3

    def test_single_tenant_is_fifo(self):
        service = CrowdService(make_platform(), quantum_tasks=1)
        solo = service.register("solo")
        units = [WorkUnit(solo, choice_tasks(3, f"u{i}"), 3, True) for i in range(5)]
        for unit in units:
            solo.queue.append(unit)
        drained = []
        while solo.queue:
            drained.append(service._next_unit_locked())
        assert drained == units  # strict submission order, always


class TestCacheAccounting:
    def test_cache_hit_never_charges_the_reusing_tenant(self):
        from repro.platform.cache import AnswerCache

        platform = make_platform(seed=13)
        platform.attach_cache(AnswerCache())
        with CrowdService(platform) as service:
            payer = service.register("payer")
            reuser = service.register("reuser")
            questions = [("q alpha?", ("yes", "no")), ("q beta?", ("yes", "no"))]

            def tasks():
                return [
                    Task(TaskType.SINGLE_CHOICE, question=q, options=opts)
                    for q, opts in questions
                ]

            first = service.submit(payer, tasks(), redundancy=3)
            paid = payer.account.spent
            assert paid > 0
            second = service.submit(reuser, tasks(), redundancy=3)
            # Identical questions replay from the shared cache: free for
            # the reuser, and never billed back to the payer either.
            assert reuser.account.spent == 0.0
            assert payer.account.spent == paid
            assert reuser.account.cost_saved == pytest.approx(paid)
            assert platform.stats.cost_spent == pytest.approx(paid)
            # Same answer values replayed.
            first_values = [
                [a.value for a in answers] for answers in first.answers.values()
            ]
            second_values = [
                [a.value for a in answers] for answers in second.answers.values()
            ]
            assert first_values == second_values


class TestAdmissionControl:
    def test_open_breaker_rejects_units(self):
        platform = make_platform(seed=17, budget=0.30, pool_size=16)
        breaker = BudgetBreaker(reserve=0.25)
        with CrowdService(platform, breakers=[breaker]) as service:
            tenant = service.register("t")
            service.submit(tenant, choice_tasks(3, "warm"), redundancy=2)
            assert platform.remaining_budget <= 0.25
            with pytest.raises(AdmissionRejectedError, match="breaker:budget"):
                service.submit(tenant, choice_tasks(1, "over"), redundancy=1)
            assert tenant.units_rejected == 1
            status = service.run_status()
            assert status["breakers"][0]["name"] == "breaker:budget"

    def test_exhausted_tenant_rejected_at_admission(self):
        platform = make_platform(seed=19)
        with CrowdService(platform) as service:
            tenant = service.register(TenantSpec("t", budget=0.02))
            service.submit(tenant, choice_tasks(1, "a"), redundancy=2)
            assert tenant.account.remaining <= 0
            with pytest.raises(AdmissionRejectedError, match="tenant_budget"):
                service.submit(tenant, choice_tasks(1, "b"), redundancy=1)


class TestAsyncFacade:
    def test_asubmit_and_aexecute_concurrent_sessions(self):
        metrics = MetricsRegistry(enabled=True)
        platform = make_platform(seed=23, metrics=metrics, pool_size=16)

        async def drive(service):
            tenants = [service.register(f"t{i}") for i in range(4)]
            direct = service.asubmit(tenants[0], choice_tasks(2, "direct"), redundancy=2)
            sessions = [
                service.session(tenant, database=Database(), redundancy=2)
                for tenant in tenants
            ]
            scripts = [
                service.aexecute(session, SCRIPT) for session in sessions
            ]
            results = await asyncio.gather(direct, *scripts)
            return tenants, results

        with CrowdService(platform) as service:
            tenants, results = asyncio.run(drive(service))
            assert len(results[0].answers) == 2  # the direct asubmit
            for script_results in results[1:]:
                crowd = [r for r in script_results if hasattr(r, "rows")]
                assert crowd  # every session's SELECTs produced rows
            assert sum(t.account.spent for t in tenants) == pytest.approx(
                platform.stats.cost_spent
            )

    def test_asubmit_surfaces_errors(self):
        platform = make_platform(seed=29)

        async def drive(service):
            tenant = service.register(TenantSpec("t", budget=0.01))
            with pytest.raises(BudgetExceededError):
                await service.asubmit(tenant, choice_tasks(5, "x"), redundancy=3)

        with CrowdService(platform) as service:
            asyncio.run(drive(service))


class TestObservability:
    def test_per_tenant_labeled_metrics_and_exposition(self):
        metrics = MetricsRegistry(enabled=True)
        platform = make_platform(seed=37, metrics=metrics)
        with CrowdService(platform) as service:
            alice = service.register("alice")
            service.submit(alice, choice_tasks(3, "m"), redundancy=2)
        key = 'service.tasks_dispatched{tenant="alice"}'
        assert metrics.counters[key].value == 3
        assert metrics.counters['service.units_admitted{tenant="alice"}'].value == 1
        text = render_prometheus(metrics)
        assert 'service_tasks_dispatched_total{tenant="alice"} 3' in text
        assert 'service_queue_wait_units_count{tenant="alice"} 1' in text

    def test_run_status_tenant_view(self):
        platform = make_platform(seed=41)
        with CrowdService(platform) as service:
            service.register(TenantSpec("alice", budget=2.0, weight=3.0))
            service.submit("alice", choice_tasks(2, "rs"), redundancy=2)
            status = service.run_status()
        view = status["tenants"]["alice"]
        assert view["budget"] == 2.0
        assert view["spent"] == pytest.approx(platform.stats.cost_spent)
        assert view["weight"] == 3.0
        assert view["units_completed"] == 1
        assert view["tasks_dispatched"] == 2
        assert status["service"]["tenants"] == 1
        assert status["platform"]["spent"] == pytest.approx(
            platform.stats.cost_spent
        )

    def test_stop_drains_queued_units(self):
        platform = make_platform(seed=43)
        service = CrowdService(platform).start()
        tenant = service.register("t")
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                service.submit(tenant, choice_tasks(2, "drain"), redundancy=2)
            )
        )
        worker.start()
        service.stop()
        worker.join(timeout=10)
        assert results and len(results[0].answers) == 2
