"""Tests for the content-addressed answer cache (repro.platform.cache)."""

import json

import pytest

from repro.data.schema import CNULL, is_cnull
from repro.errors import CacheError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.platform.batch import BatchConfig
from repro.platform.cache import (
    AnswerCache,
    signature_of,
    task_signature,
)
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, Task, TaskType, single_choice
from repro.recovery.checkpoint import Checkpoint
from repro.workers.pool import WorkerPool


def make_platform(seed=7, pool_size=20, batch=None, cache=None):
    pool = WorkerPool.heterogeneous(
        pool_size, accuracy_low=0.7, accuracy_high=0.95, seed=seed
    )
    platform = SimulatedPlatform(pool, seed=seed + 1, batch=batch)
    if cache is not None:
        platform.attach_cache(cache)
    return platform


def make_tasks(n, prefix="item"):
    return [
        single_choice(f"{prefix} {i}?", ("yes", "no"), truth="yes" if i % 2 else "no")
        for i in range(n)
    ]


def stream(platform, tasks, answers):
    """Answer tuples keyed by workload position and within-pool worker index.

    Worker/task ids come from process-global counters, so separately built
    platforms name them differently; positions are the stable identities.
    """
    widx = {w.worker_id: i for i, w in enumerate(platform.pool)}
    return [
        (ti, widx[a.worker_id], a.value, round(a.submitted_at, 9))
        for ti, task in enumerate(tasks)
        for a in answers[task.task_id]
    ]


class TestSignature:
    def test_identical_content_same_signature(self):
        a = single_choice("same thing?", ("yes", "no"))
        b = single_choice("same thing?", ("yes", "no"))
        assert a.task_id != b.task_id
        assert task_signature(a) == task_signature(b)

    def test_whitespace_is_normalized(self):
        assert signature_of(
            TaskType.SINGLE_CHOICE, "a   b\n c", ("x",)
        ) == signature_of(TaskType.SINGLE_CHOICE, "a b c", ("x",))

    def test_question_options_type_difficulty_matter(self):
        base = signature_of(TaskType.SINGLE_CHOICE, "q?", ("a", "b"))
        assert base != signature_of(TaskType.SINGLE_CHOICE, "other?", ("a", "b"))
        assert base != signature_of(TaskType.SINGLE_CHOICE, "q?", ("a", "c"))
        assert base != signature_of(TaskType.MULTI_CHOICE, "q?", ("a", "b"))
        assert base != signature_of(
            TaskType.SINGLE_CHOICE, "q?", ("a", "b"), difficulty=0.5
        )

    def test_positional_payload_keys_are_excluded(self):
        a = signature_of(
            TaskType.COMPARE, "A vs B", (), {"left": "x", "left_index": 0, "right_index": 3}
        )
        b = signature_of(
            TaskType.COMPARE, "A vs B", (), {"left": "x", "left_index": 9, "item_index": 1}
        )
        assert a == b
        assert a != signature_of(TaskType.COMPARE, "A vs B", (), {"left": "y"})

    def test_truth_and_reward_do_not_fragment(self):
        a = single_choice("q?", ("yes", "no"), truth="yes", reward=0.01)
        b = single_choice("q?", ("yes", "no"), truth="no", reward=0.99)
        assert task_signature(a) == task_signature(b)

    def test_collect_and_gold_are_uncacheable(self):
        assert signature_of(TaskType.COLLECT, "name a state") is None
        gold = single_choice("probe?", ("yes", "no"), truth="yes", is_gold=True)
        assert task_signature(gold) is None

    def test_opaque_payload_is_uncacheable(self):
        sig = signature_of(TaskType.FILL, "q?", (), {"blob": object()})
        assert sig is None


class TestCacheStore:
    def answers(self, task, values):
        return [
            Answer(task_id=task.task_id, worker_id=f"w{i}", value=v, reward_paid=0.01)
            for i, v in enumerate(values)
        ]

    def test_lookup_requires_enough_answers(self):
        cache = AnswerCache()
        task = single_choice("q?", ("yes", "no"))
        cache.store(task, self.answers(task, ["yes", "yes"]))
        sig = task_signature(task)
        assert cache.lookup(sig, 3) is None
        assert cache.misses == 1
        served = cache.lookup(sig, 2)
        assert [a.value for a in served] == ["yes", "yes"]
        assert cache.hits == 1
        assert [a.value for a in cache.lookup(sig, 1)] == ["yes"]

    def test_partial_never_clobbers_full(self):
        cache = AnswerCache()
        task = single_choice("q?", ("yes", "no"))
        sig = task_signature(task)
        cache.store(task, self.answers(task, ["yes", "no", "yes"]))
        cache.store(task, self.answers(task, ["no"]))
        assert len(cache.entry(sig).answers) == 3
        cache.store(task, self.answers(task, ["no"] * 4))
        assert len(cache.entry(sig).answers) == 4

    def test_empty_answer_lists_are_not_stored(self):
        cache = AnswerCache()
        cache.store(single_choice("q?", ("yes", "no")), [])
        assert len(cache) == 0

    def test_uncacheable_store_is_a_noop(self):
        cache = AnswerCache()
        task = Task(TaskType.COLLECT, question="name a state")
        cache.store(task, [Answer(task.task_id, "w0", "Ohio")])
        assert len(cache) == 0

    def test_lru_eviction_at_boundary(self):
        cache = AnswerCache(max_entries=2)
        tasks = make_tasks(3, prefix="lru")
        for task in tasks:
            cache.store(task, self.answers(task, ["yes"]))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert task_signature(tasks[0]) not in cache
        # A lookup refreshes LRU order: task[1] survives the next eviction.
        assert cache.lookup(task_signature(tasks[1]), 1) is not None
        extra = single_choice("lru extra?", ("yes", "no"))
        cache.store(extra, self.answers(extra, ["no"]))
        assert task_signature(tasks[1]) in cache
        assert task_signature(tasks[2]) not in cache
        assert cache.evictions == 2

    def test_max_entries_validation(self):
        with pytest.raises(ConfigurationError):
            AnswerCache(max_entries=0)

    def test_rebind_metrics_carries_values(self):
        cache = AnswerCache()
        task = single_choice("q?", ("yes", "no"))
        cache.store(task, self.answers(task, ["yes"]))
        cache.lookup(task_signature(task), 1)
        cache.lookup("absent", 1)
        registry = MetricsRegistry(enabled=False)
        cache.rebind_metrics(registry)
        assert cache.metrics is registry
        assert cache.hits == 1
        assert cache.misses == 1
        assert registry.counter("cache.hits").value == 1


class TestPlatformIntegration:
    def test_inflight_duplicates_publish_once(self):
        platform = make_platform(cache=AnswerCache())
        tasks = [single_choice("dup?", ("yes", "no")) for _ in range(3)]
        answers = platform.collect(tasks, redundancy=2)
        assert platform.stats.tasks_published == 1
        assert platform.cache.coalesced == 2
        assert set(answers) == {t.task_id for t in tasks}
        canonical = answers[tasks[0].task_id]
        for dup in tasks[1:]:
            mirrored = answers[dup.task_id]
            assert [a.value for a in mirrored] == [a.value for a in canonical]
            assert all(a.reward_paid == 0.0 for a in mirrored)
            assert not dup.is_open
        # Only the canonical's answers were paid for and logged.
        assert platform.stats.answers_collected == 2
        assert platform.stats.cache_cost_saved == pytest.approx(0.04)

    def test_cross_call_reuse_is_free_and_rng_free(self):
        platform = make_platform(cache=AnswerCache())
        first = platform.collect([single_choice("reuse?", ("yes", "no"))], redundancy=3)
        spent = platform.stats.cost_spent
        rng_state = platform.rng.bit_generator.state
        pool_state = platform.pool.rng.bit_generator.state
        again = single_choice("reuse?", ("yes", "no"))
        served = platform.collect([again], redundancy=3)[again.task_id]
        assert [a.value for a in served] == [
            a.value for a in next(iter(first.values()))
        ]
        assert all(a.reward_paid == 0.0 and a.duration == 0.0 for a in served)
        assert platform.stats.cost_spent == spent
        assert platform.stats.tasks_published == 1
        assert platform.rng.bit_generator.state == rng_state
        assert platform.pool.rng.bit_generator.state == pool_state
        # Served answers are not crowd work: no answer-log or history entries.
        assert platform.answers_for(again.task_id) == []
        assert platform.stats.answers_collected == 3
        assert platform.cache.hits == 1
        assert platform.cache.answers_reused == 3

    def test_higher_redundancy_is_a_miss_not_a_truncated_hit(self):
        platform = make_platform(cache=AnswerCache())
        platform.collect([single_choice("grow?", ("yes", "no"))], redundancy=2)
        again = single_choice("grow?", ("yes", "no"))
        served = platform.collect([again], redundancy=4)[again.task_id]
        assert len(served) == 4
        assert platform.stats.tasks_published == 2

    def test_cold_cache_is_bit_identical_on_duplicate_free_workload(self):
        config = BatchConfig(batch_size=8, max_parallel=4, seed=99)
        plain = make_platform(batch=config)
        plain_tasks = make_tasks(30)
        plain_result = plain.scheduler.run(plain_tasks, redundancy=3)

        cached = make_platform(batch=config, cache=AnswerCache())
        cached_tasks = make_tasks(30)
        cached_result = cached.scheduler.run(cached_tasks, redundancy=3)

        assert stream(plain, plain_tasks, plain_result.answers) == stream(
            cached, cached_tasks, cached_result.answers
        )
        assert plain.stats.cost_spent == cached.stats.cost_spent
        assert plain.stats.tasks_published == cached.stats.tasks_published
        assert cached.cache.hits == 0

    def test_scheduler_hits_have_zero_completion_time(self):
        platform = make_platform(batch=BatchConfig(batch_size=4), cache=AnswerCache())
        platform.scheduler.run([single_choice("warm?", ("yes", "no"))], redundancy=2)
        again = single_choice("warm?", ("yes", "no"))
        result = platform.scheduler.run([again], redundancy=2)
        assert result.completion_times[again.task_id] == 0.0
        assert result.makespan == 0.0

    def test_incomplete_rounds_bypass_the_cache(self):
        platform = make_platform(batch=BatchConfig(batch_size=4), cache=AnswerCache())
        task = single_choice("wave?", ("yes", "no"))
        first = platform.scheduler.run([task], redundancy=2, complete=False)
        second = platform.scheduler.run([task], redundancy=2, complete=False)
        assert task.is_open
        assert platform.cache.hits == 0
        assert platform.cache.misses == 0
        assert len(platform.cache) == 0
        # Both waves bought real, paid-for evidence.
        assert len(platform.answers_for(task.task_id)) == 4
        assert all(
            a.reward_paid > 0
            for a in first.answers[task.task_id] + second.answers[task.task_id]
        )

    def test_degraded_duplicates_mirror_the_canonical_failure(self):
        config = BatchConfig(
            batch_size=4,
            retry_limit=0,
            abandon_rate=1.0,
            seed=5,
            failure_policy="degrade",
        )
        platform = make_platform(batch=config, cache=AnswerCache())
        tasks = [single_choice("doomed?", ("yes", "no")) for _ in range(2)]
        result = platform.scheduler.run(tasks, redundancy=2)
        assert set(result.failures) == {t.task_id for t in tasks}
        assert result.failures[tasks[1].task_id].reason == (
            result.failures[tasks[0].task_id].reason
        )
        # Nothing was answered, so nothing poisoned the cache.
        assert len(platform.cache) == 0


class TestPersistence:
    def seeded_cache(self):
        cache = AnswerCache()
        unicode_task = single_choice("¿Dónde está — 東京?", ("sí", "no"))
        cache.store(
            unicode_task,
            [Answer(unicode_task.task_id, "w0", "sí"), Answer(unicode_task.task_id, "w1", "sí")],
        )
        fill = Task(TaskType.FILL, question="hometown of Ada?", payload={"col": "hometown"})
        cache.store(
            fill,
            [
                Answer(fill.task_id, "w0", None),
                Answer(fill.task_id, "w1", CNULL),
                Answer(fill.task_id, "w2", "London"),
            ],
        )
        return cache

    def test_jsonl_round_trip(self, tmp_path):
        cache = self.seeded_cache()
        path = tmp_path / "answers.jsonl"
        cache.save(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

        loaded = AnswerCache()
        assert loaded.load(path) == 2
        for sig, entry in cache._entries.items():
            other = loaded.entry(sig)
            assert other is not None
            assert other.question == entry.question
            assert [(a.worker_id, a.value) for a in other.answers] == [
                (a.worker_id, a.value) for a in entry.answers
            ]
        restored = loaded.entry(list(cache._entries)[1]).answers
        assert restored[0].value is None
        assert is_cnull(restored[1].value)

    def test_empty_cache_saves_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        AnswerCache().save(path)
        assert path.read_text(encoding="utf-8") == ""
        fresh = AnswerCache()
        assert fresh.load(path) == 0
        assert len(fresh) == 0

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "atomic.jsonl"
        self.seeded_cache().save(path)
        assert not (tmp_path / "atomic.jsonl.tmp").exists()

    def test_load_errors(self, tmp_path):
        with pytest.raises(CacheError):
            AnswerCache().load(tmp_path / "missing.jsonl")
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"signature": "x"\n', encoding="utf-8")
        with pytest.raises(CacheError):
            AnswerCache().load(corrupt)
        malformed = tmp_path / "malformed.jsonl"
        malformed.write_text('{"signature": "x"}\n', encoding="utf-8")
        with pytest.raises(CacheError):
            AnswerCache().load(malformed)

    def test_import_respects_max_entries(self, tmp_path):
        cache = AnswerCache()
        tasks = make_tasks(5, prefix="cap")
        for task in tasks:
            cache.store(task, [Answer(task.task_id, "w0", "yes")])
        path = tmp_path / "cap.jsonl"
        cache.save(path)

        bounded = AnswerCache(max_entries=2)
        assert bounded.load(path) == 2
        # Newest entries survive; loading never counts as eviction.
        assert task_signature(tasks[4]) in bounded
        assert task_signature(tasks[3]) in bounded
        assert task_signature(tasks[0]) not in bounded
        assert bounded.evictions == 0

    def test_persisted_answers_replay_in_a_fresh_platform(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        first = make_platform(cache=AnswerCache())
        first.collect(make_tasks(4, prefix="spill"), redundancy=3)
        first.cache.save(path)

        second = make_platform(cache=AnswerCache())
        second.cache.load(path)
        answers = second.collect(make_tasks(4, prefix="spill"), redundancy=3)
        assert second.stats.tasks_published == 0
        assert second.stats.cost_spent == 0.0
        assert second.cache.hits == 4
        assert all(
            a.reward_paid == 0.0 for served in answers.values() for a in served
        )


class TestCheckpointIntegration:
    def test_checkpoint_carries_the_cache(self):
        platform = make_platform(batch=BatchConfig(batch_size=4), cache=AnswerCache())
        platform.scheduler.run(make_tasks(3, prefix="ckpt"), redundancy=2)
        snapshot = Checkpoint.capture(platform)
        assert len(snapshot.state["cache"]) == 3

        restored = make_platform(batch=BatchConfig(batch_size=4), cache=AnswerCache())
        snapshot.restore(restored)
        assert len(restored.cache) == 3
        # The resumed run re-publishes nothing it already answered.
        restored.scheduler.run(make_tasks(3, prefix="ckpt"), redundancy=2)
        assert restored.cache.hits == 3

    def test_checkpoint_round_trips_through_disk(self, tmp_path):
        platform = make_platform(cache=AnswerCache())
        platform.collect(make_tasks(2, prefix="disk"), redundancy=2)
        Checkpoint.capture(platform).save(tmp_path)

        loaded = Checkpoint.load(tmp_path)
        restored = make_platform(cache=AnswerCache())
        loaded.restore(restored)
        published_at_checkpoint = restored.stats.tasks_published
        restored.collect(make_tasks(2, prefix="disk"), redundancy=2)
        assert restored.stats.tasks_published == published_at_checkpoint

    def test_checkpoint_without_cache_still_restores(self, tmp_path):
        platform = make_platform()
        platform.collect(make_tasks(2, prefix="nocache"), redundancy=2)
        snapshot = Checkpoint.capture(platform)
        assert "cache" not in snapshot.state
        restored = make_platform(cache=AnswerCache())
        snapshot.restore(restored)
        assert len(restored.cache) == 0
