"""Tests for confidence calibration analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.calibration import (
    expected_calibration_error,
    overconfidence,
    reliability_bins,
)
from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import PoolSpec, make_platform
from repro.quality.truth import DawidSkene, MajorityVote
from repro.quality.truth.base import InferenceResult


def _synthetic_result(pairs):
    """pairs: list of (confidence, is_correct)."""
    truths = {}
    confidences = {}
    truth_map = {}
    for i, (confidence, correct) in enumerate(pairs):
        task = f"t{i}"
        truths[task] = "x"
        confidences[task] = confidence
        truth_map[task] = "x" if correct else "y"
    return InferenceResult(truths=truths, confidences=confidences), truth_map


class TestReliability:
    def test_perfectly_calibrated(self):
        # 10 tasks at 0.8 confidence, 8 correct.
        pairs = [(0.8, i < 8) for i in range(10)]
        result, truth = _synthetic_result(pairs)
        bins = reliability_bins(result, truth, n_bins=10)
        assert len(bins) == 1
        assert bins[0].accuracy == pytest.approx(0.8)
        assert bins[0].gap == pytest.approx(0.0)
        assert expected_calibration_error(result, truth) == pytest.approx(0.0)

    def test_overconfident_detected(self):
        pairs = [(0.95, i < 5) for i in range(10)]  # claims 95%, gets 50%
        result, truth = _synthetic_result(pairs)
        assert expected_calibration_error(result, truth) == pytest.approx(0.45)
        assert overconfidence(result, truth) == pytest.approx(0.45)

    def test_underconfidence_is_negative(self):
        pairs = [(0.5, True) for _ in range(10)]
        result, truth = _synthetic_result(pairs)
        assert overconfidence(result, truth) == pytest.approx(-0.5)

    def test_validation(self):
        result, truth = _synthetic_result([(0.5, True)])
        with pytest.raises(ConfigurationError):
            reliability_bins(result, truth, n_bins=0)
        with pytest.raises(ConfigurationError):
            reliability_bins(result, {}, n_bins=5)

    def test_bin_boundaries_cover_unit_interval(self):
        pairs = [(c / 10, True) for c in range(11)]
        result, truth = _synthetic_result(pairs)
        bins = reliability_bins(result, truth, n_bins=5)
        assert sum(b.count for b in bins) == 11  # 1.0 lands in the top bin


class TestEndToEndCalibration:
    def test_ds_reasonably_calibrated(self):
        platform = make_platform(PoolSpec(kind="heterogeneous", size=25), seed=3)
        dataset = labeling_dataset(300, seed=4)
        answers = platform.collect(dataset.tasks, redundancy=5)
        result = DawidSkene().infer(answers)
        ece = expected_calibration_error(result, dataset.truth)
        assert ece < 0.15

    def test_mv_confidence_correlates_with_accuracy(self):
        platform = make_platform(PoolSpec(kind="heterogeneous", size=25), seed=5)
        dataset = labeling_dataset(300, seed=6)
        answers = platform.collect(dataset.tasks, redundancy=5)
        result = MajorityVote().infer(answers)
        bins = reliability_bins(result, dataset.truth, n_bins=4)
        populated = [b for b in bins if b.count >= 10]
        if len(populated) >= 2:
            assert populated[-1].accuracy >= populated[0].accuracy - 0.05
