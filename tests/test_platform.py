"""Unit tests for repro.platform (tasks, events, pricing, market)."""

import math

import pytest

from repro.errors import (
    BudgetExceededError,
    NoWorkersAvailableError,
    PlatformError,
    TaskStateError,
)
from repro.platform.events import EventSimulator
from repro.platform.platform import SimulatedPlatform
from repro.platform.pricing import PriceResponseModel, PricingPolicy
from repro.platform.task import (
    HIT,
    Task,
    TaskState,
    TaskType,
    compare,
    fill,
    numeric,
    rate,
    single_choice,
)
from repro.workers.pool import WorkerPool


class TestTask:
    def test_choice_requires_options(self):
        with pytest.raises(TaskStateError):
            Task(TaskType.SINGLE_CHOICE, question="q")

    def test_difficulty_bounds(self):
        with pytest.raises(TaskStateError):
            Task(TaskType.FILL, question="q", difficulty=1.0)

    def test_negative_reward_rejected(self):
        with pytest.raises(TaskStateError):
            Task(TaskType.FILL, question="q", reward=-1)

    def test_ids_unique(self):
        a, b = fill("q1"), fill("q2")
        assert a.task_id != b.task_id

    def test_lifecycle(self):
        task = fill("q")
        assert task.is_open
        task.complete()
        assert task.state is TaskState.COMPLETED
        with pytest.raises(TaskStateError):
            task.complete()

    def test_cancel(self):
        task = fill("q")
        task.cancel()
        with pytest.raises(TaskStateError):
            task.cancel()

    def test_compare_builder(self):
        task = compare("x", "y", truth="left")
        assert task.options == ("left", "right")
        assert task.payload["left"] == "x"

    def test_rate_builder_scale(self):
        task = rate("q", scale=(1, 7))
        assert task.payload["scale"] == (1, 7)

    def test_numeric_builder(self):
        assert numeric("q", truth=5.0).truth == 5.0

    def test_hit_requires_tasks(self):
        with pytest.raises(TaskStateError):
            HIT(tasks=[])

    def test_hit_reward_defaults_to_sum(self):
        tasks = [fill("a", reward=0.01), fill("b", reward=0.02)]
        hit = HIT(tasks=tasks)
        assert hit.reward == pytest.approx(0.03)
        assert len(hit) == 2


class TestEventSimulator:
    def test_events_in_time_order(self):
        sim = EventSimulator()
        sim.schedule(5.0, "b")
        sim.schedule(1.0, "a")
        sim.schedule(3.0, "c")
        kinds = [e.kind for e in sim.drain()]
        assert kinds == ["a", "c", "b"]

    def test_clock_advances(self):
        sim = EventSimulator()
        sim.schedule(2.5, "x")
        sim.step()
        assert sim.now == pytest.approx(2.5)

    def test_cannot_schedule_past(self):
        sim = EventSimulator()
        with pytest.raises(PlatformError):
            sim.schedule(-1.0, "x")

    def test_schedule_at_absolute(self):
        sim = EventSimulator()
        sim.schedule(1.0, "x")
        sim.step()
        with pytest.raises(PlatformError):
            sim.schedule_at(0.5, "y")

    def test_simultaneous_events_fifo(self):
        sim = EventSimulator()
        sim.schedule(1.0, "first")
        sim.schedule(1.0, "second")
        kinds = [e.kind for e in sim.drain()]
        assert kinds == ["first", "second"]

    def test_run_handler_can_schedule(self):
        sim = EventSimulator()
        sim.schedule(1.0, "tick", count=3)

        def handler(event, simulator):
            remaining = event.payload["count"]
            if remaining > 1:
                simulator.schedule(1.0, "tick", count=remaining - 1)

        final = sim.run(handler)
        assert final == pytest.approx(3.0)
        assert len(sim.log) == 3

    def test_run_until_stops_clock(self):
        sim = EventSimulator()
        sim.schedule(10.0, "late")
        final = sim.run(lambda e, s: None, until=5.0)
        assert final == pytest.approx(5.0)

    def test_runaway_guard(self):
        sim = EventSimulator()
        sim.schedule(1.0, "tick")

        def forever(event, simulator):
            simulator.schedule(1.0, "tick")

        with pytest.raises(PlatformError, match="budget"):
            sim.run(forever, max_events=100)


class TestPricing:
    def test_policy_by_type(self):
        policy = PricingPolicy(default=0.02, by_type={TaskType.COMPARE: 0.005})
        assert policy.price(fill("q")) == pytest.approx(0.02)
        assert policy.price(compare("a", "b")) == pytest.approx(0.005)

    def test_negative_reward_rejected(self):
        with pytest.raises(Exception):
            PricingPolicy(default=-0.01)

    def test_total_cost(self):
        policy = PricingPolicy(default=0.01)
        tasks = [fill("a"), fill("b")]
        assert policy.total_cost(tasks, redundancy=3) == pytest.approx(0.06)

    def test_response_reference_is_unity(self):
        model = PriceResponseModel(reference_reward=0.01)
        assert model.rate_multiplier(0.01) == pytest.approx(1.0)

    def test_response_monotone(self):
        model = PriceResponseModel()
        assert model.rate_multiplier(0.05) > model.rate_multiplier(0.01)

    def test_response_clamped(self):
        model = PriceResponseModel(floor=0.2, ceiling=3.0)
        assert model.rate_multiplier(1e-9) == pytest.approx(0.2)
        assert model.rate_multiplier(1e9) == pytest.approx(3.0)


class TestSimulatedPlatform:
    def test_collect_redundancy_distinct_workers(self, platform):
        tasks = [single_choice("q", ("a", "b"), truth="a") for _ in range(4)]
        answers = platform.collect(tasks, redundancy=3)
        for task in tasks:
            workers = [a.worker_id for a in answers[task.task_id]]
            assert len(set(workers)) == 3

    def test_collect_completes_tasks(self, platform):
        tasks = [single_choice("q", ("a", "b"), truth="a")]
        platform.collect(tasks, redundancy=2)
        assert tasks[0].state is TaskState.COMPLETED

    def test_collect_charges_budget(self, uniform_pool):
        platform = SimulatedPlatform(uniform_pool, budget=0.05, seed=1)
        tasks = [single_choice("q", ("a", "b"), truth="a") for _ in range(2)]
        platform.collect(tasks, redundancy=2)  # 4 answers x 0.01 = 0.04
        with pytest.raises(BudgetExceededError):
            platform.collect(
                [single_choice("q2", ("a", "b"), truth="a")], redundancy=2
            )

    def test_redundancy_exceeding_pool_rejected(self, platform):
        with pytest.raises(NoWorkersAvailableError):
            platform.collect([single_choice("q", ("a",), truth="a")], redundancy=99)

    def test_redundancy_must_be_positive(self, platform):
        with pytest.raises(PlatformError):
            platform.collect([single_choice("q", ("a",), truth="a")], redundancy=0)

    def test_double_publish_rejected(self, platform):
        task = single_choice("q", ("a",), truth="a")
        platform.publish([task])
        with pytest.raises(PlatformError):
            platform.publish([task])

    def test_ask_auto_publishes(self, platform):
        task = single_choice("q", ("a", "b"), truth="a")
        answer = platform.ask(task)
        assert answer.task_id == task.task_id
        assert platform.stats.answers_collected == 1

    def test_ask_closed_task_rejected(self, platform):
        task = single_choice("q", ("a", "b"), truth="a")
        platform.publish([task])
        task.complete()
        with pytest.raises(PlatformError):
            platform.ask(task)

    def test_answers_for(self, platform):
        task = single_choice("q", ("a", "b"), truth="a")
        platform.ask(task)
        platform.ask(task)
        assert len(platform.answers_for(task.task_id)) == 2

    def test_worker_stream_avoids_repeats(self, platform):
        stream = platform.worker_stream()
        ids = [next(stream).worker_id for _ in range(50)]
        assert all(ids[i] != ids[i + 1] for i in range(len(ids) - 1))

    def test_stats_by_worker(self, platform):
        task = single_choice("q", ("a", "b"), truth="a")
        answer = platform.ask(task)
        assert platform.stats.answers_by_worker[answer.worker_id] == 1

    def test_seeded_platforms_reproducible(self):
        def run(seed):
            pool = WorkerPool.uniform(8, 0.7, seed=5)
            positions = {w.worker_id: i for i, w in enumerate(pool)}
            platform = SimulatedPlatform(pool, seed=seed)
            tasks = [single_choice(f"q{i}", ("a", "b"), truth="a") for i in range(10)]
            collected = platform.collect(tasks, redundancy=3)
            # Worker ids are globally unique across pools, so compare pool
            # positions rather than raw ids.
            return [
                (positions[a.worker_id], a.value)
                for t in tasks
                for a in collected[t.task_id]
            ]

        assert run(99) == run(99)
        assert run(99) != run(100)

    def test_remaining_budget_infinite_by_default(self, platform):
        assert math.isinf(platform.remaining_budget)


class TestTimeline:
    def test_timeline_collects_all_answers(self, platform):
        tasks = [single_choice(f"q{i}", ("a", "b"), truth="a") for i in range(10)]
        result = platform.simulate_timeline(tasks, redundancy=2)
        assert len(result.answers) == 20
        assert len(result.completion_times) == 10
        assert result.makespan >= max(result.completion_times.values()) - 1e-9

    def test_timeline_charges_cost(self, uniform_pool):
        platform = SimulatedPlatform(uniform_pool, seed=3)
        tasks = [single_choice("q", ("a", "b"), truth="a") for _ in range(5)]
        platform.simulate_timeline(tasks, redundancy=1)
        assert platform.stats.cost_spent == pytest.approx(0.05)

    def test_completion_waits_for_redundancy(self, platform):
        tasks = [single_choice("q", ("a", "b"), truth="a")]
        result = platform.simulate_timeline(tasks, redundancy=3)
        times = sorted(a.submitted_at for a in result.answers)
        assert result.completion_times[tasks[0].task_id] == pytest.approx(times[2])

    def test_percentile(self, platform):
        tasks = [single_choice(f"q{i}", ("a", "b"), truth="a") for i in range(20)]
        result = platform.simulate_timeline(tasks, redundancy=1)
        assert result.percentile(50) <= result.percentile(95) <= result.makespan + 1e-9


class TestAttrition:
    def test_departure_probability_validated(self, platform):
        tasks = [single_choice("q", ("a", "b"), truth="a")]
        with pytest.raises(PlatformError):
            platform.simulate_timeline(tasks, departure_probability=1.0)

    def test_attrition_leaves_tasks_incomplete(self):
        # 5 workers, near-certain departure after one task: at most ~5-6
        # tasks of 30 can complete.
        pool = WorkerPool.uniform(5, seed=21)
        platform = SimulatedPlatform(pool, seed=22)
        tasks = [single_choice(f"a{i}", ("a", "b"), truth="a") for i in range(30)]
        result = platform.simulate_timeline(tasks, departure_probability=0.95)
        assert len(result.completion_times) < 15

    def test_attrition_does_not_deactivate_pool(self):
        pool = WorkerPool.uniform(5, seed=23)
        platform = SimulatedPlatform(pool, seed=24)
        tasks = [single_choice(f"b{i}", ("a", "b"), truth="a") for i in range(10)]
        platform.simulate_timeline(tasks, departure_probability=0.9)
        assert len(pool.active_workers) == 5

    def test_attrition_slows_completion(self):
        def makespan(departure):
            pool = WorkerPool.uniform(20, seed=25)
            platform = SimulatedPlatform(pool, seed=26)
            tasks = [
                single_choice(f"c{departure}{i}", ("a", "b"), truth="a")
                for i in range(40)
            ]
            result = platform.simulate_timeline(
                tasks, departure_probability=departure
            )
            return result.makespan, len(result.completion_times)

        stable_time, stable_done = makespan(0.0)
        churn_time, churn_done = makespan(0.5)
        # Heavy churn either slows the job down or leaves work unfinished.
        assert churn_done < stable_done or churn_time > stable_time
