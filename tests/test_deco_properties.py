"""Property-based tests for Deco model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deco.model import (
    ConceptualRelation,
    majority_resolution,
    mean_resolution,
    single_column_group,
)

ANCHORS = st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=10)
RAW_EVENTS = st.lists(
    st.tuples(
        st.integers(0, 9),                              # anchor index
        st.sampled_from(["g1", "g2"]),                  # group
        st.sampled_from(["x", "y", "z"]),               # value
    ),
    max_size=40,
)


def _relation() -> ConceptualRelation:
    return ConceptualRelation(
        "r",
        anchors=("name",),
        groups=[
            single_column_group("g1", min_raw=2),
            single_column_group("g2", min_raw=1),
        ],
    )


@given(anchors=ANCHORS)
@settings(max_examples=50)
def test_anchor_dedup_is_exact(anchors):
    relation = _relation()
    added = sum(1 for a in anchors if relation.add_anchor(name=a))
    assert added == len(set(anchors))
    assert len(relation) == len(set(anchors))


@given(anchors=ANCHORS, events=RAW_EVENTS)
@settings(max_examples=50)
def test_resolved_rows_subset_of_anchors_and_monotone(anchors, events):
    relation = _relation()
    names = list(dict.fromkeys(anchors)) or ["only"]
    for name in names:
        relation.add_anchor(name=name)

    resolved_counts = []
    for idx, group, value in events:
        name = names[idx % len(names)]
        relation.add_raw_value({"name": name}, group, **{group: value})
        rows = relation.resolved_rows()
        resolved_counts.append(len(rows))
        # Every resolved row's anchor is a known anchor.
        assert {row["name"] for row in rows} <= set(names)
        # Resolved rows carry values for every group column.
        for row in rows:
            assert set(row) == {"name", "g1", "g2"}
    # Adding raw data never unresolves a tuple (monotone growth).
    assert resolved_counts == sorted(resolved_counts)


@given(values=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=15))
@settings(max_examples=50)
def test_majority_resolution_is_a_mode(values):
    winner = majority_resolution(values)
    counts = {v: values.count(v) for v in set(values)}
    assert counts[winner] == max(counts.values())


@given(values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=15))
@settings(max_examples=50)
def test_mean_resolution_bounded_by_extremes(values):
    resolved = mean_resolution(values)
    assert min(values) - 1e-9 <= resolved <= max(values) + 1e-9


@given(events=RAW_EVENTS)
@settings(max_examples=50)
def test_unresolved_groups_consistent_with_raw_counts(events):
    relation = _relation()
    relation.add_anchor(name="a")
    for _idx, group, value in events:
        relation.add_raw_value({"name": "a"}, group, **{group: value})
    unresolved = set(relation.unresolved_groups({"name": "a"}))
    g1_count = relation.raw_count({"name": "a"}, "g1")
    g2_count = relation.raw_count({"name": "a"}, "g2")
    assert ("g1" in unresolved) == (g1_count < 2)
    assert ("g2" in unresolved) == (g2_count < 1)
