"""Unit tests for repro.experiments (datasets, metrics, harness, report)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.datasets import (
    collection_universe,
    counting_dataset,
    er_dataset,
    fill_dataset,
    labeling_dataset,
    ranking_dataset,
)
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.experiments.metrics import (
    accuracy,
    kendall_tau,
    precision_at_k,
    precision_recall_f1,
    relative_error,
)
from repro.experiments.report import format_series, format_table


class TestLabelingDataset:
    def test_shapes(self):
        ds = labeling_dataset(50, seed=1)
        assert len(ds.tasks) == 50
        assert len(ds.truth) == 50
        assert all(t.truth in ds.labels for t in ds.tasks)

    def test_difficulties_in_range(self):
        ds = labeling_dataset(30, difficulty_range=(0.2, 0.5), seed=2)
        assert all(0.2 <= t.difficulty <= 0.5 for t in ds.tasks)

    def test_reproducible(self):
        a = labeling_dataset(20, seed=3)
        b = labeling_dataset(20, seed=3)
        assert [t.truth for t in a.tasks] == [t.truth for t in b.tasks]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            labeling_dataset(0)
        with pytest.raises(ConfigurationError):
            labeling_dataset(5, labels=("only",))


class TestErDataset:
    def test_cluster_structure(self):
        ds = er_dataset(n_entities=15, records_per_entity=(2, 3), seed=4)
        sizes = {}
        for _idx, cluster in ds.cluster_of.items():
            sizes[cluster] = sizes.get(cluster, 0) + 1
        assert len(sizes) == 15
        assert all(2 <= s <= 3 for s in sizes.values())

    def test_true_pairs_match_clusters(self):
        ds = er_dataset(n_entities=8, seed=5)
        for i, j in ds.true_pairs:
            assert ds.cluster_of[i] == ds.cluster_of[j]
        assert all(
            ds.truth_by_index(i, j) == ((i, j) in ds.true_pairs or i == j)
            for i in range(len(ds.records))
            for j in range(i + 1, len(ds.records))
        )

    def test_cross_entity_separation(self):
        from repro.cost.similarity import jaccard_tokens

        ds = er_dataset(n_entities=20, seed=6)
        cross = [
            jaccard_tokens(ds.records[i], ds.records[j])
            for i in range(0, len(ds.records), 5)
            for j in range(i + 1, len(ds.records))
            if ds.cluster_of[i] != ds.cluster_of[j]
        ]
        assert max(cross) < 0.6  # entities share few tokens

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            er_dataset(n_entities=1)


class TestOtherDatasets:
    def test_ranking_scores_unique_order(self):
        ds = ranking_dataset(10, seed=7)
        assert len(ds.true_order) == 10
        scores = [ds.scores[ds.items[i]] for i in ds.true_order]
        assert scores == sorted(scores, reverse=True)

    def test_ranking_spread(self):
        ds = ranking_dataset(10, score_spread=0.1, seed=8)
        values = list(ds.scores.values())
        assert max(values) - min(values) <= 0.1 + 1e-9

    def test_counting_selectivity_exact(self):
        ds = counting_dataset(1000, selectivity=0.25, seed=9)
        assert ds.true_count == 250
        assert ds.truth_fn(ds.items[0]) in (True, False)

    def test_counting_validation(self):
        with pytest.raises(ConfigurationError):
            counting_dataset(10, selectivity=1.5)

    def test_collection_universe_distinct(self):
        universe = collection_universe(100, seed=10)
        assert len(set(universe)) == 100

    def test_fill_dataset(self):
        ds = fill_dataset(5, seed=11)
        assert len(ds.rows) == 5
        row = ds.rows[0]
        assert ds.truth_fn(row, "hometown").startswith("city-")
        assert ds.truth_fn(row, "employer").startswith("org-")


class TestMetrics:
    def test_accuracy(self):
        assert accuracy({"a": 1, "b": 2}, {"a": 1, "b": 3}) == 0.5

    def test_accuracy_no_overlap_raises(self):
        with pytest.raises(ConfigurationError):
            accuracy({"a": 1}, {"b": 1})

    def test_prf_perfect(self):
        assert precision_recall_f1({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)

    def test_prf_partial(self):
        p, r, f1 = precision_recall_f1({1, 2, 3}, {1, 4})
        assert p == pytest.approx(1 / 3)
        assert r == pytest.approx(1 / 2)
        assert f1 == pytest.approx(2 * (1 / 3) * (1 / 2) / (1 / 3 + 1 / 2))

    def test_prf_empty_prediction(self):
        p, r, f1 = precision_recall_f1(set(), {1})
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_kendall_perfect_and_reversed(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_kendall_requires_same_items(self):
        with pytest.raises(ConfigurationError):
            kendall_tau([1, 2], [1, 3])

    def test_precision_at_k(self):
        assert precision_at_k([1, 2, 3], [1, 3, 9], k=2) == 0.5

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(5, 0) == 5


class TestHarness:
    def test_pool_specs_build(self):
        for kind in ("uniform", "heterogeneous", "spammers", "glad", "comparison"):
            pool = PoolSpec(kind=kind, size=5).build(seed=1)
            assert len(pool) == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolSpec(kind="aliens").build()

    def test_make_platform_deterministic(self):
        spec = PoolSpec(kind="uniform", size=4, accuracy=0.9)
        a = make_platform(spec, seed=3)
        b = make_platform(spec, seed=3)
        assert [w.model.accuracy for w in a.pool] == [
            w.model.accuracy for w in b.pool
        ]

    def test_run_trials_aggregates(self):
        result = run_trials("demo", lambda seed: {"value": float(seed)}, n_trials=3)
        assert result.mean("value") == pytest.approx(1.0)
        assert result.std("value") == pytest.approx(1.0)
        assert result.summary() == {"value": 1.0}

    def test_run_trials_missing_metric(self):
        result = run_trials("demo", lambda seed: {"x": 1.0}, n_trials=2)
        with pytest.raises(ConfigurationError):
            result.mean("y")

    def test_run_trials_validation(self):
        with pytest.raises(ConfigurationError):
            run_trials("demo", lambda seed: {}, n_trials=0)


class TestReport:
    def test_table_alignment(self):
        text = format_table(
            [{"name": "mv", "acc": 0.8321}, {"name": "ds", "acc": 0.9}],
            title="T1",
        )
        lines = text.splitlines()
        assert lines[0] == "T1"
        assert "mv" in text and "0.832" in text
        assert len(set(len(line) for line in lines[1:])) <= 2  # aligned

    def test_table_empty(self):
        assert "(empty)" in format_table([])

    def test_series_bars(self):
        text = format_series([1, 2], [0.5, 1.0], title="F1")
        assert "F1" in text
        assert text.count("#") > 0

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])
