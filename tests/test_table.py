"""Unit tests for repro.data.table."""

import pytest

from repro.data.schema import CNULL, SchemaBuilder, is_cnull
from repro.data.table import Table, make_table
from repro.errors import KeyViolationError, UnknownColumnError


@pytest.fixture
def people(people_schema):
    return make_table(
        "people",
        people_schema,
        rows=[
            {"name": "ann", "age": 30},
            {"name": "bob", "age": 25, "hometown": "rome"},
        ],
    )


class TestInsert:
    def test_len(self, people):
        assert len(people) == 2

    def test_rowids_start_at_one(self, people):
        assert [r.rowid for r in people] == [1, 2]

    def test_crowd_default_is_cnull(self, people):
        assert is_cnull(people.row(1)["hometown"])

    def test_explicit_crowd_value_kept(self, people):
        assert people.row(2)["hometown"] == "rome"

    def test_duplicate_pk_rejected(self, people):
        with pytest.raises(KeyViolationError):
            people.insert({"name": "ann", "age": 99})

    def test_null_pk_rejected(self):
        schema = SchemaBuilder().string("k").integer("v").key("k").build()
        table = Table("t", schema)
        with pytest.raises(KeyViolationError):
            table.insert({"k": None, "v": 1})

    def test_insert_returns_row(self, people):
        row = people.insert({"name": "carol"})
        assert row["name"] == "carol" and row.rowid == 3

    def test_rowids_not_reused_after_delete(self, people):
        people.delete(2)
        row = people.insert({"name": "dave"})
        assert row.rowid == 3


class TestRow:
    def test_getitem_unknown_column(self, people):
        with pytest.raises(UnknownColumnError):
            people.row(1)["salary"]

    def test_as_dict_is_copy(self, people):
        snapshot = people.row(1).as_dict()
        snapshot["age"] = 999
        assert people.row(1)["age"] == 30

    def test_eq_dict(self, people):
        assert people.row(2) == {"name": "bob", "age": 25, "hometown": "rome"}

    def test_has_cnull(self, people):
        assert people.row(1).has_cnull()
        assert not people.row(2).has_cnull()

    def test_get_default(self, people):
        assert people.row(1).get("salary", -1) == -1

    def test_iteration_yields_columns(self, people):
        assert list(people.row(1)) == ["name", "age", "hometown"]


class TestMutation:
    def test_update_cell(self, people):
        people.update_cell(1, "hometown", "paris")
        assert people.row(1)["hometown"] == "paris"
        assert people.cnull_cells() == []

    def test_update_cell_validates_type(self, people):
        with pytest.raises(Exception):
            people.update_cell(1, "age", "not a number")

    def test_update_pk_rejected(self, people):
        with pytest.raises(KeyViolationError):
            people.update_cell(1, "name", "zed")

    def test_delete(self, people):
        people.delete(1)
        assert len(people) == 1
        with pytest.raises(KeyError):
            people.row(1)

    def test_delete_frees_pk(self, people):
        people.delete(1)
        people.insert({"name": "ann", "age": 1})  # pk reusable after delete

    def test_delete_missing_raises(self, people):
        with pytest.raises(KeyError):
            people.delete(77)

    def test_clear(self, people):
        people.clear()
        assert len(people) == 0
        assert people.lookup(name="ann") is None


class TestQueries:
    def test_lookup_hit(self, people):
        assert people.lookup(name="bob")["age"] == 25

    def test_lookup_miss(self, people):
        assert people.lookup(name="zed") is None

    def test_lookup_requires_full_key(self, people):
        with pytest.raises(KeyViolationError):
            people.lookup(age=30)

    def test_scan_with_predicate(self, people):
        old = list(people.scan(lambda r: (r["age"] or 0) > 26))
        assert [r["name"] for r in old] == ["ann"]

    def test_scan_without_predicate(self, people):
        assert len(list(people.scan())) == 2

    def test_cnull_cells(self, people):
        assert people.cnull_cells() == [(1, "hometown")]

    def test_completeness(self, people):
        assert people.completeness() == pytest.approx(0.5)

    def test_completeness_no_crowd_columns(self):
        schema = SchemaBuilder().string("a").build()
        table = make_table("t", schema, rows=[{"a": "x"}])
        assert table.completeness() == 1.0

    def test_completeness_empty_table(self, people_schema):
        assert Table("t", people_schema).completeness() == 1.0

    def test_to_dicts_preserves_cnull(self, people):
        dicts = people.to_dicts()
        assert dicts[0]["hometown"] is CNULL

    def test_copy_is_independent(self, people):
        clone = people.copy("clone")
        clone.update_cell(1, "hometown", "oslo")
        assert is_cnull(people.row(1)["hometown"])
        assert clone.name == "clone"
