"""Tests for the query profiler and the live-ops metrics server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import CrowdEngine, EngineConfig
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, MetricsServer, QueryProfiler
from repro.obs.profiler import load_profile, render_profile

SCRIPT = """
CREATE TABLE films (title STRING NOT NULL, score FLOAT, PRIMARY KEY (title));
INSERT INTO films VALUES ('a', 1.0), ('b', 2.0), ('c', 3.0);
CREATE TABLE imports (listing STRING NOT NULL, PRIMARY KEY (listing));
INSERT INTO imports VALUES ('a'), ('b');
SELECT listing, title FROM imports CROWDJOIN films ON CROWDEQUAL(listing, title);
SELECT title FROM films CROWDORDER BY score LIMIT 2;
"""


def profiled_engine(tmp_path, **overrides):
    return CrowdEngine(
        EngineConfig(
            seed=9, profile_path=str(tmp_path / "profile.json"), **overrides
        )
    )


class TestQueryProfiler:
    def test_profile_path_implies_metrics(self, tmp_path):
        config = EngineConfig(profile_path=str(tmp_path / "p.json"))
        assert config.metrics_enabled

    def test_metrics_port_validation(self):
        with pytest.raises(ConfigurationError, match="metrics_port"):
            EngineConfig(metrics_port=70000)

    def test_per_statement_records(self, tmp_path):
        engine = profiled_engine(tmp_path)
        engine.sql(SCRIPT)
        profile = engine.profiler.profile()
        engine.close()
        statements = profile["statements"]
        assert [s["statement"] for s in statements] == [
            "CREATE TABLE films",
            "INSERT films",
            "CREATE TABLE imports",
            "INSERT imports",
            "SELECT imports",
            "SELECT films",
        ]
        create = statements[0]
        assert create["hits_published"] == 0 and create["cost"] == 0
        join = statements[4]
        assert join["hits_published"] > 0
        assert join["cost"] > 0
        assert join["rows_out"] >= 2
        (join_op,) = join["operators"]
        assert join_op["operator"] == "crowdjoin"
        assert join_op["runs"] == 1
        assert join_op["cost"] == pytest.approx(join["cost"])
        assert join_op["wall_s"] > 0
        sort = statements[5]
        (sort_op,) = sort["operators"]
        assert sort_op["operator"] == "sort"
        assert sort_op["items"] == 3
        assert profile["totals"]["statements"] == 6
        assert profile["totals"]["cost"] == pytest.approx(
            sum(s["cost"] for s in statements)
        )

    def test_simulated_time_attributed_to_crowd_statements(self, tmp_path):
        engine = profiled_engine(tmp_path)
        engine.sql(SCRIPT)
        statements = engine.profiler.profile()["statements"]
        engine.close()
        assert statements[0]["sim_s"] == 0.0
        assert statements[4]["sim_s"] > 0.0

    def test_close_writes_profile_json(self, tmp_path):
        engine = profiled_engine(tmp_path)
        engine.sql(SCRIPT)
        engine.close()
        document = load_profile(str(tmp_path / "profile.json"))
        assert document["version"] == 1
        assert document["totals"]["statements"] == 6

    def test_em_iterations_attributed_by_method(self, tmp_path):
        engine = profiled_engine(tmp_path, inference="ds", redundancy=5)
        engine.sql(SCRIPT)
        statements = engine.profiler.profile()["statements"]
        engine.close()
        crowd = [s for s in statements if s["hits_published"] > 0]
        assert any(s["em_iterations"] for s in crowd)
        for s in crowd:
            for method, iterations in s["em_iterations"].items():
                assert method and iterations > 0

    def test_failed_statement_is_recorded(self, tmp_path):
        from repro.errors import CrowdDMError

        engine = profiled_engine(tmp_path)
        with pytest.raises(CrowdDMError):
            engine.sql("CREATE TABLE t (a STRING); SELECT a FROM nope;")
        statements = engine.profiler.profile()["statements"]
        engine.close()
        assert statements[-1]["failed"] is True

    def test_render_profile_tables(self, tmp_path):
        engine = profiled_engine(tmp_path)
        engine.sql(SCRIPT)
        engine.close()
        text = render_profile(load_profile(str(tmp_path / "profile.json")))
        assert "per-statement profile" in text
        assert "SELECT imports" in text
        assert "crowdjoin" in text
        assert text.strip().endswith("EM iterations")

    def test_render_empty_profile(self):
        assert render_profile({"statements": []}) == "(empty profile)"

    def test_load_profile_rejects_non_profile(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="not a profile document"):
            load_profile(str(path))
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not a JSON profile"):
            load_profile(str(path))

    def test_profiler_without_engine(self):
        """The profiler is usable standalone around any registry activity."""
        registry = MetricsRegistry(enabled=True)
        profiler = QueryProfiler(registry)
        with profiler.statement(0, "synthetic") as capture:
            registry.inc("platform.tasks_published", 4)
            registry.inc("platform.cost_spent", 0.2)
            registry.inc("operator.runs", labels={"operator": "filter"})
            registry.observe("operator.wall", 0.5, labels={"operator": "filter"})
        record = profiler.statements[0]
        assert record["hits_published"] == 4
        assert record["cost"] == pytest.approx(0.2)
        assert record["operators"][0]["operator"] == "filter"
        assert record["operators"][0]["wall_s"] == pytest.approx(0.5)
        assert capture.rows_out is None


def http_get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


class TestMetricsServer:
    def test_serves_metrics_healthz_and_run(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("platform.tasks_published", 7)
        with MetricsServer(registry, run_status=lambda: {"state": "idle"}) as server:
            assert server.running and server.port > 0
            status, headers, body = http_get(f"{server.url}/metrics")
            assert status == 200
            assert "version=0.0.4" in headers["Content-Type"]
            assert "platform_hits_published_total 7" in body
            status, _, body = http_get(f"{server.url}/healthz")
            assert (status, body) == (200, "ok\n")
            status, headers, body = http_get(f"{server.url}/run")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert json.loads(body) == {"state": "idle"}
        assert not server.running

    def test_scrape_reflects_counter_advances(self):
        registry = MetricsRegistry(enabled=True)
        with MetricsServer(registry) as server:
            registry.inc("platform.answers_collected", 1)
            _, _, first = http_get(f"{server.url}/metrics")
            registry.inc("platform.answers_collected", 2)
            _, _, second = http_get(f"{server.url}/metrics")
        assert "platform_answers_collected_total 1" in first
        assert "platform_answers_collected_total 3" in second

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(enabled=True)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_run_provider_error_is_500_not_crash(self):
        def broken():
            raise RuntimeError("boom")

        with MetricsServer(MetricsRegistry(enabled=True), run_status=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(f"{server.url}/run")
            assert excinfo.value.code == 500
            # The server survives the failed request.
            status, _, _ = http_get(f"{server.url}/healthz")
            assert status == 200

    def test_stop_and_start_idempotent(self):
        server = MetricsServer(MetricsRegistry(enabled=True))
        server.stop()  # never started: no-op
        server.start()
        server.start()  # idempotent
        port = server.port
        assert port > 0
        server.stop()
        server.stop()
        assert not server.running

    def test_rejects_invalid_port(self):
        with pytest.raises(ConfigurationError, match="metrics port"):
            MetricsServer(MetricsRegistry(enabled=True), port=-1)

    def test_bind_conflict_raises_configuration_error(self):
        registry = MetricsRegistry(enabled=True)
        with MetricsServer(registry) as server:
            clone = MetricsServer(registry, port=server.port)
            with pytest.raises(ConfigurationError, match="cannot bind"):
                clone.start()


class TestEngineLiveOps:
    def test_engine_serves_run_status_during_lifetime(self, tmp_path):
        config = EngineConfig(
            seed=3,
            metrics_port=0,
            budget=10.0,
            cache_enabled=True,
            budget_reserve=1.0,
        )
        engine = CrowdEngine(config)
        try:
            url = engine.metrics_server.url
            engine.sql(SCRIPT)
            _, _, body = http_get(f"{url}/run")
            payload = json.loads(body)
            assert payload["current_statement"] is None
            assert payload["budget"]["limit"] == 10.0
            assert payload["budget"]["spent"] > 0
            assert payload["budget"]["remaining"] == pytest.approx(
                10.0 - payload["budget"]["spent"]
            )
            assert payload["hits_published"] > 0
            assert payload["cache"]["enabled"] is True
            names = [b["name"] for b in payload["breakers"]]
            assert "breaker:budget" in names
            _, _, metrics_body = http_get(f"{url}/metrics")
            from repro.obs.prom import validate_exposition

            assert validate_exposition(metrics_body) > 0
        finally:
            engine.close()
        assert engine.metrics_server is not None
        assert not engine.metrics_server.running

    def test_run_status_reports_current_statement_mid_query(self):
        """The /run payload exposes the in-flight statement label."""
        engine = CrowdEngine(EngineConfig(seed=3, metrics_port=0))
        try:
            seen = {}
            original = engine._session._execute_statement

            def spy(statement):
                _, _, body = http_get(f"{engine.metrics_server.url}/run")
                seen["label"] = json.loads(body)["current_statement"]
                return original(statement)

            engine._session._execute_statement = spy
            engine.sql("CREATE TABLE t (a STRING);")
            assert seen["label"] == "CREATE TABLE t"
        finally:
            engine.close()
