"""Prometheus exposition conformance tests (repro.obs.prom).

Round-trips rendered output through the minimal conformance parser, and
pins the parts of the format a real scraper depends on: name/label
syntax, escaping, NaN/±Inf spelling, cumulative buckets with a ``+Inf``
terminator, and bit-identical re-renders of a fixed registry.
"""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prom import (
    CONTENT_TYPE,
    DESCRIPTOR_INDEX,
    DESCRIPTORS,
    ExpositionError,
    escape_label_value,
    format_value,
    parse_exposition,
    prom_name_for,
    render_prometheus,
    sanitize_metric_name,
    validate_exposition,
)


class TestDescriptorTable:
    def test_internal_names_are_unique(self):
        assert len(DESCRIPTOR_INDEX) == len(DESCRIPTORS)

    def test_naming_scheme_subsystem_name_unit(self):
        for descriptor in DESCRIPTORS:
            assert "." not in descriptor.prom_name
            subsystem = descriptor.name.split(".", 1)[0]
            assert descriptor.prom_name.startswith(subsystem + "_"), descriptor
            if descriptor.kind == "counter":
                assert descriptor.prom_name.endswith("_total"), descriptor
            else:
                assert not descriptor.prom_name.endswith("_total"), descriptor

    def test_every_descriptor_has_help(self):
        for descriptor in DESCRIPTORS:
            assert descriptor.help.strip()
            assert descriptor.kind in ("counter", "gauge", "histogram")

    def test_documented_aliases_cover_platform_stats_metrics(self):
        """Every PlatformStats-backed metric must have an exposition name."""
        from repro.platform.platform import _STAT_METRICS

        for metric in _STAT_METRICS.values():
            assert metric in DESCRIPTOR_INDEX, metric

    def test_prom_name_for_descriptor_hit(self):
        prom, help_text, buckets = prom_name_for("platform.tasks_published", "counter")
        assert prom == "platform_hits_published_total"
        assert help_text
        assert buckets is None

    def test_prom_name_for_dynamic_family_sanitizes(self):
        prom, _, _ = prom_name_for("faults.worker-quake", "counter")
        assert prom == "faults_worker_quake_total"
        prom, _, _ = prom_name_for("operator.filter.wall", "histogram")
        assert prom == "operator_filter_wall"

    def test_sanitize_handles_leading_digit(self):
        assert sanitize_metric_name("9lives") == "_9lives"


class TestFormatting:
    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_format_value_specials(self):
        assert format_value(math.nan) == "NaN"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(7) == "7"


def registry_with_everything():
    registry = MetricsRegistry(enabled=True)
    registry.inc("platform.tasks_published", 5)
    registry.inc("platform.cost_spent", 1.25)
    registry.inc("cache.requests", 3, labels={"outcome": "hit"})
    registry.inc("cache.requests", 2, labels={"outcome": "miss"})
    registry.inc("operator.runs", labels={"operator": "filter"})
    registry.inc("operator.runs", labels={"operator": "join"})
    registry.set_gauge("pool.size", 25)
    registry.observe("batch.assignment_latency", 0.3)
    registry.observe("batch.assignment_latency", 40.0)
    registry.observe("operator.wall", 0.02, labels={"operator": "filter"})
    return registry


class TestRender:
    def test_round_trips_through_conformance_parser(self):
        text = render_prometheus(registry_with_everything())
        families = parse_exposition(text)
        assert families["platform_hits_published_total"]["samples"] == [
            ("platform_hits_published_total", (), 5.0)
        ]
        hits = {
            labels: value
            for _, labels, value in families["cache_requests_total"]["samples"]
        }
        assert hits[(("outcome", "hit"),)] == 3.0
        assert hits[(("outcome", "miss"),)] == 2.0
        assert validate_exposition(text) > 0

    def test_help_and_type_precede_samples(self):
        text = render_prometheus(registry_with_everything())
        lines = text.splitlines()
        seen_types: dict[str, int] = {}
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                seen_types[line.split(" ")[2]] = index
        for index, line in enumerate(lines):
            if line.startswith("#"):
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in seen_types:
                    base = name[: -len(suffix)]
            assert seen_types[base] < index

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        registry = MetricsRegistry(enabled=True)
        for value in (0.001, 0.3, 0.3, 7.0, 1000.0):
            registry.observe("batch.assignment_latency", value)
        text = render_prometheus(registry)
        families = parse_exposition(text)
        samples = families["batch_assignment_latency_seconds"]["samples"]
        buckets = [
            (dict(labels)["le"], value)
            for name, labels, value in samples
            if name.endswith("_bucket")
        ]
        assert buckets[-1] == ("+Inf", 5.0)
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)
        count = [v for n, _, v in samples if n.endswith("_count")][0]
        assert count == 5.0
        total = [v for n, _, v in samples if n.endswith("_sum")][0]
        assert total == pytest.approx(1007.601)

    def test_descriptor_bucket_override_applies(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("batch.retries_per_task", 0.0)
        registry.observe("batch.retries_per_task", 3.0)
        text = render_prometheus(registry)
        assert 'batch_retries_per_task_bucket{le="16"} 2' in text
        assert 'batch_retries_per_task_bucket{le="2"} 1' in text

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry(enabled=True)
        nasty = 'he said "hi\\there"\nbye'
        registry.inc("faults.custom", labels={"kind": nasty})
        text = render_prometheus(registry)
        families = parse_exposition(text)
        ((_, labels, value),) = families["faults_custom_total"]["samples"]
        assert dict(labels)["kind"] == nasty
        assert value == 1.0

    def test_rerender_is_bit_identical(self):
        registry = registry_with_everything()
        first = render_prometheus(registry)
        assert render_prometheus(registry) == first

    def test_special_float_values_survive(self):
        registry = MetricsRegistry(enabled=True)
        registry.set_gauge("budget.remaining", math.inf)
        registry.set_gauge("budget.nan", math.nan)
        text = render_prometheus(registry)
        families = parse_exposition(text)
        ((_, _, inf_value),) = families["budget_remaining"]["samples"]
        assert math.isinf(inf_value)
        ((_, _, nan_value),) = families["budget_nan"]["samples"]
        assert math.isnan(nan_value)

    def test_empty_registry_renders_empty_body(self):
        assert render_prometheus(MetricsRegistry(enabled=True)) == "\n"
        assert validate_exposition("\n") == 0

    def test_content_type_pins_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestConformanceParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ExpositionError, match="no preceding # TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_rejects_duplicate_series(self):
        body = (
            "# TYPE x counter\n"
            'x{a="1"} 1\n'
            'x{a="1"} 2\n'
        )
        with pytest.raises(ExpositionError, match="duplicate series"):
            parse_exposition(body)

    def test_rejects_malformed_labels(self):
        body = "# TYPE x counter\nx{a=1} 1\n"
        with pytest.raises(ExpositionError, match="malformed label set"):
            parse_exposition(body)

    def test_rejects_unparseable_value(self):
        body = "# TYPE x counter\nx banana\n"
        with pytest.raises(ExpositionError, match="unparseable sample value"):
            parse_exposition(body)

    def test_rejects_histogram_missing_inf_bucket(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        with pytest.raises(ExpositionError, match="missing \\+Inf"):
            parse_exposition(body)

    def test_rejects_non_monotone_buckets(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="not monotone"):
            parse_exposition(body)

    def test_rejects_inf_bucket_count_mismatch(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="\\+Inf bucket != _count"):
            parse_exposition(body)

    def test_rejects_duplicate_type_line(self):
        body = "# TYPE x counter\n# TYPE x counter\n"
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_exposition(body)


class TestEngineExposition:
    def test_engine_run_renders_conformant_exposition(self):
        from repro.core import CrowdEngine, EngineConfig

        with CrowdEngine(EngineConfig(metrics_enabled=True, seed=5)) as engine:
            engine.sql(
                "CREATE TABLE t (a STRING, s FLOAT, PRIMARY KEY (a));"
                "INSERT INTO t VALUES ('x', 1.0), ('y', 2.0), ('z', 3.0);"
                "SELECT a FROM t CROWDORDER BY s LIMIT 2;"
            )
            text = render_prometheus(engine.metrics)
        families = parse_exposition(text)
        assert validate_exposition(text) > 0
        published = families["platform_hits_published_total"]["samples"][0][2]
        assert published > 0
        # Labeled operator family carries the same run.
        runs = families["operator_runs_total"]["samples"]
        assert any(dict(labels).get("operator") == "sort" for _, labels, _ in runs)
