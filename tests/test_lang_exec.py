"""Unit tests for CrowdSQL planning, optimization, and execution."""

import pytest

from repro.data.database import Database
from repro.data.schema import CNULL, SchemaBuilder
from repro.errors import ExecutionError, PlanError
from repro.lang.executor import CrowdOracle
from repro.lang.interpreter import CrowdSQLSession, StatementResult
from repro.lang.optimizer import CostModel, Optimizer, estimate_plan_cost
from repro.lang.parser import parse_one
from repro.lang.planner import (
    CrowdFilterNode,
    FillNode,
    FilterNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    build_plan,
    count_crowd_operators,
)
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


@pytest.fixture
def db():
    database = Database()
    schema = (
        SchemaBuilder()
        .string("name", nullable=False)
        .integer("age")
        .crowd_string("hometown")
        .key("name")
        .build()
    )
    database.create_table(
        "people",
        schema,
        rows=[
            {"name": "ann", "age": 30, "hometown": "paris"},
            {"name": "bob", "age": 25, "hometown": "rome"},
            {"name": "cal", "age": 41, "hometown": "oslo"},
        ],
    )
    return database


@pytest.fixture
def session(db):
    platform = SimulatedPlatform(WorkerPool.uniform(12, 0.95, seed=1), seed=2)
    hometowns = {"ann": "paris", "bob": "rome", "cal": "oslo", "dee": "oslo"}
    oracle = CrowdOracle(
        fill_fn=lambda row, col: hometowns[row["name"]],
        filter_fn=lambda value, q: "o" in str(value),
    )
    return CrowdSQLSession(database=db, platform=platform, oracle=oracle, redundancy=3)


class TestPlanner:
    def test_plan_shape(self, db):
        stmt = parse_one("SELECT name FROM people WHERE age > 26 LIMIT 2")
        plan = build_plan(stmt, db)
        assert isinstance(plan.root, LimitNode)
        assert isinstance(plan.root.child, ProjectNode)
        assert isinstance(plan.root.child.child, FilterNode)
        assert isinstance(plan.root.child.child.child, ScanNode)

    def test_unknown_table_rejected(self, db):
        with pytest.raises(PlanError):
            build_plan(parse_one("SELECT * FROM ghosts"), db)

    def test_fill_inserted_only_when_crowd_column_referenced(self, db):
        db.table("people").insert({"name": "dee", "age": 5})  # hometown CNULL
        with_crowd = build_plan(parse_one("SELECT hometown FROM people"), db)
        without = build_plan(parse_one("SELECT name FROM people"), db)
        assert any(isinstance(n, FillNode) for n in with_crowd.root.walk())
        assert not any(isinstance(n, FillNode) for n in without.root.walk())

    def test_crowd_predicate_becomes_crowd_filter(self, db):
        stmt = parse_one("SELECT * FROM people WHERE CROWDFILTER(name, 'q?')")
        plan = build_plan(stmt, db)
        assert any(isinstance(n, CrowdFilterNode) for n in plan.root.walk())
        assert count_crowd_operators(plan) == 1

    def test_explain_renders_tree(self, db):
        plan = build_plan(parse_one("SELECT name FROM people WHERE age > 1"), db)
        text = plan.explain()
        assert "Scan(people)" in text and "Filter" in text


class TestOptimizer:
    def test_machine_filters_run_before_crowd(self, db):
        stmt = parse_one(
            "SELECT * FROM people WHERE CROWDFILTER(name, 'q?') AND age > 26"
        )
        plan = Optimizer(db).optimize(build_plan(stmt, db))
        # From the top: CrowdFilter above Filter above Scan.
        nodes = list(plan.root.walk())
        crowd_idx = next(i for i, n in enumerate(nodes) if isinstance(n, CrowdFilterNode))
        machine_idx = next(i for i, n in enumerate(nodes) if isinstance(n, FilterNode))
        assert crowd_idx < machine_idx  # walk is top-down: crowd on top

    def test_machine_filter_sinks_below_fill(self, db):
        db.table("people").insert({"name": "dee", "age": 5})
        stmt = parse_one("SELECT hometown FROM people WHERE age > 26")
        plan = Optimizer(db).optimize(build_plan(stmt, db))
        nodes = list(plan.root.walk())
        fill_idx = next(i for i, n in enumerate(nodes) if isinstance(n, FillNode))
        filter_idx = next(i for i, n in enumerate(nodes) if isinstance(n, FilterNode))
        assert fill_idx < filter_idx  # filter below fill = filter runs first

    def test_filter_on_crowd_column_stays_above_fill(self, db):
        db.table("people").insert({"name": "dee", "age": 5})
        stmt = parse_one("SELECT hometown FROM people WHERE hometown = 'paris'")
        plan = Optimizer(db).optimize(build_plan(stmt, db))
        nodes = list(plan.root.walk())
        fill_idx = next(i for i, n in enumerate(nodes) if isinstance(n, FillNode))
        filter_idx = next(i for i, n in enumerate(nodes) if isinstance(n, FilterNode))
        assert filter_idx < fill_idx

    def test_crowd_filters_ordered_by_cost(self, db):
        stmt = parse_one(
            "SELECT * FROM people WHERE CROWDFILTER(name, 'q?') AND CROWDEQUAL(name, hometown)"
        )
        plan = Optimizer(db).optimize(build_plan(stmt, db))
        crowd_nodes = [n for n in plan.root.walk() if isinstance(n, CrowdFilterNode)]
        assert len(crowd_nodes) == 2
        # CROWDEQUAL (selectivity 0.15) should run before CROWDFILTER (0.5):
        # walk order is top-down, so the later-executed node comes first.
        from repro.lang.planner import crowd_predicates_of

        top, bottom = crowd_nodes
        assert crowd_predicates_of(bottom.predicate)[0].kind == "equal"
        assert crowd_predicates_of(top.predicate)[0].kind == "filter"

    def test_optimized_cost_not_worse(self, db):
        stmt = parse_one(
            "SELECT * FROM people WHERE CROWDFILTER(name, 'q?') AND age > 26"
        )
        raw = build_plan(stmt, db)
        optimized = Optimizer(db).optimize(raw)
        model = CostModel()
        assert estimate_plan_cost(optimized, db, model) <= estimate_plan_cost(
            raw, db, model
        )

    def test_idempotent(self, db):
        stmt = parse_one(
            "SELECT * FROM people WHERE CROWDFILTER(name, 'q?') AND age > 26"
        )
        once = Optimizer(db).optimize(build_plan(stmt, db))
        twice = Optimizer(db).optimize(once)
        assert once.root.describe() == twice.root.describe()
        assert len(list(once.root.walk())) == len(list(twice.root.walk()))


class TestExecution:
    def test_machine_query(self, session):
        result = session.query("SELECT name, age FROM people WHERE age > 26 ORDER BY age")
        assert [r["name"] for r in result.rows] == ["ann", "cal"]
        assert result.stats.crowd_questions == 0

    def test_order_desc(self, session):
        result = session.query("SELECT name FROM people ORDER BY age DESC")
        assert [r["name"] for r in result.rows] == ["cal", "ann", "bob"]

    def test_limit(self, session):
        assert len(session.query("SELECT * FROM people LIMIT 2")) == 2

    def test_distinct(self, session):
        session.execute(
            "CREATE TABLE tags (tag STRING);"
            "INSERT INTO tags VALUES ('a'), ('a'), ('b')"
        )
        result = session.query("SELECT DISTINCT tag FROM tags")
        assert sorted(r["tag"] for r in result.rows) == ["a", "b"]

    def test_machine_join(self, session):
        session.execute(
            "CREATE TABLE cities (cname STRING, country STRING);"
            "INSERT INTO cities VALUES ('paris', 'france'), ('rome', 'italy')"
        )
        result = session.query(
            "SELECT name, country FROM people JOIN cities ON hometown = cname"
        )
        by_name = {r["name"]: r["country"] for r in result.rows}
        assert by_name == {"ann": "france", "bob": "italy"}

    def test_join_name_clash_rejected(self, session):
        session.execute(
            "CREATE TABLE other (name STRING, x INTEGER);"
            "INSERT INTO other VALUES ('ann', 1)"
        )
        with pytest.raises(ExecutionError, match="share column"):
            session.query("SELECT * FROM people JOIN other ON x = age")

    def test_crowd_fill_resolves_cnull(self, session):
        session.execute("INSERT INTO people (name, age) VALUES ('dee', 19)")
        result = session.query("SELECT name, hometown FROM people WHERE name = 'dee'")
        assert result.rows[0]["hometown"] == "oslo" or result.rows[0]["hometown"] in (
            "paris", "rome", "oslo"
        )
        assert result.stats.cells_filled == 1

    def test_fill_without_oracle_raises(self, db):
        platform = SimulatedPlatform(WorkerPool.uniform(5, seed=1), seed=2)
        session = CrowdSQLSession(database=db, platform=platform)
        db.table("people").insert({"name": "dee", "age": 5})
        with pytest.raises(ExecutionError, match="fill oracle"):
            session.query("SELECT hometown FROM people")

    def test_crowdfilter_query(self, session):
        result = session.query(
            "SELECT name FROM people WHERE CROWDFILTER(hometown, 'contains o?')"
        )
        names = {r["name"] for r in result.rows}
        assert names == {"bob", "cal"}  # rome, oslo contain 'o'
        assert result.stats.crowd_questions >= 3

    def test_crowdfilter_without_oracle_raises(self, db):
        platform = SimulatedPlatform(WorkerPool.uniform(5, seed=1), seed=2)
        session = CrowdSQLSession(database=db, platform=platform)
        with pytest.raises(ExecutionError, match="filter oracle"):
            session.query("SELECT * FROM people WHERE CROWDFILTER(name, 'q')")

    def test_machine_first_saves_crowd_questions(self, session):
        result = session.query(
            "SELECT name FROM people WHERE CROWDFILTER(hometown, 'q?') AND age > 26"
        )
        # Machine filter leaves 2 rows, so at most 2 crowd questions.
        assert result.stats.crowd_questions <= 2

    def test_crowdequal_join(self, session):
        session.execute(
            "CREATE TABLE aliases (alias STRING);"
            "INSERT INTO aliases VALUES ('rome'), ('nowhere')"
        )
        result = session.query(
            "SELECT name FROM people CROWDJOIN aliases ON CROWDEQUAL(hometown, alias)"
        )
        assert {r["name"] for r in result.rows} == {"bob"}

    def test_crowdorder_numeric(self, session):
        session.execute(
            "CREATE TABLE scores (label STRING, points FLOAT);"
            "INSERT INTO scores VALUES ('low', 1.0), ('high', 9.0), ('mid', 5.0)"
        )
        result = session.query("SELECT label FROM scores CROWDORDER BY points")
        assert [r["label"] for r in result.rows] == ["high", "mid", "low"]
        assert result.stats.crowd_questions > 0

    def test_crowdorder_non_numeric_needs_oracle(self, session):
        with pytest.raises(ExecutionError, match="order_score_fn"):
            session.query("SELECT name FROM people CROWDORDER BY name")

    def test_predicate_cache_dedupes(self, session):
        first = session.query(
            "SELECT name FROM people WHERE CROWDFILTER(hometown, 'cached?')"
        )
        assert first.stats.crowd_questions == 3

    def test_crowdequal_pairs_publish_once_within_and_across_statements(self, db):
        from repro.platform.cache import AnswerCache

        platform = SimulatedPlatform(WorkerPool.uniform(12, 0.95, seed=1), seed=2)
        platform.attach_cache(AnswerCache())
        session = CrowdSQLSession(database=db, platform=platform, redundancy=3)
        session.execute(
            "CREATE TABLE aliases (alias STRING);"
            "INSERT INTO aliases VALUES ('rome'), ('rome'), ('oslo')"
        )
        query = "SELECT name FROM people CROWDJOIN aliases ON CROWDEQUAL(hometown, alias)"

        first = session.query(query)
        # 3 hometowns x 3 alias rows = 9 pairs, but only the 6 distinct
        # value pairs reach the crowd: the duplicated 'rome' alias coalesces
        # per statement via the executor's verdict memo.
        assert platform.stats.tasks_published == 6
        assert sorted(r["name"] for r in first.rows) == ["bob", "bob", "cal"]

        second = session.query(query)
        # A fresh executor runs the second statement, but every pair is
        # served from the shared platform cache: nothing new is published.
        assert platform.stats.tasks_published == 6
        assert platform.cache.hits > 0
        assert sorted(r["name"] for r in second.rows) == ["bob", "bob", "cal"]

    def test_budget_accounting(self, session):
        result = session.query(
            "SELECT name FROM people WHERE CROWDFILTER(hometown, 'pay?')"
        )
        assert result.stats.crowd_cost == pytest.approx(
            result.stats.crowd_answers * 0.01
        )


class TestSessionStatements:
    def test_create_insert_drop(self, session):
        results = session.execute(
            "CREATE TABLE x (a STRING); INSERT INTO x VALUES ('v'); DROP TABLE x"
        )
        kinds = [r.kind for r in results if isinstance(r, StatementResult)]
        assert kinds == ["created", "inserted", "dropped"]
        assert "x" not in session.database

    def test_insert_arity_checked(self, session):
        with pytest.raises(ExecutionError, match="values for"):
            session.execute("CREATE TABLE y (a STRING, b STRING); INSERT INTO y (a) VALUES ('v', 'w')")

    def test_query_requires_select_last(self, session):
        with pytest.raises(ExecutionError):
            session.query("CREATE TABLE z (a STRING)")

    def test_machine_only_session_needs_no_platform(self, db):
        session = CrowdSQLSession(database=db)
        result = session.query("SELECT name FROM people WHERE age > 26")
        assert len(result) == 2

    def test_platformless_crowd_query_rejected(self, db):
        session = CrowdSQLSession(database=db)
        with pytest.raises(ExecutionError, match="no platform"):
            session.query("SELECT * FROM people WHERE CROWDFILTER(name, 'q')")

    def test_explain_reports_cost(self, session):
        text = session.explain(
            "SELECT name FROM people WHERE CROWDFILTER(name, 'q?') AND age > 26"
        )
        assert "estimated crowd cost" in text
        assert "CrowdFilter" in text

    def test_insert_cnull_literal(self, session):
        session.execute(
            "CREATE TABLE c (k STRING, v STRING CROWD);"
            "INSERT INTO c VALUES ('a', CNULL)"
        )
        table = session.database.table("c")
        assert table.row(1)["v"] is CNULL


class TestMultiKeyOrder:
    def test_order_by_two_keys(self, session):
        session.execute(
            "CREATE TABLE g (grp STRING, v INTEGER);"
            "INSERT INTO g VALUES ('b', 1), ('a', 2), ('a', 1), ('b', 2)"
        )
        result = session.query("SELECT grp, v FROM g ORDER BY grp ASC, v DESC")
        assert [(r["grp"], r["v"]) for r in result.rows] == [
            ("a", 2), ("a", 1), ("b", 2), ("b", 1),
        ]

    def test_nulls_sort_last_within_group(self, session):
        session.execute(
            "CREATE TABLE h (grp STRING, v INTEGER);"
            "INSERT INTO h VALUES ('a', NULL), ('a', 1), ('b', 5)"
        )
        result = session.query("SELECT grp, v FROM h ORDER BY grp, v")
        assert [(r["grp"], r["v"]) for r in result.rows] == [
            ("a", 1), ("a", None), ("b", 5),
        ]

    def test_unknown_second_key_rejected(self, session):
        with pytest.raises(ExecutionError, match="unknown column"):
            session.query("SELECT name FROM people ORDER BY name, ghost")
