"""Unit tests for numeric truth inference (mean/median/CATD)."""

import pytest

from repro.errors import InferenceError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer, numeric
from repro.quality.truth import CatdAggregator, MeanAggregator, MedianAggregator
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker
from repro.workers.models import OneCoinModel, SpammerModel


def _manual(values_by_task):
    return {
        task_id: [
            Answer(task_id=task_id, worker_id=f"w{i}", value=v)
            for i, v in enumerate(values)
        ]
        for task_id, values in values_by_task.items()
    }


class TestMean:
    def test_simple_mean(self):
        result = MeanAggregator().infer(_manual({"t1": [1.0, 2.0, 3.0]}))
        assert result.truths["t1"] == pytest.approx(2.0)

    def test_rejects_non_numeric(self):
        with pytest.raises(InferenceError):
            MeanAggregator().infer(_manual({"t1": ["x"]}))

    def test_rejects_bool(self):
        with pytest.raises(InferenceError):
            MeanAggregator().infer(_manual({"t1": [True]}))

    def test_confidence_drops_with_spread(self):
        tight = MeanAggregator().infer(_manual({"t": [10.0, 10.1, 9.9]}))
        loose = MeanAggregator().infer(_manual({"t": [1.0, 10.0, 19.0]}))
        assert tight.confidences["t"] > loose.confidences["t"]


class TestMedian:
    def test_robust_to_outlier(self):
        evidence = _manual({"t1": [10.0, 10.2, 9.8, 500.0]})
        mean = MeanAggregator().infer(evidence).truths["t1"]
        median = MedianAggregator().infer(evidence).truths["t1"]
        assert abs(median - 10.0) < abs(mean - 10.0)

    def test_exact_median(self):
        result = MedianAggregator().infer(_manual({"t": [3.0, 1.0, 2.0]}))
        assert result.truths["t"] == pytest.approx(2.0)


class TestCatd:
    def test_downweights_consistent_outlier(self):
        # worker w3 is always wildly off; CATD should trust w0-w2.
        evidence = _manual(
            {
                f"t{k}": [100.0 + k, 101.0 + k, 99.0 + k, 500.0 + k]
                for k in range(10)
            }
        )
        catd = CatdAggregator().infer(evidence)
        mean = MeanAggregator().infer(evidence)
        for k in range(10):
            assert abs(catd.truths[f"t{k}"] - (100 + k)) < abs(
                mean.truths[f"t{k}"] - (100 + k)
            )

    def test_worker_quality_ranks_outlier_last(self):
        evidence = _manual(
            {f"t{k}": [50.0, 51.0, 49.0, 200.0] for k in range(8)}
        )
        quality = CatdAggregator().infer(evidence).worker_quality
        assert quality["w3"] == min(quality.values())

    def test_converges(self):
        evidence = _manual({f"t{k}": [float(k), k + 0.5, k - 0.5] for k in range(5)})
        result = CatdAggregator().infer(evidence)
        assert result.converged

    def test_end_to_end_beats_mean_with_spammers(self):
        workers = [Worker(model=OneCoinModel(0.9)) for _ in range(6)]
        workers += [Worker(model=SpammerModel()) for _ in range(3)]
        platform = SimulatedPlatform(WorkerPool(workers, seed=1), seed=2)
        tasks = [numeric(f"estimate {i}", truth=100.0 + i) for i in range(30)]
        answers = platform.collect(tasks, redundancy=6)
        truth = {t.task_id: t.truth for t in tasks}

        def error(result):
            return sum(
                abs(result.truths[t] - truth[t]) / truth[t] for t in truth
            ) / len(truth)

        assert error(CatdAggregator().infer(answers)) <= error(
            MeanAggregator().infer(answers)
        )
