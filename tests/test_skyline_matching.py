"""Unit tests for crowd skyline and crowd schema matching, plus the
diverse-skills worker model and domain-aware assignment."""

import numpy as np
import pytest

from repro.errors import AssignmentError, ConfigurationError
from repro.operators.schema_matching import CrowdSchemaMatcher
from repro.operators.skyline import CrowdSkyline, true_skyline
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.assignment import (
    DomainAwareAssignment,
    RoundRobinAssignment,
    run_assignment,
)
from repro.quality.truth import MajorityVote
from repro.workers.models import DiverseSkillsModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker


class TestTrueSkyline:
    def test_simple(self):
        scores = [(1, 1), (2, 2), (0, 3), (3, 0), (1, 2)]
        # (2,2) dominates (1,1) and (1,2); (0,3) and (3,0) undominated.
        assert sorted(true_skyline(scores)) == [1, 2, 3]

    def test_single_item(self):
        assert true_skyline([(5, 5)]) == [0]

    def test_total_order_gives_singleton(self):
        scores = [(i, i) for i in range(5)]
        assert true_skyline(scores) == [4]


class TestCrowdSkyline:
    def _platform(self, seed=3):
        return SimulatedPlatform(
            WorkerPool.comparison_pool(20, sharpness=50.0, seed=seed), seed=seed + 1
        )

    def test_needs_two_dimensions(self):
        with pytest.raises(ConfigurationError):
            CrowdSkyline(self._platform(), ["a"], [lambda x: 0.0])

    def test_recovers_true_skyline_with_sharp_workers(self):
        scores = {
            "a": (0.1, 0.1), "b": (0.9, 0.9), "c": (0.05, 0.95),
            "d": (0.95, 0.05), "e": (0.5, 0.5),
        }
        items = list(scores)
        expected = true_skyline([scores[i] for i in items])
        op = CrowdSkyline(
            self._platform(),
            items,
            [lambda it: scores[it][0], lambda it: scores[it][1]],
            redundancy=3,
        )
        result = op.run()
        assert result.matches(expected)
        assert result.comparisons_asked > 0
        assert result.cost > 0

    def test_elimination_skips_checks(self):
        # A chain: item i dominated by i+1; skyline = last item. With
        # elimination, dominated items stop being compared.
        n = 8
        items = [f"i{k}" for k in range(n)]
        op = CrowdSkyline(
            self._platform(seed=9),
            items,
            [lambda it: float(it[1:]), lambda it: float(it[1:]) * 2],
            redundancy=1,
        )
        result = op.run()
        assert result.skyline == [n - 1]
        # Full BNL without elimination would need n*(n-1) checks.
        assert result.dominance_checks < n * (n - 1)

    def test_empty_items_rejected(self):
        op = CrowdSkyline(
            self._platform(), [], [lambda x: 0.0, lambda x: 0.0]
        )
        with pytest.raises(ConfigurationError):
            op.run()


class TestSchemaMatching:
    SOURCE = ("cust_name", "cust_email", "order_total", "created_at")
    TARGET = ("customer", "email_address", "total_amount", "creation_date", "region")
    TRUTH = {
        "cust_name": "customer",
        "cust_email": "email_address",
        "order_total": "total_amount",
        "created_at": "creation_date",
    }

    def _platform(self, seed=11, accuracy=0.95):
        return SimulatedPlatform(WorkerPool.uniform(15, accuracy, seed=seed), seed=seed + 1)

    def test_finds_correspondences(self):
        matcher = CrowdSchemaMatcher(
            self._platform(), self.TRUTH, prune_below=0.05, redundancy=3
        )
        result = matcher.run(self.SOURCE, self.TARGET)
        precision, recall, f1 = result.precision_recall_f1(self.TRUTH)
        assert f1 >= 0.7
        assert result.questions_asked + result.pairs_pruned == len(self.SOURCE) * len(self.TARGET)

    def test_pruning_reduces_questions(self):
        loose = CrowdSchemaMatcher(
            self._platform(seed=13), self.TRUTH, prune_below=0.0
        ).run(self.SOURCE, self.TARGET)
        tight = CrowdSchemaMatcher(
            self._platform(seed=13), self.TRUTH, prune_below=0.2
        ).run(self.SOURCE, self.TARGET)
        assert tight.questions_asked < loose.questions_asked

    def test_one_to_one_constraint(self):
        matcher = CrowdSchemaMatcher(
            self._platform(seed=17), self.TRUTH, prune_below=0.0
        )
        result = matcher.run(self.SOURCE, self.TARGET)
        targets = list(result.correspondences.values())
        assert len(targets) == len(set(targets))

    def test_descriptions_help_similarity(self):
        descriptions = {
            "cust_name": "full name of the customer",
            "customer": "full name of the customer",
        }
        matcher = CrowdSchemaMatcher(
            self._platform(seed=19), self.TRUTH,
            prune_below=0.3, descriptions=descriptions,
        )
        result = matcher.run(("cust_name",), ("customer", "region"))
        assert result.correspondences.get("cust_name") == "customer"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdSchemaMatcher(self._platform(), {}, prune_below=2.0)
        with pytest.raises(ConfigurationError):
            CrowdSchemaMatcher(self._platform(), {}, redundancy=0)
        matcher = CrowdSchemaMatcher(self._platform(), {})
        with pytest.raises(ConfigurationError):
            matcher.run((), ("x",))

    def test_empty_truth_means_no_matches(self):
        matcher = CrowdSchemaMatcher(
            self._platform(seed=23, accuracy=0.99), {}, prune_below=0.0, redundancy=3
        )
        result = matcher.run(("alpha",), ("beta",))
        assert result.correspondences == {}


class TestDiverseSkills:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiverseSkillsModel(skills={"birds": 1.5})
        with pytest.raises(ConfigurationError):
            DiverseSkillsModel(default_accuracy=-0.1)

    def test_accuracy_by_domain(self):
        model = DiverseSkillsModel(skills={"birds": 0.95, "law": 0.5}, default_accuracy=0.6)
        birds_task = Task(
            TaskType.SINGLE_CHOICE, question="q", options=("a", "b"),
            truth="a", payload={"domain": "birds"},
        )
        law_task = Task(
            TaskType.SINGLE_CHOICE, question="q", options=("a", "b"),
            truth="a", payload={"domain": "law"},
        )
        assert model.accuracy_for(birds_task) == 0.95
        assert model.accuracy_for(law_task) == 0.5

    def test_empirical_split(self):
        model = DiverseSkillsModel(skills={"birds": 0.95, "law": 0.55})
        rng = np.random.default_rng(1)

        def rate(domain):
            task = Task(
                TaskType.SINGLE_CHOICE, question="q", options=("a", "b"),
                truth="a", payload={"domain": domain},
            )
            return sum(model.answer(task, rng) == "a" for _ in range(1500)) / 1500

        assert rate("birds") > 0.9
        assert rate("law") < 0.65


class TestDomainAwareAssignment:
    DOMAINS = ("birds", "law")

    def _pool(self, seed):
        # Half the workers are bird experts, half law experts.
        workers = []
        for i in range(20):
            if i % 2 == 0:
                skills = {"birds": 0.95, "law": 0.55}
            else:
                skills = {"birds": 0.55, "law": 0.95}
            workers.append(Worker(model=DiverseSkillsModel(skills=skills)))
        return WorkerPool(workers, seed=seed)

    def _tasks(self, n, seed):
        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            domain = self.DOMAINS[i % 2]
            truth = ("yes", "no")[int(rng.integers(2))]
            tasks.append(
                Task(
                    TaskType.SINGLE_CHOICE,
                    question=f"{domain} question {i}",
                    options=("yes", "no"),
                    truth=truth,
                    payload={"domain": domain},
                )
            )
        return tasks

    def test_validation(self):
        with pytest.raises(AssignmentError):
            DomainAwareAssignment(prior_quality=0.0)

    def test_beats_round_robin_on_skilled_pool(self):
        # Enough tasks for the online skill estimates to amortize the
        # exploration phase (small jobs can't learn who knows what).
        accuracies = {}
        for name, factory in (
            ("rr", lambda: RoundRobinAssignment(redundancy=3)),
            ("domain", lambda: DomainAwareAssignment(redundancy=3, exploration=1)),
        ):
            platform = SimulatedPlatform(self._pool(seed=31), seed=32)
            tasks = self._tasks(200, seed=33)
            truth = {t.task_id: t.truth for t in tasks}
            outcome = run_assignment(platform, factory(), tasks, max_answers=600)
            inferred = MajorityVote().infer(outcome.answers_by_task).truths
            accuracies[name] = sum(
                1 for t in truth if inferred.get(t) == truth[t]
            ) / len(truth)
        assert accuracies["domain"] > accuracies["rr"]

    def test_quality_estimates_learn_domains(self):
        platform = SimulatedPlatform(self._pool(seed=41), seed=42)
        tasks = self._tasks(60, seed=43)
        strategy = DomainAwareAssignment(redundancy=3, exploration=1)
        run_assignment(platform, strategy, tasks, max_answers=180)
        # For a bird expert, estimated birds-quality should exceed law.
        expert = platform.pool.workers[0]  # even index = bird expert
        birds_q = strategy.quality(expert.worker_id, "birds")
        law_q = strategy.quality(expert.worker_id, "law")
        if strategy.observations(expert.worker_id, "birds") >= 3 and (
            strategy.observations(expert.worker_id, "law") >= 3
        ):
            assert birds_q > law_q - 0.15
