"""Property-based correctness tests: the CrowdSQL executor vs a Python
reference implementation on randomized tables and predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.interpreter import CrowdSQLSession

ROWS = st.lists(
    st.tuples(
        st.text(alphabet="abc", min_size=1, max_size=3),   # k
        st.integers(-20, 20),                              # v
        st.one_of(st.none(), st.integers(-20, 20)),        # w (nullable)
    ),
    min_size=0,
    max_size=25,
)

OPS = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _session_with(rows):
    session = CrowdSQLSession()
    session.execute("CREATE TABLE t (k STRING, v INTEGER, w INTEGER)")
    table = session.database.table("t")
    for k, v, w in rows:
        table.insert({"k": k, "v": v, "w": w})
    return session


@given(rows=ROWS, op=st.sampled_from(sorted(OPS)), threshold=st.integers(-20, 20))
@settings(max_examples=60, deadline=None)
def test_where_matches_python_reference(rows, op, threshold):
    session = _session_with(rows)
    result = session.query(f"SELECT k, v FROM t WHERE v {op} {threshold} ORDER BY v")
    expected = sorted(
        ((k, v) for k, v, _w in rows if OPS[op](v, threshold)),
        key=lambda pair: pair[1],
    )
    got = [(r["k"], r["v"]) for r in result.rows]
    # ORDER BY v is stable only up to ties on v; compare multisets and order of v.
    assert sorted(got) == sorted(expected)
    assert [v for _k, v in got] == sorted(v for _k, v in expected)


@given(rows=ROWS, threshold=st.integers(-20, 20))
@settings(max_examples=60, deadline=None)
def test_null_semantics_match_sql(rows, threshold):
    """Rows with NULL w never pass w-comparisons; IS NULL catches them."""
    session = _session_with(rows)
    passed = session.query(f"SELECT k FROM t WHERE w > {threshold}")
    nulls = session.query("SELECT k FROM t WHERE w IS NULL")
    expected_passed = [k for k, _v, w in rows if w is not None and w > threshold]
    expected_nulls = [k for k, _v, w in rows if w is None]
    assert sorted(r["k"] for r in passed.rows) == sorted(expected_passed)
    assert sorted(r["k"] for r in nulls.rows) == sorted(expected_nulls)


@given(rows=ROWS)
@settings(max_examples=60, deadline=None)
def test_aggregates_match_python_reference(rows):
    session = _session_with(rows)
    result = session.query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(w) FROM t")
    row = result.rows[0]
    assert row["count"] == len(rows)
    if rows:
        vs = [v for _k, v, _w in rows]
        assert row["sum_v"] == sum(vs)
        assert row["min_v"] == min(vs)
        assert row["max_v"] == max(vs)
    else:
        assert row["sum_v"] is None
    ws = [w for _k, _v, w in rows if w is not None]
    if ws:
        assert row["avg_w"] == pytest.approx(sum(ws) / len(ws))
    else:
        assert row["avg_w"] is None


@given(rows=ROWS)
@settings(max_examples=60, deadline=None)
def test_group_by_matches_python_reference(rows):
    session = _session_with(rows)
    result = session.query("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k")
    expected: dict[str, tuple[int, int]] = {}
    for k, v, _w in rows:
        count, total = expected.get(k, (0, 0))
        expected[k] = (count + 1, total + v)
    got = {r["k"]: (r["count"], r["sum_v"]) for r in result.rows}
    assert got == expected


@given(rows=ROWS, limit=st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_limit_and_distinct(rows, limit):
    session = _session_with(rows)
    distinct = session.query("SELECT DISTINCT k FROM t")
    assert sorted(r["k"] for r in distinct.rows) == sorted({k for k, _v, _w in rows})
    limited = session.query(f"SELECT k FROM t LIMIT {limit}")
    assert len(limited.rows) == min(limit, len(rows))


@given(rows=ROWS, lo=st.integers(-20, 0), hi=st.integers(0, 20))
@settings(max_examples=40, deadline=None)
def test_conjunction_matches_reference(rows, lo, hi):
    session = _session_with(rows)
    result = session.query(f"SELECT k FROM t WHERE v >= {lo} AND v <= {hi}")
    expected = [k for k, v, _w in rows if lo <= v <= hi]
    assert sorted(r["k"] for r in result.rows) == sorted(expected)


@given(rows=ROWS, values=st.lists(st.integers(-20, 20), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_in_list_matches_reference(rows, values):
    session = _session_with(rows)
    literals = ", ".join(str(v) for v in values)
    result = session.query(f"SELECT k FROM t WHERE v IN ({literals})")
    expected = [k for k, v, _w in rows if v in values]
    assert sorted(r["k"] for r in result.rows) == sorted(expected)


@given(rows=ROWS, threshold=st.integers(-20, 20), new_value=st.integers(-5, 5))
@settings(max_examples=40, deadline=None)
def test_update_matches_python_reference(rows, threshold, new_value):
    session = _session_with(rows)
    session.execute(f"UPDATE t SET w = {new_value} WHERE v > {threshold}")
    result = session.query("SELECT k, v, w FROM t")
    expected = [
        (k, v, new_value if v > threshold else w) for k, v, w in rows
    ]
    got = [(r["k"], r["v"], r["w"]) for r in result.rows]
    assert sorted(got, key=repr) == sorted(expected, key=repr)


@given(rows=ROWS, threshold=st.integers(-20, 20))
@settings(max_examples=40, deadline=None)
def test_delete_matches_python_reference(rows, threshold):
    session = _session_with(rows)
    session.execute(f"DELETE FROM t WHERE v <= {threshold}")
    remaining = session.query("SELECT k, v FROM t")
    expected = [(k, v) for k, v, _w in rows if not v <= threshold]
    got = [(r["k"], r["v"]) for r in remaining.rows]
    assert sorted(got, key=repr) == sorted(expected, key=repr)


@given(rows=ROWS)
@settings(max_examples=40, deadline=None)
def test_multikey_order_matches_python_reference(rows):
    session = _session_with(rows)
    result = session.query("SELECT k, v FROM t ORDER BY k ASC, v DESC")
    got = [(r["k"], r["v"]) for r in result.rows]
    expected = sorted(((k, v) for k, v, _w in rows), key=lambda p: (p[0], -p[1]))
    assert got == expected
