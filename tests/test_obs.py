"""Tests for the observability layer (repro.obs)."""

import json

import numpy as np
import pytest

from repro.core import CrowdEngine, EngineConfig
from repro.errors import ConfigurationError, PlatformError
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    Tracer,
    build_tree,
    load_spans,
    render_report,
    report_from_file,
)
from repro.obs.runtime import activate, current_metrics, current_tracer, deactivate
from repro.platform.batch import BatchConfig
from repro.platform.events import EventSimulator
from repro.platform.platform import PlatformStats, SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.pool import WorkerPool


def make_tasks(n):
    return [
        single_choice(f"item {i}?", ("yes", "no"), truth="yes" if i % 2 else "no")
        for i in range(n)
    ]


def traced_platform(seed=7, pool_size=15, max_parallel=4, metrics_enabled=True):
    pool = WorkerPool.heterogeneous(
        pool_size, accuracy_low=0.7, accuracy_high=0.95, seed=seed
    )
    tracer = Tracer(MemorySink())
    metrics = MetricsRegistry(enabled=metrics_enabled)
    platform = SimulatedPlatform(
        pool,
        seed=seed + 1,
        batch=BatchConfig(batch_size=8, max_parallel=max_parallel, seed=seed + 2),
        tracer=tracer,
        metrics=metrics,
    )
    return platform, tracer, metrics


class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer(MemorySink())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current is outer
        assert tracer.current is None
        emitted = tracer.sink.spans
        assert [s["name"] for s in emitted] == ["inner", "outer"]

    def test_annotation_attaches_to_current_span(self):
        tracer = Tracer(MemorySink())
        with tracer.span("work") as span:
            tracer.annotate("tick", sim_time=2.5, detail="x")
        records = tracer.sink.spans
        note = records[0]
        assert note["kind"] == "annotation"
        assert note["parent_id"] == span.span_id
        assert note["duration"] == 0.0
        assert note["sim_start"] == 2.5
        assert note["tags"] == {"detail": "x"}

    def test_end_span_is_idempotent(self):
        tracer = Tracer(MemorySink())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        tracer.end_span(inner)
        tracer.end_span(inner)  # second close: no effect
        assert tracer.current is outer
        tracer.end_span(outer)
        assert len(tracer.sink.spans) == 2

    def test_close_ends_forgotten_spans_and_sink(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.span("left-open")
        tracer.close()
        tracer.close()  # idempotent
        assert [s["name"] for s in sink.spans] == ["left-open"]

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", tags=1)
        assert span is NULL_SPAN
        span.set_tag("k", "v")
        span.sim_end = 9.0  # silently dropped
        assert span.sim_end is None
        NULL_TRACER.annotate("nothing")
        NULL_TRACER.close()
        assert not NULL_TRACER.enabled

    def test_span_ids_deterministic_across_tracers(self):
        def run():
            tracer = Tracer(MemorySink())
            with tracer.span("a", x=1):
                with tracer.span("b"):
                    tracer.annotate("note")
            tracer.close()
            return [
                (s["span_id"], s["parent_id"], s["name"], s["kind"], s["tags"])
                for s in tracer.sink.spans
            ]

        assert run() == run()


class TestJsonlRoundTrip:
    def test_write_then_load_preserves_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)))
        with tracer.span("root", seed=3):
            with tracer.span("child"):
                tracer.annotate("event.arrival", sim_time=1.0)
        tracer.close()
        spans = load_spans(str(path))
        assert [s["name"] for s in spans] == ["event.arrival", "child", "root"]
        tree = build_tree(spans)
        assert [r["name"] for r in tree[None]] == ["root"]
        root_id = tree[None][0]["span_id"]
        assert [c["name"] for c in tree[root_id]] == ["child"]
        # Every record carries the full schema after the round trip.
        for record in spans:
            assert {"span_id", "parent_id", "name", "kind", "tags"} <= set(record)

    def test_jsonl_sink_unwritable_path_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot open trace file"):
            JsonlSink(str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))

    def test_load_spans_skips_corrupt_lines_with_warning(self, tmp_path):
        """A killed run's truncated tail must not make the trace unreadable."""
        import io

        path = tmp_path / "bad.jsonl"
        good = {"span_id": 1, "parent_id": None, "name": "root", "kind": "span"}
        path.write_text(
            json.dumps({"not": "a span"}) + "\n"
            + json.dumps(good) + "\n"
            + '{"span_id": 2, "truncated by a ki'  # mid-write kill
        )
        warnings = io.StringIO()
        spans = load_spans(str(path), warn=warnings)
        assert [s["span_id"] for s in spans] == [1]
        lines = warnings.getvalue().splitlines()
        assert len(lines) == 2
        assert "skipping non-span record" in lines[0]
        assert "skipping non-JSON trace line" in lines[1]

    def test_load_spans_unreadable_file_still_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read trace file"):
            load_spans(str(tmp_path / "missing.jsonl"))


class TestHistogram:
    def test_percentiles_match_numpy_linear_interpolation(self):
        rng = np.random.default_rng(11)
        for values in (
            [1.0],
            [3.0, 1.0, 2.0],
            list(range(100)),
            list(rng.exponential(5.0, size=257)),
        ):
            hist = Histogram("h")
            for v in values:
                hist.observe(v)
            for q in (0, 10, 50, 90, 95, 99, 100):
                assert hist.percentile(q) == pytest.approx(
                    float(np.percentile(values, q))
                )

    def test_summary_statistics(self):
        hist = Histogram("h")
        for v in (2.0, 4.0, 6.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(12.0)
        assert hist.mean == pytest.approx(4.0)
        assert hist.p50 == pytest.approx(4.0)

    def test_empty_histogram_is_zero(self):
        hist = Histogram("h")
        assert hist.count == 0 and hist.mean == 0.0 and hist.p95 == 0.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestMetricsRegistry:
    def test_disabled_registry_drops_convenience_writes(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 2.0)
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0
        # Direct handles still work — how PlatformStats keeps its totals.
        registry.counter("c").inc(5)
        assert registry.counter("c").value == 5

    def test_int_counters_stay_ints(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.inc("n")
        assert registry.counter("n").value == 2
        assert isinstance(registry.counter("n").value, int)

    def test_snapshot_and_report(self):
        registry = MetricsRegistry()
        registry.inc("runs")
        registry.observe("lat", 3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"runs": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        text = registry.report()
        assert "== metrics ==" in text and "runs = 1" in text and "lat:" in text


class TestLabeledMetrics:
    def test_label_sets_are_independent_series(self):
        registry = MetricsRegistry()
        registry.inc("op.runs", labels={"operator": "filter"})
        registry.inc("op.runs", 2, labels={"operator": "join"})
        registry.inc("op.runs")  # unlabeled sibling stays separate
        assert registry.counter("op.runs", {"operator": "filter"}).value == 1
        assert registry.counter("op.runs", {"operator": "join"}).value == 2
        assert registry.counter("op.runs").value == 1
        # Bare-name key preserved for unlabeled series (PlatformStats views).
        assert registry.counters["op.runs"].value == 1

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.inc("x", labels={"a": "1", "b": "2"})
        registry.inc("x", labels={"b": "2", "a": "1"})
        assert registry.counter("x", {"a": "1", "b": "2"}).value == 2

    def test_label_values_coerced_to_str(self):
        from repro.obs import normalize_labels, series_key

        items = normalize_labels({"retry": 3})
        assert items == (("retry", "3"),)
        assert series_key("x", items) == 'x{retry="3"}'

    def test_snapshot_keys_labeled_series(self):
        registry = MetricsRegistry()
        registry.inc("x", labels={"k": "v"})
        registry.observe("h", 1.0, labels={"k": "v"})
        snap = registry.snapshot()
        assert snap["counters"] == {'x{k="v"}': 1}
        assert snap["histograms"]['h{k="v"}']["count"] == 1

    def test_histogram_bucket_counts_cumulative(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 20.0):
            hist.observe(value)
        assert hist.bucket_counts() == [2, 3, 3]
        assert hist.count == 4  # the implicit +Inf bucket
        assert hist.buckets == (1.0, 5.0, 10.0)

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1.0, 2.0))
        again = registry.histogram("h", buckets=(9.0,))
        assert again is first
        assert first.buckets == (1.0, 2.0)

    def test_snapshot_histogram_includes_sum_and_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.2)
        registry.observe("lat", 2.0)
        entry = registry.snapshot()["histograms"]["lat"]
        assert entry["sum"] == pytest.approx(2.2)
        assert entry["buckets"]["0.25"] == 1
        assert entry["buckets"]["5.0"] == 2

    def test_operator_span_records_labeled_families(self):
        platform, _, _ = traced_platform(metrics_enabled=True)
        from repro.operators.filter import FixedKFilter

        FixedKFilter(
            platform, "q?", truth_fn=lambda item: True, redundancy=3
        ).run(["a", "b"])
        metrics = platform.metrics
        labeled = metrics.counter("operator.runs", {"operator": "filter"})
        assert labeled.value == 1
        assert metrics.counter("operator.items", {"operator": "filter"}).value == 2
        # Dotted aliases advance in lockstep.
        assert metrics.counter("operator.filter.runs").value == 1
        wall = metrics.histogram("operator.wall", {"operator": "filter"})
        assert wall.count == 1

    def test_cache_requests_labeled_by_outcome(self):
        from repro.platform.cache import AnswerCache

        platform, _, _ = traced_platform(metrics_enabled=True)
        platform.attach_cache(AnswerCache())
        tasks = make_tasks(4)
        platform.collect_batch(tasks, redundancy=3)
        platform.collect_batch(tasks, redundancy=3)
        metrics = platform.metrics
        hits = metrics.counter("cache.requests", {"outcome": "hit"}).value
        misses = metrics.counter("cache.requests", {"outcome": "miss"}).value
        assert misses == platform.stats.cache_misses == 4
        assert hits == platform.stats.cache_hits == 4

    def test_batch_assignment_outcomes_labeled(self):
        platform, _, _ = traced_platform(metrics_enabled=True)
        platform.collect_batch(make_tasks(6), redundancy=3)
        ok = platform.metrics.counter(
            "batch.assignment_outcomes", {"outcome": "ok"}
        ).value
        assert ok == platform.stats.assignments_dispatched

    def test_em_iterations_labeled_by_method(self):
        from repro.quality.truth import CATEGORICAL_METHODS

        from repro.platform.task import Answer

        registry = MetricsRegistry()
        activate(metrics=registry)
        try:
            answers = {
                f"t{i}": [
                    Answer(f"t{i}", "w1", "yes"),
                    Answer(f"t{i}", "w2", "yes"),
                    Answer(f"t{i}", "w3", "no"),
                ]
                for i in range(6)
            }
            CATEGORICAL_METHODS["ds"]().infer(answers)
        finally:
            deactivate(metrics=registry)
        iterations = registry.counter("em.iterations", {"method": "ds"}).value
        assert iterations > 0
        deltas = registry.histogram("em.delta", {"method": "ds"})
        assert deltas.count == iterations


class TestRuntime:
    def test_activate_and_deactivate(self):
        tracer, metrics = Tracer(MemorySink()), MetricsRegistry()
        activate(tracer, metrics)
        try:
            assert current_tracer() is tracer
            assert current_metrics() is metrics
        finally:
            deactivate(tracer, metrics)
        assert current_tracer() is NULL_TRACER
        # Deactivating an inactive pair does not clobber the live one.
        other = Tracer(MemorySink())
        activate(other, metrics)
        deactivate(tracer, metrics)
        assert current_tracer() is other
        deactivate(other, metrics)


class TestEventSimulatorObs:
    def test_max_log_caps_memory_but_not_processing(self):
        sim = EventSimulator(max_log=3)
        for i in range(10):
            sim.schedule(float(i), "tick", index=i)
        list(sim.drain())
        assert len(sim.log) == 3
        assert sim.events_processed == 10

    def test_negative_max_log_rejected(self):
        with pytest.raises(PlatformError):
            EventSimulator(max_log=-1)

    def test_events_become_annotations(self):
        tracer = Tracer(MemorySink())
        sim = EventSimulator(tracer=tracer)
        sim.schedule(1.0, "arrival", worker="w1")
        list(sim.drain())
        notes = [s for s in tracer.sink.spans if s["kind"] == "annotation"]
        assert [n["name"] for n in notes] == ["event.arrival"]
        assert notes[0]["sim_start"] == 1.0
        assert notes[0]["tags"] == {"worker": "w1"}


class TestPlatformStatsDedup:
    def test_record_batch_folds_each_record_once(self):
        platform, _, _ = traced_platform()
        platform.scheduler.run(make_tasks(6), redundancy=2)
        stats = platform.stats
        wall, makespan = stats.batch_wall_clock, stats.batch_makespan
        records = platform.scheduler.records
        assert records
        for record in records:  # re-dispatch hands records back: no double count
            stats.record_batch(record)
        assert stats.batch_wall_clock == pytest.approx(wall)
        assert stats.batch_makespan == pytest.approx(makespan)
        assert stats.batches_dispatched == len(records)


class TestPlatformTracing:
    def test_batch_spans_cover_the_run(self):
        platform, tracer, metrics = traced_platform()
        platform.scheduler.run(make_tasks(20), redundancy=2)
        batch_spans = [s for s in tracer.sink.spans if s["name"] == "batch"]
        assert len(batch_spans) == platform.stats.batches_dispatched
        for span in batch_spans:
            assert span["sim_end"] >= span["sim_start"]
            assert span["tags"]["dispatched"] >= span["tags"]["tasks"]
        assert metrics.histogram("batch.assignment_latency").count == 40
        assert metrics.histogram("batch.retries_per_task").count == 20

    def test_span_stream_deterministic_under_fixed_seed(self):
        def run():
            platform, tracer, _ = traced_platform(seed=13)
            platform.scheduler.run(make_tasks(12), redundancy=3)
            tracer.close()
            return [
                (
                    s["span_id"],
                    s["parent_id"],
                    s["name"],
                    s["kind"],
                    # batch_id comes from a process-global counter (it keys
                    # the stats dedup), so it is an identity, not behaviour.
                    {k: v for k, v in s["tags"].items() if k != "batch_id"},
                )
                for s in tracer.sink.spans
            ]

        assert run() == run()


class TestEngineObservability:
    def test_engine_trace_has_root_covering_operators(self, tmp_path):
        path = tmp_path / "engine.jsonl"
        config = EngineConfig(
            seed=5,
            inference="ds",
            trace_path=str(path),
            metrics_enabled=True,
            max_parallel=4,
            batch_size=8,
        )
        with CrowdEngine(config) as engine:
            engine.filter(list(range(8)), "small?", lambda i: i < 4)
        spans = load_spans(str(path))
        tree = build_tree(spans)
        roots = tree[None]
        assert [r["name"] for r in roots] == ["engine"]
        names = {s["name"] for s in spans}
        assert "operator.filter" in names and "batch" in names
        # Everything hangs off the root span.
        root_id = roots[0]["span_id"]
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            node = span
            while node["parent_id"] is not None:
                node = by_id[node["parent_id"]]
            assert node["span_id"] == root_id

    def test_engine_em_iterations_traced(self, tmp_path):
        path = tmp_path / "em.jsonl"
        config = EngineConfig(seed=5, inference="ds", trace_path=str(path))
        with CrowdEngine(config) as engine:
            engine.categorize(
                ["a1", "a2", "b1", "b2"],
                categories=("a", "b"),
                truth_fn=lambda item: item[0],
            )
        spans = load_spans(str(path))
        truth_spans = [s for s in spans if s["name"] == "truth.ds"]
        assert truth_spans and truth_spans[0]["tags"]["iterations"] >= 1
        iters = [s for s in spans if s["name"] == "em.iteration"]
        assert iters and all(s["parent_id"] == truth_spans[0]["span_id"] for s in iters)

    def test_metrics_report_reaches_engine(self):
        engine = CrowdEngine(EngineConfig(seed=3, metrics_enabled=True))
        engine.filter(list(range(6)), "small?", lambda i: i < 3)
        report = engine.metrics_report()
        assert "operator.filter.runs = 1" in report
        engine.close()
        engine.close()  # idempotent

    def test_observability_off_by_default(self):
        engine = CrowdEngine(EngineConfig(seed=3))
        assert engine.tracer is NULL_TRACER
        assert not engine.metrics.enabled
        engine.filter(list(range(4)), "small?", lambda i: i < 2)
        assert engine.metrics.histograms.get("operator.filter.wall") is None
        engine.close()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(trace_path="")
        with pytest.raises(ConfigurationError):
            EngineConfig(event_log_limit=-1)

    def test_stats_and_metrics_are_one_source_of_truth(self):
        platform, _, metrics = traced_platform()
        platform.scheduler.run(make_tasks(4), redundancy=1)
        assert platform.stats.cost_spent == pytest.approx(
            metrics.counter("platform.cost_spent").value
        )
        assert (
            platform.stats.answers_collected
            == metrics.counter("platform.answers_collected").value
        )
        assert isinstance(PlatformStats().answers_collected, int)


class TestTraceReport:
    def test_report_renders_all_sections(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = EngineConfig(
            seed=5,
            inference="ds",
            trace_path=str(path),
            metrics_enabled=True,
            max_parallel=4,
            batch_size=8,
        )
        with CrowdEngine(config) as engine:
            engine.filter(list(range(10)), "small?", lambda i: i < 5)
            engine.categorize(
                ["a1", "a2", "b1", "b2"],
                categories=("a", "b"),
                truth_fn=lambda item: item[0],
            )
        text = report_from_file(str(path))
        assert "per-operator breakdown" in text
        assert "batch runtime" in text
        assert "truth inference (EM)" in text
        assert "slowest spans" in text
        assert "filter" in text

    def test_render_report_in_memory(self):
        platform, tracer, _ = traced_platform()
        platform.scheduler.run(make_tasks(5), redundancy=1)
        tracer.close()
        text = render_report(tracer.sink.spans)
        assert "trace:" in text and "batch runtime" in text

    def test_missing_file_raises(self):
        with pytest.raises(ConfigurationError, match="cannot read trace file"):
            report_from_file("/nonexistent/trace.jsonl")
