"""Unit tests for repro.quality.truth — all categorical algorithms."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer
from repro.quality.truth import (
    CATEGORICAL_METHODS,
    BayesianVote,
    DawidSkene,
    Glad,
    MajorityVote,
    WeightedMajorityVote,
    ZenCrowd,
    label_space,
    votes_by_task,
    worker_answer_index,
)
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


def _evidence(n_tasks=80, pool=None, redundancy=5, seed=7, labels=("a", "b", "c")):
    pool = pool or WorkerPool.heterogeneous(20, seed=seed)
    platform = SimulatedPlatform(pool, seed=seed + 1)
    tasks = make_choice_tasks(n_tasks, labels=labels, seed=seed)
    answers = platform.collect(tasks, redundancy=redundancy)
    truth = {t.task_id: t.truth for t in tasks}
    return answers, truth


def _manual(votes):
    """Build evidence dict from {task: [(worker, value), ...]}."""
    return {
        task_id: [Answer(task_id=task_id, worker_id=w, value=v) for w, v in pairs]
        for task_id, pairs in votes.items()
    }


class TestValidation:
    @pytest.mark.parametrize("method", sorted(CATEGORICAL_METHODS))
    def test_empty_evidence_rejected(self, method):
        with pytest.raises(InferenceError):
            CATEGORICAL_METHODS[method]().infer({})

    def test_empty_answer_list_rejected(self):
        with pytest.raises(InferenceError):
            MajorityVote().infer({"t1": []})

    def test_misfiled_answer_rejected(self):
        evidence = {"t1": [Answer(task_id="t2", worker_id="w", value="a")]}
        with pytest.raises(InferenceError):
            MajorityVote().infer(evidence)

    def test_accuracy_requires_overlap(self):
        result = MajorityVote().infer(_manual({"t1": [("w1", "a")]}))
        with pytest.raises(InferenceError):
            result.accuracy_against({"other": "a"})


class TestHelpers:
    def test_label_space_sorted_union(self):
        evidence = _manual({"t1": [("w1", "b"), ("w2", "a")], "t2": [("w1", "c")]})
        assert label_space(evidence) == ["a", "b", "c"]

    def test_votes_by_task(self):
        evidence = _manual({"t1": [("w1", "a"), ("w2", "a"), ("w3", "b")]})
        assert votes_by_task(evidence)["t1"] == {"a": 2, "b": 1}

    def test_worker_answer_index(self):
        evidence = _manual({"t1": [("w1", "a")], "t2": [("w1", "b")]})
        assert worker_answer_index(evidence)["w1"] == [("t1", "a"), ("t2", "b")]


class TestMajorityVote:
    def test_clear_majority(self):
        evidence = _manual({"t1": [("w1", "x"), ("w2", "x"), ("w3", "y")]})
        result = MajorityVote().infer(evidence)
        assert result.truths["t1"] == "x"
        assert result.confidences["t1"] == pytest.approx(2 / 3)

    def test_tie_breaks_deterministically(self):
        evidence = _manual({"t1": [("w1", "b"), ("w2", "a")]})
        result = MajorityVote().infer(evidence)
        assert result.truths["t1"] == "a"  # smallest repr among tied

    def test_worker_quality_is_agreement(self):
        evidence = _manual(
            {
                "t1": [("good", "x"), ("good2", "x"), ("bad", "y")],
                "t2": [("good", "z"), ("good2", "z"), ("bad", "w")],
            }
        )
        result = MajorityVote().infer(evidence)
        assert result.worker_quality["good"] == pytest.approx(1.0)
        assert result.worker_quality["bad"] == pytest.approx(0.0)

    def test_posteriors_normalized(self):
        evidence = _manual({"t1": [("w1", "a"), ("w2", "b"), ("w3", "b")]})
        post = MajorityVote().infer(evidence).posteriors["t1"]
        assert sum(post.values()) == pytest.approx(1.0)

    def test_reasonable_accuracy(self):
        answers, truth = _evidence()
        accuracy = MajorityVote().infer(answers).accuracy_against(truth)
        assert accuracy > 0.8


class TestWeightedMajorityVote:
    def test_explicit_weights_override(self):
        evidence = _manual({"t1": [("expert", "x"), ("novice", "y"), ("novice2", "y")]})
        result = WeightedMajorityVote(
            worker_weights={"expert": 0.99, "novice": 0.2, "novice2": 0.2}
        ).infer(evidence)
        assert result.truths["t1"] == "x"

    def test_auto_weights_match_mv_on_unanimity(self):
        evidence = _manual({"t1": [("w1", "x"), ("w2", "x")]})
        assert WeightedMajorityVote().infer(evidence).truths["t1"] == "x"

    def test_weight_floor_applies(self):
        evidence = _manual({"t1": [("zero", "x")]})
        result = WeightedMajorityVote(worker_weights={"zero": 0.0}).infer(evidence)
        assert result.truths["t1"] == "x"  # floored weight still counts

    def test_beats_mv_with_spammers(self):
        pool = WorkerPool.with_spammers(24, spammer_fraction=0.34, seed=3)
        answers, truth = _evidence(n_tasks=150, pool=pool, redundancy=7, seed=3)
        mv = MajorityVote().infer(answers).accuracy_against(truth)
        wmv = WeightedMajorityVote().infer(answers).accuracy_against(truth)
        assert wmv >= mv


class TestEMFamily:
    @pytest.mark.parametrize("algo_cls", [DawidSkene, ZenCrowd, Glad, BayesianVote])
    def test_unanimous_evidence(self, algo_cls):
        evidence = _manual(
            {
                "t1": [("w1", "a"), ("w2", "a"), ("w3", "a")],
                "t2": [("w1", "b"), ("w2", "b"), ("w3", "b")],
            }
        )
        result = algo_cls().infer(evidence)
        assert result.truths == {"t1": "a", "t2": "b"}

    @pytest.mark.parametrize("algo_cls", [DawidSkene, ZenCrowd, BayesianVote])
    def test_beats_mv_with_spammers(self, algo_cls):
        pool = WorkerPool.with_spammers(20, spammer_fraction=0.35, seed=9)
        answers, truth = _evidence(n_tasks=200, pool=pool, redundancy=7, seed=9)
        mv = MajorityVote().infer(answers).accuracy_against(truth)
        em = algo_cls().infer(answers).accuracy_against(truth)
        assert em >= mv - 0.02  # never meaningfully worse; usually better

    def test_ds_converges(self):
        answers, _ = _evidence(n_tasks=50, redundancy=5)
        result = DawidSkene(max_iterations=200).infer(answers)
        assert result.converged
        assert 1 <= result.iterations <= 200

    def test_ds_worker_quality_separates_spammers(self):
        pool = WorkerPool.with_spammers(10, spammer_fraction=0.3, good_accuracy=0.95, seed=4)
        spammer_ids = {
            w.worker_id for w in pool if type(w.model).__name__ == "SpammerModel"
        }
        answers, _ = _evidence(n_tasks=200, pool=pool, redundancy=6, seed=4)
        quality = DawidSkene().infer(answers).worker_quality
        spam_quality = np.mean([quality[w] for w in spammer_ids if w in quality])
        good_quality = np.mean([q for w, q in quality.items() if w not in spammer_ids])
        assert good_quality > spam_quality + 0.1

    def test_zencrowd_reliability_in_unit_interval(self):
        answers, _ = _evidence(n_tasks=40)
        quality = ZenCrowd().infer(answers).worker_quality
        assert all(0.0 <= q <= 1.0 for q in quality.values())

    @pytest.mark.parametrize("backend", ["kernel", "legacy"])
    def test_zencrowd_smoothing_is_beta22_posterior_mean(self, backend):
        """Reliability smoothing is (mass+1)/(count+2) — the Beta(2,2)
        (add-one / Laplace) posterior mean, the same form MACE uses for
        competence. One unanimous answer per worker pins it at exactly
        (1+1)/(1+2) = 2/3."""
        evidence = _manual({"t1": [("w1", "a"), ("w2", "a")]})
        result = ZenCrowd(backend=backend).infer(evidence)
        assert result.worker_quality["w1"] == pytest.approx(2 / 3)
        assert result.worker_quality["w2"] == pytest.approx(2 / 3)

    def test_zencrowd_handles_heterogeneous_label_sets(self):
        evidence = _manual(
            {
                "t1": [("w1", "x"), ("w2", "x")],
                "t2": [("w1", "p"), ("w2", "q"), ("w3", "p")],
            }
        )
        result = ZenCrowd().infer(evidence)
        assert result.truths["t1"] == "x"
        assert result.truths["t2"] == "p"

    def test_glad_learns_difficulty(self):
        pool = WorkerPool.glad_spectrum(15, seed=6)
        platform = SimulatedPlatform(pool, seed=7)
        easy = make_choice_tasks(30, seed=1, difficulty=0.05)
        hard = make_choice_tasks(30, seed=2, difficulty=0.85)
        answers = platform.collect(easy + hard, redundancy=5)
        result = Glad(max_iterations=15).infer(answers)
        difficulty = result.task_difficulty
        easy_mean = np.mean([difficulty[t.task_id] for t in easy])
        hard_mean = np.mean([difficulty[t.task_id] for t in hard])
        assert hard_mean > easy_mean

    def test_bayes_prior_regularizes_single_answer(self):
        evidence = _manual({"t1": [("w1", "a")]})
        result = BayesianVote().infer(evidence)
        assert result.truths["t1"] == "a"
        # One answer cannot produce certainty under a Beta prior.
        assert result.worker_quality["w1"] < 0.95

    def test_invalid_configs_rejected(self):
        with pytest.raises(InferenceError):
            DawidSkene(max_iterations=0)
        with pytest.raises(InferenceError):
            ZenCrowd(prior_reliability=1.5)
        with pytest.raises(InferenceError):
            Glad(max_iterations=0)
        with pytest.raises(InferenceError):
            BayesianVote(prior_alpha=-1)

    @pytest.mark.parametrize("method", sorted(CATEGORICAL_METHODS))
    def test_posteriors_are_distributions(self, method):
        answers, _ = _evidence(n_tasks=20, redundancy=3)
        result = CATEGORICAL_METHODS[method]().infer(answers)
        for post in result.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0, abs=1e-6)
            assert all(p >= 0 for p in post.values())

    @pytest.mark.parametrize("method", sorted(CATEGORICAL_METHODS))
    def test_truth_always_among_answered_labels(self, method):
        answers, _ = _evidence(n_tasks=25, redundancy=3)
        result = CATEGORICAL_METHODS[method]().infer(answers)
        for task_id, inferred in result.truths.items():
            answered = {a.value for a in answers[task_id]}
            assert inferred in answered or inferred in label_space(answers)
