"""Tests for batched HIT collection (fatigue) and the HAVING clause."""

import numpy as np
import pytest

from repro.cost.taskdesign import FatigueModel, batch_tasks
from repro.errors import NoWorkersAvailableError, ParseError, PlatformError
from repro.lang.interpreter import CrowdSQLSession
from repro.lang.parser import parse_one
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import MajorityVote
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


class TestCollectBatched:
    def _platform(self, accuracy=0.9, seed=1):
        return SimulatedPlatform(WorkerPool.uniform(15, accuracy, seed=seed), seed=seed + 1)

    def test_each_task_gets_redundancy_answers(self):
        platform = self._platform()
        tasks = make_choice_tasks(12, seed=3)
        hits = batch_tasks(tasks, 4)
        answers = platform.collect_batched(hits, redundancy=3)
        assert all(len(answers[t.task_id]) == 3 for t in tasks)

    def test_same_worker_answers_whole_hit(self):
        platform = self._platform(seed=5)
        tasks = make_choice_tasks(6, seed=6)
        hits = batch_tasks(tasks, 3)
        answers = platform.collect_batched(hits, redundancy=2)
        for hit in hits:
            worker_sets = [
                tuple(a.worker_id for a in answers[t.task_id]) for t in hit.tasks
            ]
            # Same ordered worker tuple across every slot of the HIT.
            assert len(set(worker_sets)) == 1

    def test_cost_accounting(self):
        platform = self._platform(seed=7)
        tasks = make_choice_tasks(10, seed=8)
        platform.collect_batched(batch_tasks(tasks, 5), redundancy=2)
        assert platform.stats.cost_spent == pytest.approx(0.2)
        assert platform.stats.answers_collected == 20

    def test_tasks_completed(self):
        platform = self._platform(seed=9)
        tasks = make_choice_tasks(4, seed=10)
        platform.collect_batched(batch_tasks(tasks, 2), redundancy=1)
        assert all(not t.is_open for t in tasks)

    def test_fatigue_degrades_late_slots(self):
        # Perfect workers + harsh fatigue: early slots stay near-perfect,
        # late slots drop toward the 50% floor mixture.
        platform = self._platform(accuracy=1.0, seed=11)
        tasks = make_choice_tasks(200, labels=("a", "b"), seed=12)
        hits = batch_tasks(tasks, 20)
        fatigue = FatigueModel(decay=0.05, floor=0.05)
        answers = platform.collect_batched(hits, redundancy=3, fatigue=fatigue)
        slot_accuracy: dict[int, list[float]] = {}
        for hit in hits:
            for slot, task in enumerate(hit.tasks):
                values = [a.value for a in answers[task.task_id]]
                slot_accuracy.setdefault(slot, []).append(
                    float(np.mean([v == task.truth for v in values]))
                )
        early = float(np.mean(slot_accuracy[0] + slot_accuracy[1]))
        late = float(np.mean(slot_accuracy[18] + slot_accuracy[19]))
        assert early > late + 0.03

    def test_no_fatigue_equals_full_accuracy(self):
        platform = self._platform(accuracy=1.0, seed=13)
        tasks = make_choice_tasks(20, seed=14)
        answers = platform.collect_batched(batch_tasks(tasks, 10), redundancy=2)
        result = MajorityVote().infer(answers)
        truth = {t.task_id: t.truth for t in tasks}
        assert result.accuracy_against(truth) == 1.0

    def test_redundancy_validated(self):
        platform = self._platform(seed=15)
        tasks = make_choice_tasks(2, seed=16)
        with pytest.raises(PlatformError):
            platform.collect_batched(batch_tasks(tasks, 2), redundancy=0)
        with pytest.raises(NoWorkersAvailableError):
            platform.collect_batched(batch_tasks(tasks, 2), redundancy=99)

    def test_rejects_non_hits(self):
        platform = self._platform(seed=17)
        with pytest.raises(PlatformError, match="HIT"):
            platform.collect_batched(make_choice_tasks(2, seed=18), redundancy=1)


class TestHaving:
    @pytest.fixture
    def session(self):
        s = CrowdSQLSession()
        s.execute(
            "CREATE TABLE sales (region STRING, amount FLOAT);"
            "INSERT INTO sales VALUES ('north', 10.0), ('north', 20.0),"
            " ('south', 5.0), ('west', 40.0)"
        )
        return s

    def test_having_count(self, session):
        result = session.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 1"
        )
        assert result.rows == [{"region": "north", "count": 2}]

    def test_having_sum(self, session):
        result = session.query(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "HAVING SUM(amount) >= 20 ORDER BY region"
        )
        assert [r["region"] for r in result.rows] == ["north", "west"]

    def test_having_without_group_by(self, session):
        result = session.query("SELECT COUNT(*) FROM sales HAVING COUNT(*) > 10")
        assert result.rows == []
        result = session.query("SELECT COUNT(*) FROM sales HAVING COUNT(*) > 2")
        assert result.rows == [{"count": 4}]

    def test_having_requires_aggregates(self):
        with pytest.raises(ParseError, match="HAVING requires aggregates"):
            parse_one("SELECT region FROM sales HAVING region = 'x'")

    def test_having_parsed_as_filter_on_output(self):
        stmt = parse_one(
            "SELECT region, COUNT(*) FROM t GROUP BY region HAVING COUNT(*) > 3"
        )
        assert stmt.having is not None
        assert stmt.having.evaluate({"count": 5}) is True
        assert stmt.having.evaluate({"count": 2}) is False

    def test_having_combined_conditions(self, session):
        result = session.query(
            "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region "
            "HAVING COUNT(*) > 1 AND SUM(amount) > 25"
        )
        assert result.rows == [{"region": "north", "count": 2, "sum_amount": 30.0}]

    def test_explain_shows_having_filter(self, session):
        text = session.explain(
            "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 1"
        )
        assert "Filter" in text and "Aggregate" in text
