"""Unit tests for the CrowdEngine facade, EngineConfig, and Requester."""

import math

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import CrowdEngine
from repro.core.requester import Requester
from repro.errors import BudgetExceededError, ConfigurationError
from repro.lang.executor import CrowdOracle
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import DawidSkene
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.redundancy == 3
        assert math.isinf(config.budget)

    def test_invalid_redundancy(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(redundancy=0)

    def test_invalid_inference(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(inference="nope")

    def test_invalid_accuracy_range(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(pool_accuracy_range=(0.9, 0.5))

    def test_make_inference(self):
        assert isinstance(EngineConfig(inference="ds").make_inference(), DawidSkene)


class TestEngineFacade:
    @pytest.fixture
    def engine(self):
        return CrowdEngine(EngineConfig(seed=5, pool_size=20, pool_accuracy_range=(0.85, 0.95)))

    def test_sql_and_query(self, engine):
        engine.sql("CREATE TABLE t (a STRING, n INTEGER); INSERT INTO t VALUES ('x', 1), ('y', 2)")
        result = engine.query("SELECT a FROM t WHERE n > 1")
        assert [r["a"] for r in result.rows] == ["y"]

    def test_table_access(self, engine):
        engine.sql("CREATE TABLE t (a STRING)")
        assert engine.table("t").name == "t"

    def test_filter(self, engine):
        result = engine.filter(list(range(12)), "even?", lambda i: i % 2 == 0)
        assert set(result.kept) <= set(range(0, 12, 2)) | {1, 3, 5, 7, 9, 11}
        assert engine.spent > 0

    def test_filter_fixed(self, engine):
        result = engine.filter(
            list(range(6)), "even?", lambda i: i % 2 == 0, adaptive=False
        )
        assert result.questions_asked == 18  # 6 items x redundancy 3

    def test_join(self, engine):
        records = ["swift falcon 1", "falcon swift 1", "amber orchid 9"]
        result = engine.join(records, lambda a, b: set(a.split()) == set(b.split()))
        assert (0, 1) in result.matched_pairs

    def test_sort_strategies(self, engine):
        items = [f"i{k}" for k in range(6)]
        score = lambda it: float(it[1:])
        for strategy in ("all_pairs", "merge", "rating", "hybrid"):
            result = engine.sort(items, score, strategy=strategy)
            assert sorted(result.order) == list(range(6))

    def test_sort_unknown_strategy(self, engine):
        with pytest.raises(ConfigurationError):
            engine.sort(["a", "b"], lambda x: 0.0, strategy="bogosort")

    def test_max_and_topk(self, engine):
        items = [f"i{k}" for k in range(8)]
        score = lambda it: float(it[1:])
        assert engine.max(items, score).winners[0] == 7
        top = engine.topk(items, score, k=2)
        assert len(top.winners) == 2

    def test_count(self, engine):
        items = list(range(500))
        result = engine.count(items, "under 100?", lambda i: i < 100, sample_size=100)
        assert 0 <= result.value <= 500

    def test_fill_via_engine(self, engine):
        engine.sql(
            "CREATE TABLE c (k STRING, v STRING CROWD);"
            "INSERT INTO c (k) VALUES ('x'), ('y')"
        )
        result = engine.fill("c", truth_fn=lambda row, col: row["k"] + "!")
        assert result.filled_cells == 2
        assert engine.table("c").row(1)["v"] == "x!"

    def test_categorize(self, engine):
        result = engine.categorize(
            ["dog", "cat", "tuna"],
            ("mammal", "fish"),
            truth_fn=lambda item: "fish" if item == "tuna" else "mammal",
        )
        assert len(result.labels) == 3

    def test_budget_enforced(self):
        engine = CrowdEngine(EngineConfig(seed=9, budget=0.05))
        with pytest.raises(BudgetExceededError):
            engine.filter(list(range(50)), "q", lambda i: True, adaptive=False)

    def test_remaining_budget(self):
        engine = CrowdEngine(EngineConfig(seed=9, budget=1.0))
        engine.filter([1, 2], "q", lambda i: True, adaptive=False)
        assert engine.remaining_budget == pytest.approx(1.0 - engine.spent)

    def test_oracle_passthrough(self):
        oracle = CrowdOracle(filter_fn=lambda v, q: True)
        engine = CrowdEngine(EngineConfig(seed=3), oracle=oracle)
        engine.sql("CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x')")
        result = engine.query("SELECT a FROM t WHERE CROWDFILTER(a, 'always yes?')")
        assert len(result) == 1


class TestRequester:
    @pytest.fixture
    def requester(self):
        platform = SimulatedPlatform(WorkerPool.uniform(15, 0.9, seed=7), seed=8)
        return Requester(platform)

    def test_submit_job(self, requester):
        tasks = make_choice_tasks(20, seed=1)
        report = requester.submit("labels", tasks, redundancy=3)
        assert report.tasks == 20
        assert len(report.truths) == 20
        assert report.cost == pytest.approx(0.6)
        assert report.makespan is None
        assert 0.0 <= report.mean_confidence <= 1.0

    def test_duplicate_job_rejected(self, requester):
        requester.submit("j", make_choice_tasks(2, seed=2))
        with pytest.raises(ConfigurationError):
            requester.submit("j", make_choice_tasks(2, seed=3))

    def test_empty_job_rejected(self, requester):
        with pytest.raises(ConfigurationError):
            requester.submit("empty", [])

    def test_with_timeline_records_makespan(self, requester):
        report = requester.submit(
            "timed", make_choice_tasks(10, seed=4), redundancy=2, with_timeline=True
        )
        assert report.makespan is not None and report.makespan > 0
        assert all(len(v) == 2 for v in report.answers.values())

    def test_total_spent_accumulates(self, requester):
        requester.submit("a", make_choice_tasks(5, seed=5), redundancy=2)
        requester.submit("b", make_choice_tasks(5, seed=6), redundancy=2)
        assert requester.total_spent == pytest.approx(0.2)

    def test_job_lookup(self, requester):
        requester.submit("x", make_choice_tasks(2, seed=7))
        assert requester.job("x").name == "x"
        with pytest.raises(ConfigurationError):
            requester.job("ghost")

    def test_custom_inference_per_job(self, requester):
        report = requester.submit(
            "ds", make_choice_tasks(10, seed=8), redundancy=5, inference=DawidSkene()
        )
        assert report.inference.iterations >= 1


class TestEngineExtendedOperators:
    @pytest.fixture
    def engine(self):
        return CrowdEngine(
            EngineConfig(seed=55, pool_size=20, pool_accuracy_range=(0.92, 0.99))
        )

    def test_skyline_facade(self, engine):
        scores = {"a": (0.1, 0.1), "b": (0.9, 0.9), "c": (0.05, 0.95)}
        result = engine.skyline(
            list(scores),
            [lambda it: scores[it][0], lambda it: scores[it][1]],
        )
        assert 1 in result.skyline  # 'b' dominates 'a'

    def test_match_schemas_facade(self, engine):
        result = engine.match_schemas(
            ("cust_name",), ("customer", "region"), truth={"cust_name": "customer"},
            prune_below=0.0,
        )
        assert result.correspondences.get("cust_name") == "customer"

    def test_plan_facade(self, engine):
        graph = {"s": ["a", "b"], "a": ["t"], "b": ["t"], "t": []}
        score = {("s", "a"): 0.2, ("s", "b"): 0.9, ("a", "t"): 0.5, ("b", "t"): 0.5}
        result = engine.plan(graph, lambda u, v: score[(u, v)], "s", steps=2)
        assert result.path[0] == "s" and len(result.path) == 3

    def test_plan_strategy_validated(self, engine):
        with pytest.raises(ConfigurationError):
            engine.plan({}, lambda u, v: 0.0, "s", steps=1, strategy="magic")

    def test_find_fix_verify_facade(self, engine):
        from repro.operators.findfixverify import proofreading_dataset

        documents = proofreading_dataset(3, seed=9)
        result = engine.find_fix_verify(documents, find_redundancy=3)
        assert len(result.corrected) == 3


class TestEngineRobustness:
    def test_failure_policy_flows_into_scheduler(self):
        engine = CrowdEngine(EngineConfig(failure_policy="degrade", seed=1))
        assert engine.scheduler.config.failure_policy == "degrade"

    def test_robustness_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(failure_policy="explode")
        with pytest.raises(ConfigurationError):
            EngineConfig(deadline=0.0)
        with pytest.raises(ConfigurationError):
            EngineConfig(budget_reserve=-0.5)
        with pytest.raises(ConfigurationError):
            EngineConfig(fault_plan="")

    def test_breakers_attached_from_config(self):
        engine = CrowdEngine(
            EngineConfig(budget=5.0, budget_reserve=1.0, deadline=100.0, seed=2)
        )
        names = [b.name for b in engine.scheduler.breakers]
        assert names == ["breaker:budget", "breaker:deadline"]

    def test_fault_plan_attached_from_config(self, tmp_path):
        from repro.faults import random_plan

        path = tmp_path / "plan.json"
        path.write_text(random_plan(3).to_json(), encoding="utf-8")
        engine = CrowdEngine(EngineConfig(fault_plan=str(path), seed=3))
        assert engine.platform.faults is not None
        assert engine.platform.faults.plan.seed == random_plan(3).seed

    def test_gather_returns_degraded_result(self):
        engine = CrowdEngine(
            EngineConfig(
                failure_policy="degrade",
                abandon_rate=1.0,
                retry_limit=0,
                seed=4,
                redundancy=2,
            )
        )
        tasks = make_choice_tasks(4)
        result = engine.gather(tasks)
        result.coverage.validate()
        assert result.coverage.requested == 4
        assert result.coverage.failed == 4
        assert result.degraded

    def test_gather_complete_run_has_confidences(self):
        engine = CrowdEngine(EngineConfig(seed=5, redundancy=3))
        tasks = make_choice_tasks(4)
        result = engine.gather(tasks)
        assert result.coverage.complete
        assert set(result.truths) == {t.task_id for t in tasks}
        assert all(0.0 <= c <= 1.0 for c in result.confidences.values())

    def test_checkpoint_restore_round_trip(self, tmp_path):
        engine = CrowdEngine(EngineConfig(seed=6, redundancy=3))
        engine.gather(make_choice_tasks(4))
        engine.checkpoint(str(tmp_path))

        twin = CrowdEngine(EngineConfig(seed=6, redundancy=3))
        twin.restore_checkpoint(str(tmp_path))
        assert len(twin.platform.answers) == len(engine.platform.answers)
        assert twin.spent == pytest.approx(engine.spent)
