"""Unit tests for repro.workers (models, worker, pool)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NoWorkersAvailableError
from repro.platform.task import Task, TaskType, compare, numeric, rate, single_choice
from repro.workers.models import (
    BiasedModel,
    CollectorModel,
    ComparisonNoiseModel,
    ConfusionMatrixModel,
    GladModel,
    OneCoinModel,
    SpammerModel,
)
from repro.workers.pool import WorkerPool, true_accuracy
from repro.workers.worker import LatencyModel, Worker


def _answers(model, task, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return [model.answer(task, rng) for _ in range(n)]


class TestOneCoin:
    def test_accuracy_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            OneCoinModel(accuracy=1.5)

    def test_empirical_accuracy(self):
        task = single_choice("q", ("a", "b", "c"), truth="a")
        answers = _answers(OneCoinModel(0.8), task)
        hit_rate = sum(1 for a in answers if a == "a") / len(answers)
        assert 0.76 < hit_rate < 0.84

    def test_perfect_worker(self):
        task = single_choice("q", ("a", "b"), truth="a")
        assert set(_answers(OneCoinModel(1.0), task, n=50)) == {"a"}

    def test_wrong_answers_are_valid_options(self):
        task = single_choice("q", ("a", "b", "c"), truth="a")
        assert set(_answers(OneCoinModel(0.5), task)) <= {"a", "b", "c"}

    def test_fill_errors_are_marked(self):
        task = Task(TaskType.FILL, question="q", truth="paris")
        answers = _answers(OneCoinModel(0.5), task, n=200)
        wrong = [a for a in answers if a != "paris"]
        assert wrong and all("typo" in a for a in wrong)

    def test_numeric_noise_scales_with_accuracy(self):
        task = numeric("q", truth=100.0)
        sloppy = np.std(_answers(OneCoinModel(0.5), task))
        careful = np.std(_answers(OneCoinModel(0.95), task))
        assert careful < sloppy

    def test_rate_clamped_to_scale(self):
        task = rate("q", scale=(1, 5), truth=5.0)
        answers = _answers(OneCoinModel(0.6), task, n=300)
        assert all(1 <= a <= 5 for a in answers)


class TestConfusionMatrix:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrixModel({"a": {"a": 0.5, "b": 0.1}})

    def test_follows_matrix(self):
        model = ConfusionMatrixModel(
            {"a": {"a": 0.9, "b": 0.1}, "b": {"a": 0.4, "b": 0.6}}
        )
        task = single_choice("q", ("a", "b"), truth="b")
        answers = _answers(model, task)
        share_a = sum(1 for x in answers if x == "a") / len(answers)
        assert 0.36 < share_a < 0.44

    def test_unknown_truth_falls_back(self):
        model = ConfusionMatrixModel({"a": {"a": 1.0}})
        task = single_choice("q", ("x", "y"), truth="x")
        answers = _answers(model, task, n=300)
        assert set(answers) <= {"x", "y"}


class TestGlad:
    def test_high_ability_beats_low(self):
        task = single_choice("q", ("a", "b"), truth="a", difficulty=0.3)
        strong = _answers(GladModel(3.0), task)
        weak = _answers(GladModel(0.2), task)
        acc = lambda xs: sum(1 for x in xs if x == "a") / len(xs)
        assert acc(strong) > acc(weak)

    def test_difficulty_hurts(self):
        model = GladModel(2.0)
        easy = single_choice("q", ("a", "b"), truth="a", difficulty=0.0)
        hard = single_choice("q", ("a", "b"), truth="a", difficulty=0.9)
        assert model.correctness_probability(easy) > model.correctness_probability(hard)

    def test_negative_ability_below_chance(self):
        task = single_choice("q", ("a", "b"), truth="a")
        answers = _answers(GladModel(-2.0), task)
        acc = sum(1 for x in answers if x == "a") / len(answers)
        assert acc < 0.35


class TestSpammerAndBias:
    def test_spammer_uniform(self):
        task = single_choice("q", ("a", "b"), truth="a")
        answers = _answers(SpammerModel(), task)
        share_a = sum(1 for x in answers if x == "a") / len(answers)
        assert 0.45 < share_a < 0.55

    def test_spammer_rate_in_scale(self):
        task = rate("q", scale=(1, 5))
        assert all(1 <= a <= 5 for a in _answers(SpammerModel(), task, n=200))

    def test_biased_prefers_label(self):
        model = BiasedModel(preferred="b", bias_probability=0.95)
        task = single_choice("q", ("a", "b"), truth="a")
        answers = _answers(model, task)
        share_b = sum(1 for x in answers if x == "b") / len(answers)
        assert share_b > 0.85

    def test_biased_validates_probability(self):
        with pytest.raises(ConfigurationError):
            BiasedModel(preferred="x", bias_probability=2.0)


class TestComparisonNoise:
    def test_wide_gap_is_easy(self):
        task = compare("A", "B", payload={"left_score": 1.0, "right_score": 0.0})
        answers = _answers(ComparisonNoiseModel(sharpness=6.0), task)
        acc = sum(1 for x in answers if x == "left") / len(answers)
        assert acc > 0.95

    def test_tiny_gap_is_hard(self):
        task = compare("A", "B", payload={"left_score": 0.51, "right_score": 0.50})
        answers = _answers(ComparisonNoiseModel(sharpness=6.0), task)
        acc = sum(1 for x in answers if x == "left") / len(answers)
        assert 0.4 < acc < 0.65

    def test_ratings_are_noisy(self):
        task = rate("q", scale=(1, 10), truth=5.0)
        answers = _answers(ComparisonNoiseModel(rating_noise=0.4), task)
        assert np.std(answers) > 0.8

    def test_missing_scores_fall_back(self):
        task = compare("A", "B", truth="left")
        answers = _answers(ComparisonNoiseModel(fallback_accuracy=0.9), task)
        acc = sum(1 for x in answers if x == "left") / len(answers)
        assert acc > 0.85


class TestCollector:
    def test_contributes_only_known_items(self):
        model = CollectorModel(known_items=("x", "y"))
        task = Task(TaskType.COLLECT, question="q")
        assert set(_answers(model, task, n=100)) == {"x", "y"}

    def test_empty_knowledge_yields_none(self):
        task = Task(TaskType.COLLECT, question="q")
        assert _answers(CollectorModel(), task, n=5) == [None] * 5

    def test_bind_knowledge(self):
        model = CollectorModel()
        model.bind_knowledge(("a",))
        task = Task(TaskType.COLLECT, question="q")
        assert _answers(model, task, n=5) == ["a"] * 5


class TestWorkerAndLatency:
    def test_latency_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(mean_seconds=-1)

    def test_service_time_positive(self, rng):
        model = LatencyModel(mean_seconds=10)
        assert all(model.service_time(rng) > 0 for _ in range(100))

    def test_submit_records_history_and_earnings(self, rng):
        worker = Worker(model=OneCoinModel(1.0))
        task = single_choice("q", ("a", "b"), truth="a", reward=0.05)
        answer = worker.submit(task, rng)
        assert answer.value == "a"
        assert worker.tasks_done == 1
        assert worker.earned == pytest.approx(0.05)
        assert worker.has_answered(task.task_id)

    def test_answer_submitted_at_includes_duration(self, rng):
        worker = Worker()
        task = single_choice("q", ("a", "b"), truth="a")
        answer = worker.submit(task, rng, now=100.0)
        assert answer.submitted_at > 100.0
        assert answer.duration == pytest.approx(answer.submitted_at - 100.0)


class TestWorkerPool:
    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool([])

    def test_uniform_factory(self):
        pool = WorkerPool.uniform(5, 0.7, seed=1)
        assert len(pool) == 5
        assert all(true_accuracy(w) == pytest.approx(0.7) for w in pool)

    def test_heterogeneous_within_range(self):
        pool = WorkerPool.heterogeneous(30, 0.6, 0.9, seed=2)
        accs = [true_accuracy(w) for w in pool]
        assert all(0.6 <= a <= 0.9 for a in accs)
        assert max(accs) - min(accs) > 0.1

    def test_spammer_fraction(self):
        pool = WorkerPool.with_spammers(20, spammer_fraction=0.25, seed=3)
        spammers = [w for w in pool if true_accuracy(w) is None]
        assert len(spammers) == 5

    def test_spammer_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            WorkerPool.with_spammers(10, spammer_fraction=1.5)

    def test_small_pool_nonzero_fraction_gets_a_spammer(self):
        # Regression: round(4 * 0.1) == 0 used to produce a spammer-free
        # "spammer" pool; any positive fraction must yield at least one.
        pool = WorkerPool.with_spammers(4, spammer_fraction=0.1, seed=6)
        spammers = [w for w in pool if true_accuracy(w) is None]
        assert len(spammers) == 1

    def test_zero_fraction_means_no_spammers(self):
        pool = WorkerPool.with_spammers(6, spammer_fraction=0.0, seed=7)
        assert all(true_accuracy(w) is not None for w in pool)

    def test_add_worker_rejects_duplicate_id(self):
        pool = WorkerPool.uniform(3, seed=8)
        from repro.workers.models import OneCoinModel
        from repro.workers.worker import Worker

        pool.add_worker(Worker(model=OneCoinModel(0.8), worker_id="newcomer"))
        assert "newcomer" in pool
        with pytest.raises(ConfigurationError):
            pool.add_worker(Worker(model=OneCoinModel(0.8), worker_id="newcomer"))

    def test_sample_distinct(self):
        pool = WorkerPool.uniform(10, seed=4)
        workers = pool.sample(5)
        assert len({w.worker_id for w in workers}) == 5

    def test_sample_excludes(self):
        pool = WorkerPool.uniform(3, seed=5)
        excluded = pool.workers[0].worker_id
        for _ in range(10):
            sampled = pool.sample(2, exclude={excluded})
            assert excluded not in {w.worker_id for w in sampled}

    def test_sample_too_many_raises(self):
        pool = WorkerPool.uniform(3, seed=6)
        with pytest.raises(NoWorkersAvailableError):
            pool.sample(4)

    def test_deactivate_removes_from_sampling(self):
        pool = WorkerPool.uniform(3, seed=7)
        victim = pool.workers[0].worker_id
        pool.deactivate(victim)
        assert len(pool.active_workers) == 2
        with pytest.raises(NoWorkersAvailableError):
            pool.sample(3)

    def test_round_robin_cycles(self):
        pool = WorkerPool.uniform(3, seed=8)
        stream = pool.round_robin()
        seen = [next(stream).worker_id for _ in range(6)]
        assert seen[:3] == seen[3:]

    def test_arrivals_sorted_and_bounded(self):
        pool = WorkerPool.uniform(5, seed=9)
        events = pool.arrivals(horizon=300.0)
        times = [t for t, _w in events]
        assert times == sorted(times)
        assert all(t <= 300.0 for t in times)

    def test_glad_spectrum(self):
        pool = WorkerPool.glad_spectrum(10, seed=10)
        assert len(pool) == 10

    def test_duplicate_ids_rejected(self):
        worker = Worker()
        with pytest.raises(ConfigurationError):
            WorkerPool([worker, worker])
