"""Tests for hedged execution and adaptive deadlines (PR 8).

Covers the tentpole contract end-to-end: online completion models and
straggler detection, first-answer-wins hedge resolution with cancellation
refunds, seed-replay and kill-and-resume bit-identity, cache/hedge
interaction, the labeled ``batch.hedges`` metric family, and the
deadline escalation ladder (hedge harder -> shrink redundancy -> trip).
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import straggler_spike_plan
from repro.faults.chaos import run_chaos, verify_kill_resume
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import DESCRIPTOR_INDEX, parse_exposition, render_prometheus
from repro.platform.batch import BatchConfig, HedgeState
from repro.platform.cache import AnswerCache
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.recovery.breakers import AdaptiveDeadlineBreaker, DeadlineBreaker
from repro.recovery.checkpoint import restore_scheduler, snapshot_scheduler
from repro.workers.pool import WorkerPool

HEDGE_CFG = dict(
    batch_size=16,
    max_parallel=4,
    hedge_enabled=True,
    hedge_min_samples=8,
    hedge_percentile=0.9,
)


def make_platform(seed=7, pool_size=24, batch=None, plan=None, metrics=False,
                  cache=False):
    pool = WorkerPool.heterogeneous(
        pool_size, accuracy_low=0.7, accuracy_high=0.95, seed=seed
    )
    platform = SimulatedPlatform(
        pool,
        seed=seed + 1,
        batch=batch,
        metrics=MetricsRegistry(enabled=True) if metrics else None,
    )
    if plan is not None:
        platform.attach_faults(plan)
    if cache:
        platform.attach_cache(AnswerCache())
    return platform


def make_tasks(n, prefix="item"):
    return [
        single_choice(f"{prefix} {i}?", ("yes", "no"), truth="yes" if i % 2 else "no")
        for i in range(n)
    ]


def stream(platform, tasks, answers):
    """Answer tuples keyed by workload position and within-pool worker index."""
    widx = {w.worker_id: i for i, w in enumerate(platform.pool)}
    return [
        (ti, widx[a.worker_id], a.value, round(a.submitted_at, 9))
        for ti, task in enumerate(tasks)
        for a in answers[task.task_id]
    ]


def hedge_stats(platform):
    s = platform.stats
    return (
        s.hedges_launched,
        s.hedges_won,
        s.hedges_lost,
        s.hedges_cancelled,
        round(s.hedge_cost_refunded, 9),
    )


class TestHedgeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hedge_percentile": 0.0},
            {"hedge_percentile": 1.0},
            {"hedge_percentile": -0.2},
            {"hedge_min_samples": 1},
            {"hedge_min_samples": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchConfig(hedge_enabled=True, **kwargs)

    def test_hedging_off_by_default(self):
        assert not BatchConfig().hedge_enabled
        platform = make_platform(batch=BatchConfig(seed=1))
        assert platform.scheduler.hedge_state is None

    def test_enabled_config_builds_state(self):
        platform = make_platform(batch=BatchConfig(seed=1, **HEDGE_CFG))
        state = platform.scheduler.hedge_state
        assert isinstance(state, HedgeState)
        assert state.min_samples == 8
        assert state.effective_percentile == pytest.approx(0.9)


class TestHedgeState:
    def test_cold_model_has_no_threshold(self):
        state = HedgeState(min_samples=5)
        assert state.threshold("single_choice") is None
        for d in (10.0, 12.0, 11.0, 13.0):
            state.observe("single_choice", d)
        assert state.threshold("single_choice") is None  # 4 < 5

    def test_warm_model_thresholds_above_body(self):
        state = HedgeState(min_samples=5, percentile=0.9)
        for d in (10.0, 12.0, 11.0, 13.0, 14.0, 9.0):
            state.observe("single_choice", d)
        threshold = state.threshold("single_choice")
        assert threshold is not None and threshold > 13.0

    def test_pressure_lowers_the_threshold(self):
        state = HedgeState(min_samples=5, percentile=0.95)
        for d in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0):
            state.observe("single_choice", d)
        relaxed = state.threshold("single_choice")
        state.set_pressure(True, 0.6)
        assert state.effective_percentile == pytest.approx(0.6)
        assert state.threshold("single_choice") < relaxed
        state.set_pressure(False, 0.6)
        assert state.threshold("single_choice") == pytest.approx(relaxed)

    def test_nonfinite_observations_ignored(self):
        state = HedgeState(min_samples=2)
        state.observe("single_choice", float("nan"))
        state.observe("single_choice", float("inf"))
        state.observe("single_choice", -3.0)
        state.observe("single_choice", 0.0)
        assert state.threshold("single_choice") is None

    def test_export_restore_round_trip(self):
        state = HedgeState(min_samples=3, percentile=0.8)
        for d in (10.0, 20.0, 30.0, 40.0):
            state.observe("single_choice", d)
        copy = HedgeState(min_samples=3, percentile=0.8)
        copy.restore_state(state.export_state())
        assert copy.threshold("single_choice") == pytest.approx(
            state.threshold("single_choice")
        )


class TestHedgeDeterminism:
    def _run(self, seed, hedge=True, min_samples=8):
        cfg = dict(HEDGE_CFG, hedge_enabled=hedge, hedge_min_samples=min_samples)
        platform = make_platform(
            seed=seed,
            batch=BatchConfig(seed=seed + 50, **cfg),
            plan=straggler_spike_plan(seed, rate=0.3, multiplier=20.0),
        )
        tasks = make_tasks(48)
        run = platform.scheduler.run(tasks, redundancy=3)
        return stream(platform, tasks, run.answers), run.makespan, hedge_stats(platform)

    def test_seed_replay_is_bit_identical(self):
        first = self._run(seed=11)
        second = self._run(seed=11)
        assert first == second
        assert first[2][0] > 0  # hedges actually fired

    def test_different_seeds_differ(self):
        assert self._run(seed=11)[0] != self._run(seed=12)[0]

    def test_cold_model_never_perturbs_the_run(self):
        # min_samples larger than the workload: hedging is armed but never
        # fires, so the answer stream is bit-identical to hedging off.
        off = self._run(seed=5, hedge=False)
        cold = self._run(seed=5, hedge=True, min_samples=10_000)
        assert cold[0] == off[0]
        assert cold[1] == pytest.approx(off[1])
        assert cold[2][0] == 0


class TestHedgeOutcomes:
    def _run(self, seed=9, hedge=True, n_tasks=60):
        cfg = dict(HEDGE_CFG, hedge_enabled=hedge)
        platform = make_platform(
            seed=seed,
            batch=BatchConfig(seed=seed + 50, **cfg),
            plan=straggler_spike_plan(seed, rate=0.3, multiplier=20.0),
            metrics=True,
        )
        run = platform.scheduler.run(make_tasks(n_tasks), redundancy=3)
        return platform, run

    def test_hedging_cuts_makespan_under_straggler_spikes(self):
        _, unhedged = self._run(hedge=False)
        platform, hedged = self._run(hedge=True)
        assert platform.stats.hedges_launched > 0
        assert hedged.makespan < unhedged.makespan

    def test_outcomes_partition_and_refunds_account(self):
        platform, _ = self._run()
        s = platform.stats
        assert s.hedges_launched == s.hedges_won + s.hedges_lost + s.hedges_cancelled
        # Won and lost hedges each cancel exactly one completed copy whose
        # reward is refunded; a faulted ("cancelled") copy was never owed.
        reward = 0.01
        assert s.hedge_cost_refunded == pytest.approx(
            (s.hedges_won + s.hedges_lost) * reward
        )

    def test_losing_copies_are_never_charged(self):
        # Every commit pays one reward; hedge copies that lose are cancelled
        # before payment, so total spend is answers_collected * reward.
        platform, _ = self._run()
        s = platform.stats
        assert s.hedges_won + s.hedges_lost > 0
        assert s.cost_spent == pytest.approx(s.answers_collected * 0.01)

    def test_cancelled_hedges_do_not_count_as_faults(self):
        # Straggler spikes never fault by themselves (no timeout configured),
        # so any timeout/abandonment here would be hedge-accounting leakage.
        platform, _ = self._run()
        assert platform.stats.assignments_timed_out == 0
        assert platform.stats.assignments_abandoned == 0

    def test_summary_mentions_hedges(self):
        platform, _ = self._run()
        summary = platform.stats.batch_summary()
        assert "hedge" in summary

    def test_labeled_hedge_family_renders(self):
        platform, _ = self._run()
        s = platform.stats
        text = render_prometheus(platform.metrics)
        families = parse_exposition(text)
        samples = families["batch_hedges_total"]["samples"]
        by_outcome = {dict(labels)["outcome"]: value for _, labels, value in samples}
        assert set(by_outcome) <= {"won", "lost", "cancelled"}
        assert sum(by_outcome.values()) == s.hedges_launched
        assert by_outcome.get("won", 0) == s.hedges_won

    def test_hedge_descriptors_registered(self):
        for name in (
            "batch.hedges",
            "batch.hedges_launched",
            "batch.hedges_won",
            "batch.hedges_lost",
            "batch.hedges_cancelled",
            "batch.hedge_cost_refunded",
            "recovery.deadline_escalations",
        ):
            assert name in DESCRIPTOR_INDEX, name
        assert DESCRIPTOR_INDEX["batch.hedges"].prom_name == "batch_hedges_total"
        assert DESCRIPTOR_INDEX["batch.hedges"].kind == "counter"

    def test_old_profiles_without_hedge_fields_still_render(self):
        from repro.obs.profiler import render_profile

        document = {
            "version": 1,
            "statements": [
                {
                    "index": 0,
                    "statement": "SELECT 1",
                    "wall_s": 0.1,
                    "sim_s": 2.0,
                    "rows_out": 1,
                    "failed": False,
                    "em_iterations": {},
                    "operators": [],
                    "cost": 0.0,
                    "answers": 0,
                    "hits_published": 0,
                    "answers_reused": 0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                }
            ],
        }
        assert "hedges" in render_profile(document)


class TestHedgeCacheInteraction:
    def _platform(self, seed=13):
        return make_platform(
            seed=seed,
            batch=BatchConfig(seed=seed + 50, **HEDGE_CFG),
            plan=straggler_spike_plan(seed, rate=0.3, multiplier=20.0),
            cache=True,
        )

    def test_duplicate_pair_is_one_cache_entry(self):
        platform = self._platform()
        tasks = make_tasks(40) + make_tasks(2)  # last two duplicate the first two
        run = platform.scheduler.run(tasks, redundancy=3)
        # 40 canonical misses; the dup pair coalesced in flight — a hedge on
        # the canonical copy never splits it into two logical tasks.
        assert platform.stats.cache_misses == 40
        assert platform.stats.hedges_launched > 0
        front, back = stream(platform, tasks[:2], run.answers), stream(
            platform, tasks[-2:], run.answers
        )
        assert front == back  # duplicates share the canonical answers

    def test_warm_cache_hits_never_hedge(self):
        platform = self._platform()
        platform.scheduler.run(make_tasks(40), redundancy=3)
        launched = platform.stats.hedges_launched
        dispatched = platform.stats.assignments_dispatched
        assert launched > 0
        rerun = platform.scheduler.run(make_tasks(40), redundancy=3)
        # All hits: nothing dispatched, and in particular nothing hedged.
        assert platform.stats.assignments_dispatched == dispatched
        assert platform.stats.hedges_launched == launched
        assert platform.stats.cache_hits == 40
        assert all(len(a) == 3 for a in rerun.answers.values())


class TestHedgeCheckpoint:
    def test_snapshot_carries_observations_and_stage(self):
        platform = make_platform(batch=BatchConfig(seed=1, **HEDGE_CFG))
        scheduler = platform.scheduler
        for d in (10.0, 20.0, 30.0):
            scheduler.hedge_state.observe("single_choice", d)
        scheduler._deadline_stage = "hedge"
        state = snapshot_scheduler(scheduler)
        assert state["hedge"]["observations"]["single_choice"] == [10.0, 20.0, 30.0]
        assert state["deadline_stage"] == "hedge"

    def test_restore_builds_hedge_state_lazily(self):
        # The escalation ladder can force hedging on mid-run even when the
        # config left it off; the resumed scheduler must accept that state.
        donor = make_platform(batch=BatchConfig(seed=1, **HEDGE_CFG)).scheduler
        for d in (10.0, 20.0, 30.0):
            donor.hedge_state.observe("single_choice", d)
        donor._deadline_stage = "shrink"
        target = make_platform(batch=BatchConfig(seed=1)).scheduler
        assert target.hedge_state is None
        restore_scheduler(target, snapshot_scheduler(donor))
        assert target.hedge_state is not None
        assert target.hedge_state.export_state() == donor.hedge_state.export_state()
        assert target._deadline_stage == "shrink"

    def test_legacy_snapshot_restores_cleanly(self):
        target = make_platform(batch=BatchConfig(seed=1)).scheduler
        restore_scheduler(target, {"clock": 5.0, "streams": 3, "batches_run": 1})
        assert target.hedge_state is None
        assert target._deadline_stage == "normal"


class TestKillResumeWithHedging:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_bit_identity(self, seed, tmp_path):
        assert verify_kill_resume(seed, str(tmp_path), mitigation="hedge")

    def test_unknown_mitigation_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_chaos(0, mitigation="retry-harder")
        with pytest.raises(ConfigurationError):
            verify_kill_resume(0, str(tmp_path), mitigation="retry-harder")


class TestChaosMitigation:
    def test_hedged_chaos_replays_bit_identically(self):
        a = run_chaos(1, n_tasks=16, n_workers=8, mitigation="hedge")
        b = run_chaos(1, n_tasks=16, n_workers=8, mitigation="hedge")
        assert a.digest == b.digest
        assert a.mitigation == "hedge"
        assert "mitigation hedge" in a.summary()

    def test_report_carries_makespan_and_cost(self):
        report = run_chaos(1, n_tasks=16, n_workers=8)
        assert report.mitigation == "none"
        assert report.makespan > 0.0
        assert report.cost > 0.0
        assert report.hedges == 0

    def test_hedged_spike_run_survives_with_hedges(self):
        # The chaos world caps stragglers at the 240s assignment timeout, so
        # makespan deltas there are noise; the >=2x p95 gate lives in
        # benchmarks/bench_hedging.py against a pure spike plan. Here we pin
        # that hedging fires and the survival contract still holds.
        plan = straggler_spike_plan(2, rate=0.3, multiplier=20.0)
        hedged = run_chaos(
            2, n_tasks=32, n_workers=12, budget=50.0, plan=plan, mitigation="hedge"
        )
        assert hedged.hedges > 0
        assert hedged.survived
        assert "cost_spent equals the sum of rewards paid" in hedged.checks


class TestAdaptiveDeadline:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveDeadlineBreaker(deadline=100.0, hedge_at=0.9, shrink_at=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveDeadlineBreaker(deadline=100.0, hedge_at=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveDeadlineBreaker(deadline=100.0, pressure_percentile=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveDeadlineBreaker(deadline=0.0)

    def test_stages_advance_with_the_clock(self):
        platform = make_platform(batch=BatchConfig(seed=1))
        scheduler = platform.scheduler
        breaker = AdaptiveDeadlineBreaker(
            deadline=1000.0, hedge_at=0.5, shrink_at=0.8, pressure_percentile=0.7
        )
        assert breaker.escalate(platform, scheduler) is None  # still normal
        assert scheduler.hedge_state is None
        scheduler._clock = 600.0
        assert breaker.escalate(platform, scheduler) == "hedge"
        assert breaker.escalate(platform, scheduler) is None  # idempotent
        assert scheduler.hedge_state is not None  # forced on, config was off
        assert scheduler.hedge_state.effective_percentile == pytest.approx(0.7)
        assert not scheduler._shrink_redundancy
        scheduler._clock = 850.0
        assert breaker.escalate(platform, scheduler) == "shrink"
        assert scheduler._shrink_redundancy
        assert breaker.check(platform, scheduler) is None  # not tripped yet
        scheduler._clock = 1000.0
        assert breaker.check(platform, scheduler) is not None

    def test_resumed_scheduler_does_not_reannounce(self):
        platform = make_platform(batch=BatchConfig(seed=1))
        scheduler = platform.scheduler
        scheduler._clock = 600.0
        scheduler._deadline_stage = "hedge"  # as a restored checkpoint would
        breaker = AdaptiveDeadlineBreaker(deadline=1000.0)
        assert breaker.escalate(platform, scheduler) is None
        assert scheduler.hedge_state is not None  # pressure still re-applied

    def test_ladder_runs_end_to_end_and_degrades(self):
        platform = make_platform(
            seed=21,
            batch=BatchConfig(
                seed=71, batch_size=5, max_parallel=2, failure_policy="degrade"
            ),
            metrics=True,
        )
        scheduler = platform.scheduler
        scheduler.breakers = [AdaptiveDeadlineBreaker(deadline=500.0)]
        tasks = make_tasks(30)
        result = scheduler.run(tasks, redundancy=2)
        escalations = platform.metrics.counter("recovery.deadline_escalations").value
        assert escalations >= 1
        assert scheduler._deadline_stage in ("hedge", "shrink")
        assert result.failures  # the deadline eventually tripped
        assert any(
            info.reason == "breaker:deadline" for info in result.failures.values()
        )
        # degrade keeps a key for every requested task
        assert set(result.answers) == {t.task_id for t in tasks}

    def test_shrink_halves_effective_redundancy(self):
        platform = make_platform(
            seed=22,
            batch=BatchConfig(
                seed=72, batch_size=4, max_parallel=2, failure_policy="degrade"
            ),
        )
        scheduler = platform.scheduler
        # Pre-escalated to shrink: every batch gathers ceil(4/2)=2 answers.
        scheduler.apply_deadline_pressure(hedge=True, shrink=True, percentile=0.7)
        result = scheduler.run(make_tasks(8), redundancy=4)
        assert all(len(a) == 2 for a in result.answers.values())

    def test_plain_breakers_escalate_as_noop(self):
        platform = make_platform(batch=BatchConfig(seed=1))
        breaker = DeadlineBreaker(deadline=10.0)
        assert breaker.escalate(platform, platform.scheduler) is None
