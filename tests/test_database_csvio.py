"""Unit tests for repro.data.database and repro.data.csvio."""

import io

import pytest

from repro.data.csvio import (
    CNULL_TOKEN,
    read_csv,
    table_from_csv_string,
    table_to_csv_string,
    write_csv,
)
from repro.data.database import Database
from repro.data.schema import CNULL, SchemaBuilder, is_cnull
from repro.errors import DuplicateTableError, UnknownTableError


@pytest.fixture
def db(people_schema):
    database = Database("testdb")
    database.create_table(
        "people",
        people_schema,
        rows=[{"name": "ann", "age": 30}, {"name": "bob", "age": 25, "hometown": "rome"}],
    )
    return database


class TestDatabase:
    def test_create_and_lookup(self, db):
        assert len(db.table("people")) == 2

    def test_duplicate_rejected(self, db, people_schema):
        with pytest.raises(DuplicateTableError):
            db.create_table("people", people_schema)

    def test_if_not_exists_returns_existing(self, db, people_schema):
        table = db.create_table("people", people_schema, if_not_exists=True)
        assert len(table) == 2

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("ghosts")

    def test_drop(self, db):
        db.drop_table("people")
        assert "people" not in db

    def test_drop_missing_raises(self, db):
        with pytest.raises(UnknownTableError):
            db.drop_table("ghosts")

    def test_drop_if_exists_silent(self, db):
        db.drop_table("ghosts", if_exists=True)

    def test_pending_crowd_cells(self, db):
        pending = db.pending_crowd_cells()
        assert pending == {"people": [(1, "hometown")]}

    def test_completeness(self, db):
        assert db.completeness() == pytest.approx(0.5)

    def test_completeness_empty_db(self):
        assert Database().completeness() == 1.0

    def test_iteration_and_len(self, db):
        assert len(db) == 1
        assert [t.name for t in db] == ["people"]

    def test_table_names(self, db):
        assert db.table_names == ("people",)


class TestCsvIO:
    def test_roundtrip_preserves_cnull(self, db, people_schema):
        table = db.table("people")
        text = table_to_csv_string(table)
        assert CNULL_TOKEN in text
        back = table_from_csv_string(text, "people2", people_schema)
        assert is_cnull(back.row(1)["hometown"])
        assert back.row(2)["hometown"] == "rome"

    def test_roundtrip_preserves_null(self, people_schema):
        from repro.data.table import make_table

        table = make_table("t", people_schema, rows=[{"name": "x"}])
        back = table_from_csv_string(table_to_csv_string(table), "t2", people_schema)
        assert back.row(1)["age"] is None

    def test_header_mismatch_rejected(self, people_schema):
        with pytest.raises(ValueError, match="header"):
            read_csv(io.StringIO("a,b\n1,2\n"), "t", people_schema)

    def test_empty_file_rejected(self, people_schema):
        with pytest.raises(ValueError, match="empty"):
            read_csv(io.StringIO(""), "t", people_schema)

    def test_bad_field_count_rejected(self, people_schema):
        text = "name,age,hometown\nann,30\n"
        with pytest.raises(ValueError, match="line 2"):
            read_csv(io.StringIO(text), "t", people_schema)

    def test_boolean_parsing(self):
        schema = SchemaBuilder().string("k").boolean("flag").build()
        text = "k,flag\na,true\nb,0\nc,YES\n"
        table = read_csv(io.StringIO(text), "t", schema)
        assert [r["flag"] for r in table] == [True, False, True]

    def test_boolean_garbage_rejected(self):
        schema = SchemaBuilder().string("k").boolean("flag").build()
        with pytest.raises(ValueError):
            read_csv(io.StringIO("k,flag\na,maybe\n"), "t", schema)

    def test_write_to_path(self, tmp_path, db):
        target = tmp_path / "out.csv"
        write_csv(db.table("people"), target)
        assert target.read_text().startswith("name,age,hometown")

    def test_numeric_types_roundtrip(self):
        schema = SchemaBuilder().integer("i").float("f").build()
        from repro.data.table import make_table

        table = make_table("t", schema, rows=[{"i": 7, "f": 2.5}])
        back = table_from_csv_string(table_to_csv_string(table), "t", schema)
        assert back.row(1)["i"] == 7
        assert back.row(1)["f"] == pytest.approx(2.5)
