"""Error-path and repr coverage for corners the happy-path tests skip."""

import pytest

from repro.data.database import Database
from repro.data.expressions import (
    Arithmetic,
    Comparison,
    CrowdPredicate,
    col,
    lit,
)
from repro.data.schema import SchemaBuilder
from repro.errors import ExecutionError, ExpressionError, ParseError
from repro.lang.executor import CrowdOracle, Executor
from repro.lang.interpreter import CrowdSQLSession
from repro.lang.parser import parse_one
from repro.lang.planner import build_plan
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


class TestExpressionReprs:
    def test_reprs_render(self):
        expr = (col("a") > lit(1)) & ~(col("b") == lit("x"))
        text = repr(expr)
        assert "AND" in text and "NOT" in text and "a" in text

    def test_crowd_predicate_repr(self):
        pred = CrowdPredicate("equal", (col("a"), col("b")))
        assert repr(pred) == "CROWDEQUAL(a, b)"

    def test_arithmetic_repr(self):
        assert repr(Arithmetic("+", col("a"), lit(2))) == "(a + 2)"

    def test_unknown_arithmetic_op(self):
        with pytest.raises(ExpressionError):
            Arithmetic("%", col("a"), lit(2)).evaluate({"a": 1})

    def test_comparison_op_validated_eagerly(self):
        with pytest.raises(ExpressionError):
            Comparison("LIKE", col("a"), lit("x"))


class TestExecutorErrorPaths:
    def _executor(self):
        database = Database()
        schema = SchemaBuilder().string("name").crowd_string("extra").build()
        database.create_table("t", schema, rows=[{"name": "x"}])
        platform = SimulatedPlatform(WorkerPool.uniform(5, 1.0, seed=1), seed=2)
        return database, Executor(database, platform, oracle=CrowdOracle())

    def test_order_by_unknown_column(self):
        database, executor = self._executor()
        session = CrowdSQLSession(database=database)
        with pytest.raises(ExecutionError, match="ORDER BY unknown"):
            session.query("SELECT name FROM t ORDER BY ghost")

    def test_crowdequal_arity_enforced(self):
        database, executor = self._executor()
        from repro.lang.executor import ExecutionStats

        pred = CrowdPredicate("equal", (col("name"),))
        with pytest.raises(ExecutionError, match="two operands"):
            executor._resolve_predicate(pred, {"name": "x"}, ExecutionStats())

    def test_unknown_crowd_kind(self):
        database, executor = self._executor()
        from repro.lang.executor import ExecutionStats

        pred = CrowdPredicate("teleport", (col("name"),))
        with pytest.raises(ExecutionError, match="unknown crowd predicate"):
            executor._resolve_predicate(pred, {"name": "x"}, ExecutionStats())

    def test_crowd_predicate_inside_arithmetic_rejected(self):
        database, executor = self._executor()
        from repro.lang.executor import ExecutionStats

        expr = Arithmetic("+", CrowdPredicate("equal", (col("name"), lit("x"))), lit(1))
        with pytest.raises(ExecutionError, match="AND/OR/NOT"):
            executor._eval_crowd(expr, {"name": "x"}, ExecutionStats())

    def test_project_unknown_column(self):
        database, _ = self._executor()
        session = CrowdSQLSession(database=database)
        with pytest.raises(Exception):
            session.query("SELECT ghost FROM t")


class TestParserErrorLocations:
    @pytest.mark.parametrize(
        "sql",
        [
            "CREATE TABLE",                       # missing name
            "CREATE TABLE t a STRING)",           # missing paren
            "INSERT INTO t VALUES",               # missing tuple
            "SELECT FROM t",                      # missing select list
            "SELECT * FROM t WHERE",              # missing expr
            "SELECT * FROM t ORDER a",            # missing BY
            "UPDATE t",                           # missing SET
            "DELETE t",                           # missing FROM
            "SELECT COUNT( FROM t",               # bad aggregate
        ],
    )
    def test_malformed_statements_raise_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse_one(sql)

    def test_error_message_includes_got_token(self):
        with pytest.raises(ParseError, match="got"):
            parse_one("SELECT * FROM t LIMIT x")


class TestPlannerEdges:
    def test_join_without_condition_rejected(self):
        # The parser requires ON, so simulate at the AST level.
        from repro.lang.ast_nodes import JoinClause, Select
        from repro.errors import PlanError

        database = Database()
        schema = SchemaBuilder().string("a").build()
        database.create_table("t", schema)
        database.create_table("u", SchemaBuilder().string("b").build())
        select = Select(
            columns=(), table="t",
            joins=(JoinClause(table="u", alias=None, condition=None),),
        )
        with pytest.raises(PlanError, match="ON condition"):
            build_plan(select, database)

    def test_explain_empty_plan_notes(self):
        database = Database()
        database.create_table("t", SchemaBuilder().string("a").build())
        plan = build_plan(parse_one("SELECT a FROM t"), database)
        assert "Scan(t)" in plan.explain()


class TestSessionEdges:
    def test_select_star_includes_all_columns(self):
        session = CrowdSQLSession()
        session.execute("CREATE TABLE t (a STRING, b INTEGER); INSERT INTO t VALUES ('x', 1)")
        result = session.query("SELECT * FROM t")
        assert set(result.columns) == {"a", "b"}

    def test_result_column_accessor(self):
        session = CrowdSQLSession()
        session.execute("CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x'), ('y')")
        result = session.query("SELECT a FROM t")
        assert result.column("a") == ["x", "y"]
        assert len(result) == 2
        assert [row["a"] for row in result] == ["x", "y"]

    def test_if_not_exists_roundtrip(self):
        session = CrowdSQLSession()
        session.execute("CREATE TABLE t (a STRING)")
        session.execute("CREATE TABLE IF NOT EXISTS t (a STRING)")
        assert "t" in session.database

    def test_drop_if_exists(self):
        session = CrowdSQLSession()
        session.execute("DROP TABLE IF EXISTS ghost")


class TestHarnessEdges:
    def test_experiment_std_single_trial_is_zero(self):
        from repro.experiments.harness import run_trials

        result = run_trials("x", lambda seed: {"m": 1.0}, n_trials=1)
        assert result.std("m") == 0.0

    def test_summary_selects_keys(self):
        from repro.experiments.harness import run_trials

        result = run_trials("x", lambda seed: {"a": 1.0, "b": 2.0}, n_trials=2)
        assert result.summary(["b"]) == {"b": 2.0}
