"""Unit tests for the batched concurrent task runtime (repro.platform.batch)."""

import pytest

from repro.core import CrowdEngine, EngineConfig
from repro.errors import (
    ConfigurationError,
    NoWorkersAvailableError,
    RetryExhaustedError,
)
from repro.latency.rounds import RoundScheduler
from repro.platform.batch import BatchConfig, BatchScheduler
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.pool import WorkerPool


def make_platform(seed=7, pool_size=20, batch=None):
    pool = WorkerPool.heterogeneous(
        pool_size, accuracy_low=0.7, accuracy_high=0.95, seed=seed
    )
    return SimulatedPlatform(pool, seed=seed + 1, batch=batch)


def make_tasks(n):
    return [
        single_choice(f"item {i}?", ("yes", "no"), truth="yes" if i % 2 else "no")
        for i in range(n)
    ]


def stream(platform, tasks, answers):
    """Answer tuples keyed by workload position and within-pool worker index.

    Worker/task ids come from process-global counters, so separately built
    platforms name them differently; positions are the stable identities.
    """
    widx = {w.worker_id: i for i, w in enumerate(platform.pool)}
    return [
        (ti, widx[a.worker_id], a.value, round(a.submitted_at, 9))
        for ti, task in enumerate(tasks)
        for a in answers[task.task_id]
    ]


class TestBatchConfig:
    def test_defaults_are_sequential_and_fault_free(self):
        cfg = BatchConfig()
        assert cfg.max_parallel == 1
        assert not cfg.faults_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"max_parallel": 0},
            {"retry_limit": -1},
            {"abandon_rate": 1.5},
            {"abandon_rate": -0.1},
            {"assignment_timeout": 0.0},
            {"retry_backoff": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchConfig(**kwargs)

    def test_faults_enabled_flags(self):
        assert BatchConfig(abandon_rate=0.1).faults_enabled
        assert BatchConfig(assignment_timeout=10.0).faults_enabled


class TestSequentialEquivalence:
    def test_max_parallel_1_matches_legacy_collect(self):
        ref = make_platform()
        ref_tasks = make_tasks(30)
        ref_stream = stream(ref, ref_tasks, ref.collect(ref_tasks, redundancy=3))

        batched = make_platform(batch=BatchConfig(batch_size=8, max_parallel=1, seed=99))
        tasks = make_tasks(30)
        run = batched.scheduler.run(tasks, redundancy=3)
        assert stream(batched, tasks, run.answers) == ref_stream

    def test_engine_default_config_unchanged_by_batching(self):
        results = []
        for batch_size in (4, 64):
            engine = CrowdEngine(EngineConfig(seed=5, redundancy=3, batch_size=batch_size))
            items = list(range(20))
            results.append(engine.filter(items, "even?", lambda i: i % 2 == 0).decisions)
        assert results[0] == results[1]


class TestDeterminism:
    CFG = dict(
        batch_size=10,
        max_parallel=4,
        retry_limit=6,
        abandon_rate=0.2,
        assignment_timeout=80.0,
    )

    def _run(self, seed):
        platform = make_platform(batch=BatchConfig(seed=seed, **self.CFG))
        tasks = make_tasks(25)
        run = platform.scheduler.run(tasks, redundancy=3)
        return stream(platform, tasks, run.answers), run.makespan

    def test_parallel_faulty_runs_are_reproducible(self):
        first = self._run(seed=123)
        second = self._run(seed=123)
        assert first == second

    def test_seed_changes_the_run(self):
        assert self._run(seed=123) != self._run(seed=321)


class TestFaultModel:
    def test_timeouts_are_retried_to_full_redundancy(self):
        platform = make_platform(
            batch=BatchConfig(
                batch_size=16,
                max_parallel=4,
                retry_limit=10,
                assignment_timeout=60.0,
                seed=11,
            )
        )
        run = platform.scheduler.run(make_tasks(20), redundancy=3)
        assert platform.stats.assignments_timed_out > 0
        assert platform.stats.assignments_retried > 0
        assert all(len(a) == 3 for a in run.answers.values())

    def test_abandonment_is_retried_to_full_redundancy(self):
        platform = make_platform(
            batch=BatchConfig(
                batch_size=16, max_parallel=4, retry_limit=10, abandon_rate=0.3, seed=11
            )
        )
        run = platform.scheduler.run(make_tasks(20), redundancy=3)
        assert platform.stats.assignments_abandoned > 0
        assert all(len(a) == 3 for a in run.answers.values())

    def test_exhausted_retries_raise(self):
        platform = make_platform(
            batch=BatchConfig(max_parallel=2, retry_limit=1, abandon_rate=1.0, seed=3)
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            platform.scheduler.run(make_tasks(4), redundancy=2)
        assert excinfo.value.attempts == 2
        assert "retry budget exhausted" in str(excinfo.value)
        assert excinfo.value.outcomes == ["abandoned", "abandoned"]
        assert excinfo.value.task_id in str(excinfo.value)

    def test_retry_prefers_fresh_workers(self):
        # Pool of 3, redundancy 3: a retry cannot find an unattempted worker
        # and must fall back to re-using one that abandoned earlier.
        platform = make_platform(
            pool_size=3,
            batch=BatchConfig(max_parallel=2, retry_limit=20, abandon_rate=0.4, seed=2),
        )
        run = platform.scheduler.run(make_tasks(6), redundancy=3)
        assert all(len(a) == 3 for a in run.answers.values())

    def test_redundancy_above_pool_still_rejected(self):
        platform = make_platform(
            pool_size=2, batch=BatchConfig(max_parallel=2, seed=1)
        )
        with pytest.raises(NoWorkersAvailableError):
            platform.scheduler.run(make_tasks(2), redundancy=5)


class TestAccounting:
    def test_counters_and_summary(self):
        platform = make_platform(batch=BatchConfig(batch_size=8, max_parallel=4, seed=1))
        run = platform.scheduler.run(make_tasks(20), redundancy=2)
        stats = platform.stats
        assert stats.batches_dispatched == 3          # ceil(20 / 8)
        assert stats.assignments_dispatched == 40
        assert stats.batch_makespan == pytest.approx(run.makespan)
        assert stats.batch_wall_clock > 0.0
        summary = stats.batch_summary()
        assert "3 batches" in summary and "40 assignments" in summary

    def test_summary_empty_without_batches(self):
        platform = make_platform()
        assert platform.stats.batch_summary() == ""

    def test_makespan_shrinks_with_lanes(self):
        makespans = {}
        for lanes in (1, 8):
            platform = make_platform(
                batch=BatchConfig(batch_size=50, max_parallel=lanes, seed=4)
            )
            makespans[lanes] = platform.scheduler.run(make_tasks(40), redundancy=3).makespan
        assert makespans[8] < makespans[1] / 2.0

    def test_run_result_throughput(self):
        platform = make_platform(batch=BatchConfig(batch_size=8, max_parallel=2, seed=1))
        run = platform.scheduler.run(make_tasks(10), redundancy=2)
        assert run.throughput == pytest.approx(10 / run.makespan)


class TestEngineIntegration:
    def test_engine_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_parallel=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(abandon_rate=2.0)

    def test_engine_exposes_scheduler(self):
        engine = CrowdEngine(EngineConfig(seed=1, max_parallel=4))
        assert isinstance(engine.scheduler, BatchScheduler)
        assert engine.platform.parallel_batching

    def test_parallel_operators_deterministic(self):
        def run():
            engine = CrowdEngine(EngineConfig(seed=9, max_parallel=4, batch_size=16))
            items = list(range(24))
            filt = engine.filter(items, "small?", lambda i: i < 12)
            top = engine.topk([f"x{i}" for i in range(9)], lambda x: int(x[1:]), k=2)
            return filt.decisions, top.winners

        assert run() == run()

    def test_parallel_filter_counts_batches(self):
        engine = CrowdEngine(EngineConfig(seed=2, max_parallel=4, batch_size=16))
        engine.filter(list(range(10)), "small?", lambda i: i < 5)
        assert engine.stats.batches_dispatched > 0
        assert engine.stats.assignments_dispatched > 0


class TestRoundSchedulerBatched:
    def test_use_batches_requires_scheduler(self):
        platform = make_platform()
        with pytest.raises(ConfigurationError):
            RoundScheduler(platform, use_batches=True)

    def test_batched_rounds_report_makespan(self):
        platform = make_platform(batch=BatchConfig(batch_size=8, max_parallel=4, seed=6))
        scheduler = RoundScheduler(platform, redundancy=2, use_batches=True)
        outcome = scheduler.run(
            make_tasks(6), lambda answers, i: make_tasks(3) if i < 3 else []
        )
        assert outcome.round_count == 3
        assert outcome.total_latency > 0.0
        assert outcome.total_answers == (6 + 3 + 3) * 2
