"""Unit tests for MACE truth inference (spammer-mixture model)."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer
from repro.quality.truth import Mace, MajorityVote
from repro.workers.pool import WorkerPool, true_accuracy

from conftest import make_choice_tasks


def _manual(votes):
    return {
        task_id: [Answer(task_id=task_id, worker_id=w, value=v) for w, v in pairs]
        for task_id, pairs in votes.items()
    }


class TestMace:
    def test_config_validated(self):
        with pytest.raises(InferenceError):
            Mace(prior_competence=1.0)
        with pytest.raises(InferenceError):
            Mace(max_iterations=0)

    def test_unanimous(self):
        result = Mace().infer(
            _manual({"t1": [("w1", "a"), ("w2", "a")], "t2": [("w1", "b"), ("w2", "b")]})
        )
        assert result.truths == {"t1": "a", "t2": "b"}

    def test_converges(self):
        pool = WorkerPool.heterogeneous(15, seed=1)
        platform = SimulatedPlatform(pool, seed=2)
        tasks = make_choice_tasks(60, seed=3)
        answers = platform.collect(tasks, redundancy=5)
        result = Mace().infer(answers)
        assert result.converged
        assert all(0.0 <= q <= 1.0 for q in result.worker_quality.values())

    def test_beats_mv_under_heavy_spam(self):
        pool = WorkerPool.with_spammers(30, spammer_fraction=0.4, good_accuracy=0.85, seed=5)
        platform = SimulatedPlatform(pool, seed=7)
        tasks = make_choice_tasks(250, seed=11)
        answers = platform.collect(tasks, redundancy=5)
        truth = {t.task_id: t.truth for t in tasks}
        mv = MajorityVote().infer(answers).accuracy_against(truth)
        mace = Mace().infer(answers).accuracy_against(truth)
        assert mace > mv + 0.04

    def test_competence_separates_spammers(self):
        pool = WorkerPool.with_spammers(20, spammer_fraction=0.3, good_accuracy=0.9, seed=9)
        spammers = {w.worker_id for w in pool if true_accuracy(w) is None}
        platform = SimulatedPlatform(pool, seed=10)
        tasks = make_choice_tasks(200, seed=12)
        answers = platform.collect(tasks, redundancy=6)
        quality = Mace().infer(answers).worker_quality
        spam_mean = np.mean([quality[w] for w in quality if w in spammers])
        good_mean = np.mean([quality[w] for w in quality if w not in spammers])
        assert good_mean > spam_mean + 0.3

    def test_spam_distribution_sums_to_one(self):
        result = Mace().infer(
            _manual({"t1": [("w1", "a"), ("w2", "b"), ("w3", "a")]})
        )
        # spam_distributions is a declared InferenceResult field now, so no
        # type: ignore escape hatch is needed to read it.
        for dist in result.spam_distributions.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_spam_distribution_covers_every_worker(self):
        evidence = _manual(
            {"t1": [("w1", "a"), ("w2", "b")], "t2": [("w2", "a"), ("w3", "a")]}
        )
        result = Mace().infer(evidence)
        assert set(result.spam_distributions) == {"w1", "w2", "w3"}

    def test_biased_spammer_detected(self):
        """A worker who always answers 'a' gets low competence and a spam
        distribution concentrated on 'a'."""
        votes = {}
        labels = ("a", "b", "c")
        rng = np.random.default_rng(0)
        for i in range(60):
            truth = labels[i % 3]
            votes[f"t{i}"] = [
                ("good1", truth),
                ("good2", truth),
                ("good3", truth if rng.random() < 0.9 else "b"),
                ("lazy", "a"),
            ]
        result = Mace().infer(_manual(votes))
        assert result.worker_quality["lazy"] < 0.45
        spam = result.spam_distributions["lazy"]
        assert spam["a"] > 0.8
