"""Tests for UPDATE / DELETE statements (including crowd predicates)."""

import pytest

from repro.data.schema import CNULL
from repro.errors import ExecutionError, KeyViolationError, ParseError
from repro.lang.executor import CrowdOracle
from repro.lang.interpreter import CrowdSQLSession
from repro.lang.parser import parse_one
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


@pytest.fixture
def session():
    s = CrowdSQLSession()
    s.execute(
        "CREATE TABLE inv (sku STRING NOT NULL, price FLOAT, stock INTEGER,"
        " PRIMARY KEY (sku));"
        "INSERT INTO inv VALUES ('a', 10.0, 5), ('b', 20.0, 0), ('c', 30.0, 2)"
    )
    return s


class TestParsing:
    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = 'x' WHERE c > 2")
        assert stmt.assignments == (("a", 1), ("b", "x"))
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse_one("UPDATE t SET a = 1").where is None

    def test_update_requires_equals(self):
        with pytest.raises(ParseError):
            parse_one("UPDATE t SET a > 1")

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a IS NULL")
        assert stmt.table == "t"

    def test_delete_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_one("DELETE FROM t WHERE a = 1 LIMIT 1")

    def test_update_cnull_literal(self):
        stmt = parse_one("UPDATE t SET v = CNULL")
        assert stmt.assignments[0][1] is CNULL


class TestUpdate:
    def test_updates_matching_rows(self, session):
        result = session.execute("UPDATE inv SET price = 15.0 WHERE stock > 1")[0]
        assert result.kind == "updated" and result.row_count == 2
        prices = {r["sku"]: r["price"] for r in session.query("SELECT * FROM inv")}
        assert prices == {"a": 15.0, "b": 20.0, "c": 15.0}

    def test_update_all_rows(self, session):
        result = session.execute("UPDATE inv SET stock = 9")[0]
        assert result.row_count == 3
        assert all(r["stock"] == 9 for r in session.query("SELECT * FROM inv"))

    def test_update_unknown_column(self, session):
        with pytest.raises(Exception):
            session.execute("UPDATE inv SET ghost = 1")

    def test_update_pk_rejected(self, session):
        with pytest.raises(KeyViolationError):
            session.execute("UPDATE inv SET sku = 'z'")

    def test_update_type_checked(self, session):
        with pytest.raises(Exception):
            session.execute("UPDATE inv SET stock = 'many'")

    def test_update_with_null(self, session):
        session.execute("UPDATE inv SET price = NULL WHERE sku = 'a'")
        rows = session.query("SELECT price FROM inv WHERE sku = 'a'").rows
        assert rows[0]["price"] is None

    def test_update_crowd_column_to_cnull(self):
        s = CrowdSQLSession()
        s.execute(
            "CREATE TABLE t (k STRING, v STRING CROWD);"
            "INSERT INTO t VALUES ('x', 'filled')"
        )
        s.execute("UPDATE t SET v = CNULL")
        assert s.database.table("t").cnull_cells() == [(1, "v")]


class TestDelete:
    def test_deletes_matching(self, session):
        result = session.execute("DELETE FROM inv WHERE stock = 0")[0]
        assert result.kind == "deleted" and result.row_count == 1
        assert len(session.query("SELECT * FROM inv")) == 2

    def test_delete_all(self, session):
        result = session.execute("DELETE FROM inv")[0]
        assert result.row_count == 3
        assert len(session.query("SELECT * FROM inv")) == 0

    def test_delete_none_matching(self, session):
        result = session.execute("DELETE FROM inv WHERE stock > 99")[0]
        assert result.row_count == 0

    def test_pk_reusable_after_delete(self, session):
        session.execute("DELETE FROM inv WHERE sku = 'a'")
        session.execute("INSERT INTO inv VALUES ('a', 1.0, 1)")
        assert len(session.query("SELECT * FROM inv")) == 3


class TestCrowdDml:
    def _session(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, 0.97, seed=1), seed=2)
        oracle = CrowdOracle(filter_fn=lambda v, q: str(v).startswith("a"))
        s = CrowdSQLSession(platform=platform, oracle=oracle, redundancy=3)
        s.execute(
            "CREATE TABLE items (label STRING, flag INTEGER);"
            "INSERT INTO items VALUES ('apple', 0), ('avocado', 0), ('pear', 0)"
        )
        return s

    def test_crowd_predicate_in_update(self):
        s = self._session()
        result = s.execute(
            "UPDATE items SET flag = 1 WHERE CROWDFILTER(label, 'starts with a?')"
        )[0]
        assert result.row_count == 2
        flagged = {r["label"] for r in s.query("SELECT label FROM items WHERE flag = 1")}
        assert flagged == {"apple", "avocado"}

    def test_crowd_predicate_in_delete(self):
        s = self._session()
        result = s.execute(
            "DELETE FROM items WHERE CROWDFILTER(label, 'starts with a?')"
        )[0]
        assert result.row_count == 2
        remaining = [r["label"] for r in s.query("SELECT label FROM items")]
        assert remaining == ["pear"]

    def test_crowd_dml_needs_platform(self, session):
        with pytest.raises(ExecutionError, match="no platform"):
            session.execute("DELETE FROM inv WHERE CROWDFILTER(sku, 'q?')")


class TestExplainStatement:
    def test_explain_returns_plan_rows(self, session):
        result = session.query("EXPLAIN SELECT sku FROM inv WHERE price > 5")
        lines = result.column("plan")
        assert any("Scan(inv)" in line for line in lines)
        assert any("estimated crowd cost" in line for line in lines)

    def test_explain_does_not_execute(self, session):
        # EXPLAIN of a crowd query must not spend anything (no platform needed).
        result = session.query(
            "EXPLAIN SELECT sku FROM inv WHERE CROWDFILTER(sku, 'q?')"
        )
        assert any("CrowdFilter" in line for line in result.column("plan"))

    def test_explain_non_select_rejected(self, session):
        with pytest.raises(ParseError, match="SELECT statements only"):
            session.execute("EXPLAIN DELETE FROM inv")
