"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import DEMO_SCRIPT, build_session, main, render, repl, run_script
from repro.lang.interpreter import StatementResult


@pytest.fixture
def session():
    return build_session(seed=1, redundancy=5, pool_size=15)


class TestRender:
    def test_statement_result(self):
        text = render(StatementResult(kind="created", table="t"))
        assert text == "-- created table t"

    def test_insert_counts_rows(self):
        text = render(StatementResult(kind="inserted", table="t", row_count=3))
        assert "3 row(s)" in text

    def test_query_result_table(self, session):
        session.execute("CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x')")
        result = session.query("SELECT a FROM t")
        text = render(result)
        assert "a" in text and "x" in text and "1 row(s)" in text

    def test_crowd_accounting_line(self, session):
        session.execute(
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x'), ('x y')"
        )
        result = session.query(
            "SELECT a FROM t CROWDORDER BY a LIMIT 1"
        ) if False else None
        # CROWDORDER over strings needs an oracle; use CROWDEQUAL instead.
        session.execute(
            "CREATE TABLE u (b STRING); INSERT INTO u VALUES ('x')"
        )
        result = session.query(
            "SELECT a, b FROM t CROWDJOIN u ON CROWDEQUAL(a, b)"
        )
        text = render(result)
        assert "-- crowd:" in text


class TestRunScript:
    def test_happy_path(self, session):
        out = io.StringIO()
        code = run_script(
            session,
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('v'); SELECT * FROM t",
            out=out,
        )
        assert code == 0
        assert "created table t" in out.getvalue()
        assert "v" in out.getvalue()

    def test_parse_error_reported(self, session):
        out = io.StringIO()
        code = run_script(session, "SELEKT * FROM t", out=out)
        assert code == 1
        assert "error:" in out.getvalue()

    def test_unknown_table_reported(self, session):
        out = io.StringIO()
        code = run_script(session, "SELECT * FROM ghosts", out=out)
        assert code == 1
        assert "ghosts" in out.getvalue()


class TestRepl:
    def test_executes_statements_and_quits(self, session):
        stdin = io.StringIO(
            "CREATE TABLE t (a STRING);\nINSERT INTO t VALUES ('q');\n"
            "SELECT COUNT(*) FROM t;\n\\q\n"
        )
        out = io.StringIO()
        code = repl(session, stdin=stdin, out=out)
        assert code == 0
        assert "count" in out.getvalue()

    def test_multiline_statement(self, session):
        stdin = io.StringIO("CREATE TABLE t\n(a STRING);\nexit\n")
        out = io.StringIO()
        repl(session, stdin=stdin, out=out)
        assert "t" in session.database

    def test_trailing_statement_without_semicolon(self, session):
        stdin = io.StringIO("CREATE TABLE t (a STRING)")
        out = io.StringIO()
        repl(session, stdin=stdin, out=out)
        assert "t" in session.database


class TestMain:
    def test_demo_exits_zero(self, capsys):
        assert main(["--seed", "3", "demo"]) == 0
        captured = capsys.readouterr()
        assert "The Iron Giant" in captured.out

    def test_run_script_file(self, tmp_path, capsys):
        script = tmp_path / "s.sql"
        script.write_text("CREATE TABLE t (a STRING); SELECT COUNT(*) FROM t;")
        assert main(["run", str(script)]) == 0
        assert "count" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/path.sql"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_demo_is_deterministic(self, capsys):
        main(["--seed", "9", "demo"])
        first = capsys.readouterr().out
        main(["--seed", "9", "demo"])
        second = capsys.readouterr().out
        assert first == second

    def test_demo_script_has_crowd_features(self):
        assert "CROWDJOIN" in DEMO_SCRIPT
        assert "CROWDORDER" in DEMO_SCRIPT


class TestBatchFlags:
    def test_build_session_attaches_scheduler(self):
        session = build_session(seed=1, redundancy=3, pool_size=10, max_parallel=4)
        assert session.platform.scheduler is not None
        assert session.platform.parallel_batching

    def test_batch_summary_printed_after_crowd_work(self, capsys):
        assert main(["--seed", "3", "--max-parallel", "4", "demo"]) == 0
        assert "-- batch runtime:" in capsys.readouterr().out

    def test_invalid_batch_flags_report_cleanly(self, capsys):
        assert main(["--max-parallel", "0", "demo"]) == 2
        assert "error: max_parallel must be >= 1" in capsys.readouterr().err

    def test_parallel_demo_is_deterministic(self, capsys):
        main(["--seed", "9", "--max-parallel", "8", "--batch-size", "16", "demo"])
        first = capsys.readouterr().out
        main(["--seed", "9", "--max-parallel", "8", "--batch-size", "16", "demo"])
        second = capsys.readouterr().out
        assert first == second


class TestCacheFlags:
    def test_build_session_cache_default_and_opt_out(self):
        assert build_session(seed=1, redundancy=3, pool_size=10).platform.cache is not None
        session = build_session(seed=1, redundancy=3, pool_size=10, cache_enabled=False)
        assert session.platform.cache is None

    def test_cache_summary_printed_after_crowd_work(self, capsys):
        assert main(["--seed", "3", "demo"]) == 0
        assert "-- answer cache:" in capsys.readouterr().out

    def test_no_cache_suppresses_summary_line(self, capsys):
        assert main(["--seed", "3", "--no-cache", "demo"]) == 0
        assert "-- answer cache:" not in capsys.readouterr().out

    def test_cached_rerun_publishes_nothing(self, tmp_path, capsys):
        spill = tmp_path / "answers.jsonl"
        assert main(["--seed", "3", "--cache", str(spill), "demo"]) == 0
        first = capsys.readouterr().out
        assert spill.read_text(encoding="utf-8").strip()

        assert main(["--seed", "3", "--cache", str(spill), "demo"]) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second
        assert ", 0 tasks published" in second
        # Replayed answers produce the same query results as the live run.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("--")
        ]
        assert strip(first) == strip(second)

    def test_cache_conflicts_with_no_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["--cache", "x.jsonl", "--no-cache", "demo"])
        assert "not allowed with" in capsys.readouterr().err

    def test_unwritable_cache_path_reports_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file.txt"
        blocker.write_text("not a directory")
        bad = blocker / "answers.jsonl"
        assert main(["--cache", str(bad), "demo"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_empty_cache_path_reports_cleanly(self, capsys):
        assert main(["--cache", "", "demo"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_demo_with_cache_matches_no_cache_output(self, capsys):
        # Cold cache on a duplicate-light workload: bit-identical rows and
        # crowd accounting to the cache-off run at the same seed.
        main(["--seed", "9", "--no-cache", "demo"])
        plain = capsys.readouterr().out
        main(["--seed", "9", "demo"])
        cached = capsys.readouterr().out
        drop = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("-- answer cache")
        ]
        assert drop(plain) == drop(cached)


class TestObservabilityFlags:
    def test_trace_writes_jsonl_with_run_root(self, tmp_path, capsys):
        from repro.obs import build_tree, load_spans

        trace = tmp_path / "run.jsonl"
        assert main(["--seed", "3", "--max-parallel", "4", "--trace", str(trace), "demo"]) == 0
        capsys.readouterr()
        spans = load_spans(str(trace))
        tree = build_tree(spans)
        assert [r["name"] for r in tree[None]] == ["run"]
        names = {s["name"] for s in spans}
        assert "operator.crowdjoin" in names
        assert "batch" in names

    def test_trace_report_on_cli_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["--seed", "3", "--max-parallel", "4", "--trace", str(trace), "demo"])
        capsys.readouterr()
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-operator breakdown" in out
        assert "batch runtime" in out

    def test_unwritable_trace_path_reports_cleanly(self, capsys):
        assert main(["--trace", "/nonexistent-dir/run.jsonl", "demo"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot open trace file")
        assert len(err.strip().splitlines()) == 1

    def test_metrics_flag_prints_registry(self, capsys):
        assert main(["--seed", "3", "--metrics", "demo"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "platform.answers_collected" in out

    def test_trace_report_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_empty_trace_path_reports_cleanly(self, capsys):
        assert main(["--trace", "", "demo"]) == 2
        assert "error: trace path must be a non-empty" in capsys.readouterr().err

    def test_trace_report_tolerates_truncated_trace(self, tmp_path, capsys):
        """A killed run's partial last line degrades to a warning, not a crash."""
        trace = tmp_path / "run.jsonl"
        main(["--seed", "3", "--trace", str(trace), "demo"])
        capsys.readouterr()
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write('{"span_id": 99, "name": "trunca')
        assert main(["trace-report", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "per-operator breakdown" in captured.out
        assert "skipping non-JSON trace line" in captured.err


class TestProfileFlags:
    def test_profile_flag_writes_profile_json(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        assert main(["--seed", "3", "--profile", str(profile), "demo"]) == 0
        capsys.readouterr()
        import json

        document = json.loads(profile.read_text())
        labels = [s["statement"] for s in document["statements"]]
        assert "SELECT imports" in labels
        assert document["totals"]["hits_published"] > 0

    def test_profile_report_renders_tables(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        main(["--seed", "3", "--profile", str(profile), "demo"])
        capsys.readouterr()
        assert main(["profile-report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "per-statement profile" in out
        assert "operators" in out
        assert "totals:" in out

    def test_profile_report_missing_file(self, capsys):
        assert main(["profile-report", "/nonexistent/profile.json"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_unwritable_profile_path_reports_cleanly(self, capsys):
        assert main(["--profile", "/nonexistent-dir/p.json", "demo"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot write profile")


class TestServeMetricsCommand:
    def test_serve_metrics_live_scrape(self, tmp_path):
        """End-to-end: loop the demo, scrape /metrics + /run mid-run, and
        check counters only move forward across scrapes."""
        import json
        import socket
        import threading
        import time
        import urllib.request

        from repro.obs.prom import validate_exposition

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        codes = {}
        thread = threading.Thread(
            target=lambda: codes.setdefault(
                "exit",
                main(
                    [
                        "--seed", "5",
                        "serve-metrics",
                        "--port", str(port),
                        "--iterations", "3",
                        "--hold", "3",
                    ]
                ),
            ),
            daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{port}"

        def fetch(path):
            with urllib.request.urlopen(base + path, timeout=5) as response:
                return response.read().decode("utf-8")

        deadline = time.monotonic() + 10
        while True:
            try:
                assert fetch("/healthz") == "ok\n"
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

        def published(body):
            for line in body.splitlines():
                if line.startswith("platform_hits_published_total"):
                    return float(line.split()[-1])
            return 0.0

        first = fetch("/metrics")
        assert validate_exposition(first) > 0
        status = json.loads(fetch("/run"))
        assert status["iterations"] == 3
        assert status["iteration"] >= 1
        # Wait for the loop to finish, then confirm monotonic advance.
        deadline = time.monotonic() + 20
        while json.loads(fetch("/run"))["iteration"] < 3:
            assert time.monotonic() < deadline
            time.sleep(0.1)
        final = fetch("/metrics")
        assert validate_exposition(final) > 0
        assert published(final) >= published(first)
        assert published(final) > 0
        thread.join(timeout=20)
        assert not thread.is_alive()
        assert codes["exit"] == 0

    def test_serve_metrics_missing_script(self, capsys):
        assert main(["serve-metrics", "/nonexistent/x.sql", "--port", "0"]) == 1
        assert "error: cannot read" in capsys.readouterr().err

    def test_serve_metrics_invalid_port_is_clean_error(self, capsys):
        assert main(["serve-metrics", "--port", "70000"]) == 2
        assert "error: metrics port" in capsys.readouterr().err


class TestRobustnessFlags:
    def make_failing_session(self, policy="fail"):
        """A session whose every assignment is abandoned (retries exhaust)."""
        from repro.lang.interpreter import CrowdSQLSession
        from repro.platform.batch import BatchConfig
        from repro.platform.platform import SimulatedPlatform
        from repro.quality.truth import CATEGORICAL_METHODS
        from repro.workers.pool import WorkerPool

        pool = WorkerPool.heterogeneous(
            8, accuracy_low=0.75, accuracy_high=0.95, seed=1
        )
        platform = SimulatedPlatform(
            pool,
            seed=2,
            batch=BatchConfig(
                abandon_rate=1.0, retry_limit=0, seed=3, failure_policy=policy
            ),
        )
        return CrowdSQLSession(
            platform=platform, redundancy=3, inference=CATEGORICAL_METHODS["mv"]()
        )

    CROWD_SQL = (
        "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x');"
        "CREATE TABLE u (b STRING); INSERT INTO u VALUES ('x');"
        "SELECT a, b FROM t CROWDJOIN u ON CROWDEQUAL(a, b);"
    )

    def test_retry_exhaustion_exits_three_with_one_line(self):
        out = io.StringIO()
        code = run_script(self.make_failing_session(), self.CROWD_SQL, out=out)
        assert code == 3
        error_lines = [
            line for line in out.getvalue().splitlines() if line.startswith("error:")
        ]
        assert len(error_lines) == 1
        assert "retry budget exhausted" in error_lines[0]
        assert "attempt(s) failed" in error_lines[0]

    def test_degrade_policy_completes_with_empty_join(self):
        out = io.StringIO()
        code = run_script(self.make_failing_session(policy="degrade"), self.CROWD_SQL, out=out)
        assert code == 0
        assert "0 row(s)" in out.getvalue()

    def test_fault_plan_flag_demo_survives(self, tmp_path, capsys):
        from repro.faults import random_plan

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(random_plan(4).to_json(), encoding="utf-8")
        code = main(
            [
                "--seed", "3", "--max-parallel", "4",
                "--fault-plan", str(plan_path),
                "--failure-policy", "degrade",
                "demo",
            ]
        )
        assert code == 0
        assert "The Iron Giant" in capsys.readouterr().out

    def test_missing_fault_plan_is_config_error(self, capsys):
        assert main(["--fault-plan", "/nonexistent/plan.json", "demo"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_fault_plan_is_config_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"seed": "not-an-int"}', encoding="utf-8")
        assert main(["--fault-plan", str(bad), "demo"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_then_resume_skips_statements(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(["--seed", "3", "--checkpoint", str(ck), "demo"]) == 0
        capsys.readouterr()
        assert (ck / "checkpoint.json").exists()
        assert (ck / "db").exists()
        assert main(["--seed", "3", "--resume", str(ck), "demo"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "skipping 8 statement(s)" in out

    def test_resumed_database_is_intact(self, tmp_path):
        ck = tmp_path / "ck"
        session = build_session(seed=2, redundancy=3, pool_size=10)
        sql = (
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('kept');"
        )
        assert run_script(session, sql, out=io.StringIO(), checkpoint_dir=str(ck)) == 0
        fresh = build_session(seed=2, redundancy=3, pool_size=10)
        out = io.StringIO()
        code = run_script(
            fresh, sql + " SELECT * FROM t;", out=out, resume_dir=str(ck)
        )
        assert code == 0
        assert "kept" in out.getvalue()
        assert "skipping 2 statement(s)" in out.getvalue()


class TestChaosCommand:
    def test_chaos_command_survives(self, capsys):
        assert main(["chaos", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "seed 0:" in out
        assert "all 1 seed(s) survived" in out

    def test_chaos_command_with_resume_check(self, capsys):
        assert main(["--seed", "5", "chaos", "--seeds", "1", "--check-resume"]) == 0
        out = capsys.readouterr().out
        assert "kill-and-resume bit-identical" in out
