"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import DEMO_SCRIPT, build_session, main, render, repl, run_script
from repro.lang.interpreter import StatementResult


@pytest.fixture
def session():
    return build_session(seed=1, redundancy=5, pool_size=15)


class TestRender:
    def test_statement_result(self):
        text = render(StatementResult(kind="created", table="t"))
        assert text == "-- created table t"

    def test_insert_counts_rows(self):
        text = render(StatementResult(kind="inserted", table="t", row_count=3))
        assert "3 row(s)" in text

    def test_query_result_table(self, session):
        session.execute("CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x')")
        result = session.query("SELECT a FROM t")
        text = render(result)
        assert "a" in text and "x" in text and "1 row(s)" in text

    def test_crowd_accounting_line(self, session):
        session.execute(
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x'), ('x y')"
        )
        result = session.query(
            "SELECT a FROM t CROWDORDER BY a LIMIT 1"
        ) if False else None
        # CROWDORDER over strings needs an oracle; use CROWDEQUAL instead.
        session.execute(
            "CREATE TABLE u (b STRING); INSERT INTO u VALUES ('x')"
        )
        result = session.query(
            "SELECT a, b FROM t CROWDJOIN u ON CROWDEQUAL(a, b)"
        )
        text = render(result)
        assert "-- crowd:" in text


class TestRunScript:
    def test_happy_path(self, session):
        out = io.StringIO()
        code = run_script(
            session,
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('v'); SELECT * FROM t",
            out=out,
        )
        assert code == 0
        assert "created table t" in out.getvalue()
        assert "v" in out.getvalue()

    def test_parse_error_reported(self, session):
        out = io.StringIO()
        code = run_script(session, "SELEKT * FROM t", out=out)
        assert code == 1
        assert "error:" in out.getvalue()

    def test_unknown_table_reported(self, session):
        out = io.StringIO()
        code = run_script(session, "SELECT * FROM ghosts", out=out)
        assert code == 1
        assert "ghosts" in out.getvalue()


class TestRepl:
    def test_executes_statements_and_quits(self, session):
        stdin = io.StringIO(
            "CREATE TABLE t (a STRING);\nINSERT INTO t VALUES ('q');\n"
            "SELECT COUNT(*) FROM t;\n\\q\n"
        )
        out = io.StringIO()
        code = repl(session, stdin=stdin, out=out)
        assert code == 0
        assert "count" in out.getvalue()

    def test_multiline_statement(self, session):
        stdin = io.StringIO("CREATE TABLE t\n(a STRING);\nexit\n")
        out = io.StringIO()
        repl(session, stdin=stdin, out=out)
        assert "t" in session.database

    def test_trailing_statement_without_semicolon(self, session):
        stdin = io.StringIO("CREATE TABLE t (a STRING)")
        out = io.StringIO()
        repl(session, stdin=stdin, out=out)
        assert "t" in session.database


class TestMain:
    def test_demo_exits_zero(self, capsys):
        assert main(["--seed", "3", "demo"]) == 0
        captured = capsys.readouterr()
        assert "The Iron Giant" in captured.out

    def test_run_script_file(self, tmp_path, capsys):
        script = tmp_path / "s.sql"
        script.write_text("CREATE TABLE t (a STRING); SELECT COUNT(*) FROM t;")
        assert main(["run", str(script)]) == 0
        assert "count" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/path.sql"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_demo_is_deterministic(self, capsys):
        main(["--seed", "9", "demo"])
        first = capsys.readouterr().out
        main(["--seed", "9", "demo"])
        second = capsys.readouterr().out
        assert first == second

    def test_demo_script_has_crowd_features(self):
        assert "CROWDJOIN" in DEMO_SCRIPT
        assert "CROWDORDER" in DEMO_SCRIPT


class TestBatchFlags:
    def test_build_session_attaches_scheduler(self):
        session = build_session(seed=1, redundancy=3, pool_size=10, max_parallel=4)
        assert session.platform.scheduler is not None
        assert session.platform.parallel_batching

    def test_batch_summary_printed_after_crowd_work(self, capsys):
        assert main(["--seed", "3", "--max-parallel", "4", "demo"]) == 0
        assert "-- batch runtime:" in capsys.readouterr().out

    def test_invalid_batch_flags_report_cleanly(self, capsys):
        assert main(["--max-parallel", "0", "demo"]) == 2
        assert "error: max_parallel must be >= 1" in capsys.readouterr().err

    def test_parallel_demo_is_deterministic(self, capsys):
        main(["--seed", "9", "--max-parallel", "8", "--batch-size", "16", "demo"])
        first = capsys.readouterr().out
        main(["--seed", "9", "--max-parallel", "8", "--batch-size", "16", "demo"])
        second = capsys.readouterr().out
        assert first == second


class TestObservabilityFlags:
    def test_trace_writes_jsonl_with_run_root(self, tmp_path, capsys):
        from repro.obs import build_tree, load_spans

        trace = tmp_path / "run.jsonl"
        assert main(["--seed", "3", "--max-parallel", "4", "--trace", str(trace), "demo"]) == 0
        capsys.readouterr()
        spans = load_spans(str(trace))
        tree = build_tree(spans)
        assert [r["name"] for r in tree[None]] == ["run"]
        names = {s["name"] for s in spans}
        assert "operator.crowdjoin" in names
        assert "batch" in names

    def test_trace_report_on_cli_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["--seed", "3", "--max-parallel", "4", "--trace", str(trace), "demo"])
        capsys.readouterr()
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-operator breakdown" in out
        assert "batch runtime" in out

    def test_unwritable_trace_path_reports_cleanly(self, capsys):
        assert main(["--trace", "/nonexistent-dir/run.jsonl", "demo"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot open trace file")
        assert len(err.strip().splitlines()) == 1

    def test_metrics_flag_prints_registry(self, capsys):
        assert main(["--seed", "3", "--metrics", "demo"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "platform.answers_collected" in out

    def test_trace_report_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_empty_trace_path_reports_cleanly(self, capsys):
        assert main(["--trace", "", "demo"]) == 2
        assert "error: trace path must be a non-empty" in capsys.readouterr().err
