"""Shared fixtures for the crowddm test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import SchemaBuilder
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.workers.pool import WorkerPool


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def uniform_pool():
    return WorkerPool.uniform(12, accuracy=0.9, seed=11)


@pytest.fixture
def hetero_pool():
    return WorkerPool.heterogeneous(20, seed=22)


@pytest.fixture
def platform(uniform_pool):
    return SimulatedPlatform(uniform_pool, seed=33)


@pytest.fixture
def hetero_platform(hetero_pool):
    return SimulatedPlatform(hetero_pool, seed=44)


@pytest.fixture
def people_schema():
    return (
        SchemaBuilder()
        .string("name", nullable=False)
        .integer("age")
        .crowd_string("hometown")
        .key("name")
        .build()
    )


def make_choice_tasks(n, labels=("a", "b", "c"), seed=0, difficulty=0.0):
    """n single-choice tasks with seeded random truths."""
    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(n):
        truth = labels[int(rng.integers(len(labels)))]
        tasks.append(
            Task(
                TaskType.SINGLE_CHOICE,
                question=f"q{i}",
                options=tuple(labels),
                truth=truth,
                difficulty=difficulty,
            )
        )
    return tasks


@pytest.fixture
def choice_tasks():
    return make_choice_tasks(60, seed=5)
