"""Unit tests for repro.data.expressions (3-valued + crowd-unknown logic)."""

import pytest

from repro.data.expressions import (
    CROWD_UNKNOWN,
    And,
    Arithmetic,
    Comparison,
    CrowdPredicate,
    InList,
    IsCNull,
    IsNull,
    Not,
    Or,
    col,
    conjoin,
    contains_crowd_predicate,
    is_crowd_unknown,
    lit,
    split_conjuncts,
)
from repro.data.schema import CNULL
from repro.errors import ExpressionError


ROW = {"a": 3, "b": 7, "s": "hi", "n": None, "c": CNULL}


class TestLiteralsAndColumns:
    def test_literal(self):
        assert lit(5).evaluate(ROW) == 5

    def test_column(self):
        assert col("a").evaluate(ROW) == 3

    def test_column_missing(self):
        with pytest.raises(ExpressionError):
            col("zzz").evaluate(ROW)

    def test_columns_tracking(self):
        expr = (col("a") > lit(1)) & (col("b") < col("a"))
        assert expr.columns() == {"a", "b"}


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)],
    )
    def test_operators(self, op, expected):
        assert Comparison(op, col("a"), col("b")).evaluate(ROW) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("a"), col("b"))

    def test_null_propagates(self):
        assert Comparison("=", col("n"), lit(1)).evaluate(ROW) is None

    def test_cnull_yields_crowd_unknown(self):
        result = Comparison("=", col("c"), lit("x")).evaluate(ROW)
        assert is_crowd_unknown(result)

    def test_incomparable_types_raise(self):
        with pytest.raises(ExpressionError):
            Comparison("<", col("a"), col("s")).evaluate(ROW)

    def test_builder_sugar(self):
        assert (col("a") == lit(3)).evaluate(ROW) is True


class TestKleeneLogic:
    def test_and_true_true(self):
        assert And(lit(True), lit(True)).evaluate(ROW) is True

    def test_and_short_circuits_false(self):
        # Right side would raise; False on the left must short-circuit.
        assert And(lit(False), col("zzz") == lit(1)).evaluate(ROW) is False

    def test_and_false_beats_crowd_unknown(self):
        expr = And(Comparison("=", col("c"), lit("x")), lit(False))
        assert expr.evaluate(ROW) is False

    def test_and_true_and_crowd_unknown(self):
        expr = And(lit(True), Comparison("=", col("c"), lit("x")))
        assert is_crowd_unknown(expr.evaluate(ROW))

    def test_and_null(self):
        assert And(lit(True), Comparison("=", col("n"), lit(1))).evaluate(ROW) is None

    def test_or_true_short_circuits(self):
        assert Or(lit(True), col("zzz") == lit(1)).evaluate(ROW) is True

    def test_or_crowd_unknown(self):
        expr = Or(lit(False), Comparison("=", col("c"), lit("x")))
        assert is_crowd_unknown(expr.evaluate(ROW))

    def test_not_true(self):
        assert Not(lit(True)).evaluate(ROW) is False

    def test_not_null(self):
        assert Not(Comparison("=", col("n"), lit(1))).evaluate(ROW) is None

    def test_not_crowd_unknown(self):
        expr = Not(Comparison("=", col("c"), lit("x")))
        assert is_crowd_unknown(expr.evaluate(ROW))


class TestNullPredicates:
    def test_is_null_true(self):
        assert IsNull(col("n")).evaluate(ROW) is True

    def test_is_null_false_for_value(self):
        assert IsNull(col("a")).evaluate(ROW) is False

    def test_cnull_is_not_null(self):
        assert IsNull(col("c")).evaluate(ROW) is False

    def test_is_not_null(self):
        assert IsNull(col("a"), negated=True).evaluate(ROW) is True

    def test_is_cnull_true(self):
        assert IsCNull(col("c")).evaluate(ROW) is True

    def test_is_cnull_false_for_null(self):
        assert IsCNull(col("n")).evaluate(ROW) is False

    def test_is_not_cnull(self):
        assert IsCNull(col("a"), negated=True).evaluate(ROW) is True


class TestInList:
    def test_hit(self):
        assert InList(col("a"), (1, 3, 5)).evaluate(ROW) is True

    def test_miss(self):
        assert InList(col("a"), (2, 4)).evaluate(ROW) is False

    def test_negated(self):
        assert InList(col("a"), (2, 4), negated=True).evaluate(ROW) is True

    def test_null_propagates(self):
        assert InList(col("n"), (1,)).evaluate(ROW) is None

    def test_cnull_crowd_unknown(self):
        assert is_crowd_unknown(InList(col("c"), ("x",)).evaluate(ROW))


class TestArithmetic:
    def test_add(self):
        assert Arithmetic("+", col("a"), col("b")).evaluate(ROW) == 10

    def test_division_by_zero_is_null(self):
        assert Arithmetic("/", col("a"), lit(0)).evaluate(ROW) is None

    def test_null_propagates(self):
        assert Arithmetic("*", col("n"), lit(2)).evaluate(ROW) is None

    def test_cnull_propagates(self):
        assert is_crowd_unknown(Arithmetic("+", col("c"), lit(1)).evaluate(ROW))

    def test_type_error_raises(self):
        with pytest.raises(ExpressionError):
            Arithmetic("-", col("s"), lit(1)).evaluate(ROW)


class TestCrowdPredicate:
    def test_always_crowd_unknown(self):
        pred = CrowdPredicate("equal", (col("a"), col("b")))
        assert is_crowd_unknown(pred.evaluate(ROW))

    def test_operand_values(self):
        pred = CrowdPredicate("equal", (col("a"), lit(9)))
        assert pred.operand_values(ROW) == (3, 9)

    def test_contains_crowd_predicate_positive(self):
        expr = And(col("a") > lit(0), CrowdPredicate("filter", (col("s"),), "q"))
        assert contains_crowd_predicate(expr)

    def test_contains_crowd_predicate_negative(self):
        assert not contains_crowd_predicate(col("a") > lit(0))

    def test_columns(self):
        pred = CrowdPredicate("equal", (col("a"), col("s")))
        assert pred.columns() == {"a", "s"}


class TestConjunctHelpers:
    def test_split(self):
        expr = And(And(lit(1) == lit(1), lit(2) == lit(2)), lit(3) == lit(3))
        assert len(split_conjuncts(expr)) == 3

    def test_split_non_and(self):
        expr = Or(lit(True), lit(False))
        assert split_conjuncts(expr) == [expr]

    def test_conjoin_roundtrip(self):
        parts = [col("a") > lit(0), col("b") > lit(0)]
        rebuilt = conjoin(parts)
        assert rebuilt.evaluate(ROW) is True
        assert split_conjuncts(rebuilt) == parts

    def test_conjoin_empty_raises(self):
        with pytest.raises(ExpressionError):
            conjoin([])


def test_crowd_unknown_is_falsy():
    assert not CROWD_UNKNOWN
    assert repr(CROWD_UNKNOWN) == "CROWD_UNKNOWN"
