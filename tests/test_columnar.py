"""Columnar substrate tests.

Covers the invariants the columnar rebuild must preserve:

- ``Table.copy()`` keeps rowids and the next-rowid counter (regression for
  the bug where clones renumbered rows, invalidating checkpoints/caches);
- 100k-row CSV and on-disk persistence round-trips with CNULL, NULL,
  unicode, and the documented empty-string→NULL codec lossiness;
- property-style equivalence between the row-at-a-time reference scan and
  the vectorized ``filter_rowids`` path over randomized expression trees;
- the CrowdSQL executor's vectorized fast paths (machine filter, crowd
  pre-pass, hash join) against the row-path fallback, comparing result
  rows, execution stats, and platform spend bit-for-bit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.csvio import table_from_csv_string, table_to_csv_string
from repro.data.database import Database
from repro.data.expressions import (
    And,
    ColumnRef,
    Comparison,
    CrowdPredicate,
    InList,
    IsCNull,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    col,
    lit,
)
from repro.data.persistence import load_database, save_database
from repro.data.schema import CNULL, SchemaBuilder, is_cnull
from repro.data.table import Table, make_table
from repro.lang.executor import CrowdOracle, Executor
from repro.lang.planner import (
    CrowdFilterNode,
    FilterNode,
    JoinNode,
    LogicalPlan,
    ScanNode,
)
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


# --------------------------------------------------------------------- #
# Table.copy() rowid preservation (regression)
# --------------------------------------------------------------------- #


@pytest.fixture
def gapped(people_schema):
    """A table whose rowids are non-contiguous (2 was deleted)."""
    table = make_table(
        "people",
        people_schema,
        rows=[
            {"name": "ann", "age": 30},
            {"name": "bob", "age": 25},
            {"name": "carol", "age": 41, "hometown": "rome"},
        ],
    )
    table.delete(2)
    return table


class TestCopyPreservesRowids:
    def test_rowids_survive_copy(self, gapped):
        clone = gapped.copy()
        assert [r.rowid for r in clone] == [1, 3]
        assert [r.rowid for r in gapped] == [1, 3]

    def test_rows_addressable_by_original_rowid(self, gapped):
        clone = gapped.copy()
        assert clone.row(3)["name"] == "carol"
        with pytest.raises(KeyError):
            clone.row(2)

    def test_next_rowid_counter_survives(self, gapped):
        clone = gapped.copy()
        row = clone.insert({"name": "dave"})
        assert row.rowid == 4  # not 3 — deleted rowids are never reused

    def test_copy_is_independent(self, gapped):
        clone = gapped.copy()
        clone.insert({"name": "dave"})
        clone.delete(1)
        assert len(gapped) == 2
        assert gapped.row(1)["name"] == "ann"

    def test_pk_index_survives(self, gapped):
        clone = gapped.copy()
        assert clone.lookup(name="carol").rowid == 3
        assert clone.lookup(name="bob") is None

    def test_cnull_accounting_survives(self, gapped):
        clone = gapped.copy()
        assert clone.cnull_count() == gapped.cnull_count() == 1
        assert clone.cnull_cells() == gapped.cnull_cells()


# --------------------------------------------------------------------- #
# 100k-row round-trips through the columnar codecs
# --------------------------------------------------------------------- #

N_LARGE = 100_000


def _large_table(name="big"):
    schema = (
        SchemaBuilder()
        .integer("uid", nullable=False)
        .float("score")
        .string("city")
        .crowd_string("label")
        .boolean("active")
        .key("uid")
        .build()
    )
    rng = random.Random(99)
    cities = ("oslo", "rome", "ünïted-çity", "", "east\nwick", 'quo"te', None)
    labels = (CNULL, None, "ok", "späm")
    table = Table(name, schema)
    table.insert_columns(
        {
            "uid": list(range(N_LARGE)),
            "score": [
                None if i % 17 == 0 else rng.uniform(-1e6, 1e6) for i in range(N_LARGE)
            ],
            "city": [cities[i % len(cities)] for i in range(N_LARGE)],
            "label": [labels[i % len(labels)] for i in range(N_LARGE)],
            "active": [None if i % 23 == 0 else i % 2 == 0 for i in range(N_LARGE)],
        }
    )
    return table


def _expect_csv(value):
    """What a cell should be after one trip through the CSV codec."""
    return None if value == "" else value


def _assert_tables_equal(loaded, original, through_csv):
    """Column-level comparison (mask-exact; optional empty→NULL transform)."""
    assert len(loaded) == len(original)
    for name in original.schema.column_names:
        src = original.column_vector(name).to_list()
        if through_csv:
            src = [_expect_csv(v) for v in src]
        got = loaded.column_vector(name).to_list()
        assert len(got) == len(src)
        for index, (g, s) in enumerate(zip(got, src, strict=True)):
            if is_cnull(s):
                assert is_cnull(g), (name, index)
            else:
                assert g == s, (name, index, g, s)


class TestLargeRoundTrips:
    def test_csv_round_trip_100k(self):
        table = _large_table()
        text = table_to_csv_string(table)
        loaded = table_from_csv_string(text, "big", table.schema)
        _assert_tables_equal(loaded, table, through_csv=True)

    def test_csv_empty_string_becomes_null(self):
        """The codec's documented lossiness: '' externalizes as NULL."""
        table = _large_table()
        empties = sum(1 for v in table.column_vector("city").to_list() if v == "")
        assert empties > 0
        loaded = table_from_csv_string(table_to_csv_string(table), "big", table.schema)
        assert sum(1 for v in loaded.column_vector("city").to_list() if v == "") == 0

    def test_persistence_round_trip_100k(self, tmp_path):
        database = Database("huge")
        table = _large_table()
        database.create_table("big", table.schema, rows=[])
        database.table("big").insert_columns(
            {name: table.column_vector(name).to_list() for name in table.schema.column_names}
        )
        save_database(database, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        _assert_tables_equal(loaded.table("big"), table, through_csv=True)

    def test_popcounts_match_cell_walk(self):
        table = _large_table()
        walked = sum(1 for row in table if row.has_cnull())
        cells = len(table.cnull_cells())
        assert table.cnull_count() == cells
        assert cells == sum(
            1 for row in table for c in table.schema.column_names if is_cnull(row[c])
        )
        assert walked == N_LARGE // 4  # one CNULL label every 4 rows
        crowd_cols = len(table.schema.crowd_columns)
        expected = 1.0 - cells / (len(table) * crowd_cols)
        assert table.completeness() == pytest.approx(expected)


# --------------------------------------------------------------------- #
# Property: vectorized scan ≡ row-at-a-time reference
# --------------------------------------------------------------------- #

_ROW = st.tuples(
    st.one_of(st.none(), st.integers(-5, 5)),  # a: INTEGER
    st.one_of(st.none(), st.sampled_from(["abc", "axc", "zebra", "", "ünï"])),  # s
    st.one_of(st.none(), st.just(CNULL), st.sampled_from(["rome", "oslo"])),  # cs
)
_ROWS = st.lists(_ROW, min_size=0, max_size=30)

_LEAF = st.one_of(
    st.builds(
        lambda op, t: Comparison(op, col("a"), lit(t)),
        st.sampled_from([">", "<", ">=", "<=", "=", "!="]),
        st.integers(-5, 5),
    ),
    st.builds(
        lambda op, v: Comparison(op, col("s"), lit(v)),
        st.sampled_from(["=", "!="]),
        st.sampled_from(["abc", "axc", ""]),
    ),
    st.builds(lambda p: Like(col("s"), p), st.sampled_from(["a%", "%c", "a_c", "%b%"])),
    st.builds(
        lambda vals: InList(col("a"), tuple(vals)),
        st.lists(st.one_of(st.none(), st.integers(-5, 5)), max_size=4),
    ),
    st.sampled_from(
        [IsNull(col("a")), IsNull(col("s")), IsNull(col("cs")), IsCNull(col("cs"))]
    ),
)
_EXPR = st.recursive(
    _LEAF,
    lambda child: st.one_of(
        st.builds(And, child, child),
        st.builds(Or, child, child),
        st.builds(Not, child),
    ),
    max_leaves=8,
)


def _scan_table(rows):
    schema = SchemaBuilder().integer("a").string("s").crowd_string("cs").build()
    return make_table(
        "t", schema, rows=[{"a": a, "s": s, "cs": cs} for a, s, cs in rows]
    )


@given(rows=_ROWS, expr=_EXPR)
@settings(max_examples=80, deadline=None)
def test_filter_rowids_matches_row_reference(rows, expr):
    table = _scan_table(rows)
    reference = [row.rowid for row in table if expr.evaluate(row) is True]
    assert table.filter_rowids(expr).tolist() == reference


@given(rows=_ROWS, expr=_EXPR)
@settings(max_examples=40, deadline=None)
def test_scan_with_expression_matches_reference(rows, expr):
    table = _scan_table(rows)
    reference = [row.rowid for row in table if expr.evaluate(row) is True]
    assert [row.rowid for row in table.scan(expr)] == reference


# --------------------------------------------------------------------- #
# Executor fast paths vs the row-path fallback
# --------------------------------------------------------------------- #


def _exec_db():
    rng = random.Random(7)
    database = Database("diff")
    s1 = (
        SchemaBuilder()
        .integer("a")
        .float("b")
        .string("s")
        .crowd_string("cs")
        .integer("n")
        .build()
    )
    rows = [
        {
            "a": rng.choice([None, rng.randint(-5, 5)]),
            "b": rng.choice([None, rng.uniform(-2, 2), float("nan"), 1.0]),
            "s": rng.choice([None, "abc", "axc", "zebra", "ünïcode", ""]),
            "cs": rng.choice([CNULL, "oslo", "rome", None]),
            "n": rng.randint(0, 40),
        }
        for _ in range(200)
    ]
    database.create_table("t1", s1, rows=rows)
    s2 = SchemaBuilder().integer("k").string("tag").build()
    database.create_table(
        "t2",
        s2,
        rows=[
            {
                "k": rng.choice([None, rng.randint(-5, 5)]),
                "tag": rng.choice(["x", "y", "abc", None]),
            }
            for _ in range(100)
        ],
    )
    return database


def _executor(database, fast):
    platform = SimulatedPlatform(WorkerPool.uniform(12, 0.9, seed=1), seed=2)
    oracle = CrowdOracle(filter_fn=lambda value, question: "o" in str(value))
    ex = Executor(database, platform, redundancy=3, oracle=oracle)
    if not fast:
        # Shadow the fast paths so every node takes the row-path fallback.
        ex._vectorized_filter = lambda node: None
        ex._columnar_join = lambda node: None
        ex._crowd_filter_prepass = lambda node, stats: None
    return ex, platform


_C = ColumnRef
_L = Literal
_CROWD = CrowdPredicate("filter", (_C("cs"),), question="o?")

_PLANS = {
    "machine-compare": FilterNode(ScanNode("t1"), Comparison(">", _C("a"), _L(0))),
    "stacked-filters": FilterNode(
        FilterNode(ScanNode("t1"), Comparison("<", _C("n"), _L(30))),
        Or(Comparison("=", _C("s"), _L("abc")), IsNull(_C("a"))),
    ),
    "like": FilterNode(ScanNode("t1"), Like(_C("s"), "a%c")),
    "inlist-not-cnull": FilterNode(
        ScanNode("t1"), And(InList(_C("a"), (1, 2, None)), Not(IsCNull(_C("cs"))))
    ),
    "float-eq": FilterNode(ScanNode("t1"), Comparison("=", _C("b"), _L(1.0))),
    "crowd-prefix": CrowdFilterNode(
        ScanNode("t1"), And(Comparison(">", _C("n"), _L(20)), _CROWD)
    ),
    "crowd-left-assoc": CrowdFilterNode(
        ScanNode("t1"),
        And(
            And(Comparison(">", _C("n"), _L(25)), Comparison("=", _C("s"), _L("abc"))),
            _CROWD,
        ),
    ),
    "crowd-right-nested": CrowdFilterNode(
        ScanNode("t1"),
        And(Comparison(">", _C("n"), _L(30)), And(IsNull(_C("a")), _CROWD)),
    ),
    "crowd-cu-prefix": CrowdFilterNode(
        ScanNode("t1"), And(Comparison("=", _C("cs"), _L("oslo")), _CROWD)
    ),
    "crowd-null-prefix": CrowdFilterNode(
        ScanNode("t1"), And(Comparison(">", _C("a"), _L(0)), _CROWD)
    ),
    "equi-join-int": JoinNode(
        ScanNode("t1"), ScanNode("t2"), Comparison("=", _C("a"), _C("k"))
    ),
    "equi-join-residual": JoinNode(
        FilterNode(ScanNode("t1"), Comparison(">", _C("n"), _L(10))),
        ScanNode("t2"),
        And(Comparison("=", _C("a"), _C("k")), Comparison("!=", _C("tag"), _L("y"))),
    ),
    "equi-join-string": JoinNode(
        ScanNode("t1"), ScanNode("t2"), Comparison("=", _C("s"), _C("tag"))
    ),
    "equi-join-composite": JoinNode(
        ScanNode("t1"),
        ScanNode("t2"),
        And(Comparison("=", _C("a"), _C("k")), Comparison("=", _C("s"), _C("tag"))),
    ),
    "non-equi-join": JoinNode(
        ScanNode("t1"), ScanNode("t2"), Comparison("<", _C("a"), _C("k"))
    ),
    "cross-dtype-join": JoinNode(
        ScanNode("t1"), ScanNode("t2"), Comparison("=", _C("b"), _C("k"))
    ),
}


def _canon(rows):
    return [tuple((k, repr(v)) for k, v in row.items()) for row in rows]


class TestExecutorFastPathsMatchFallback:
    """Fast and fallback executors on identical seeded state must agree on
    rows, execution stats, AND platform spend (same crowd purchases in the
    same order → same RNG stream → same simulated answers)."""

    @pytest.mark.parametrize("name", sorted(_PLANS))
    def test_differential(self, name):
        plan = LogicalPlan(_PLANS[name])
        ex_fast, platform_fast = _executor(_exec_db(), fast=True)
        ex_slow, platform_slow = _executor(_exec_db(), fast=False)
        result_fast = ex_fast.execute(plan)
        result_slow = ex_slow.execute(plan)
        assert _canon(result_fast.rows) == _canon(result_slow.rows)
        sf, ss = result_fast.stats, result_slow.stats
        assert (sf.crowd_questions, sf.crowd_answers, sf.crowd_cost) == (
            ss.crowd_questions,
            ss.crowd_answers,
            ss.crowd_cost,
        )
        assert platform_fast.stats.cost_spent == platform_slow.stats.cost_spent
