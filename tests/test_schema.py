"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import (
    CNULL,
    Column,
    ColumnType,
    Schema,
    SchemaBuilder,
    is_cnull,
)
from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError


class TestCNull:
    def test_singleton(self):
        from repro.data.schema import _CNullType

        assert _CNullType() is CNULL

    def test_falsy(self):
        assert not CNULL

    def test_repr(self):
        assert repr(CNULL) == "CNULL"

    def test_is_cnull(self):
        assert is_cnull(CNULL)
        assert not is_cnull(None)
        assert not is_cnull("CNULL")

    def test_distinct_from_none(self):
        assert CNULL is not None
        assert CNULL != None  # noqa: E711 — deliberate comparison

    def test_pickle_roundtrip_preserves_identity(self):
        import pickle

        assert pickle.loads(pickle.dumps(CNULL)) is CNULL


class TestColumnType:
    def test_string_accepts_str(self):
        assert ColumnType.STRING.validate("x") == "x"

    def test_string_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.STRING.validate(3)

    def test_integer_accepts_int(self):
        assert ColumnType.INTEGER.validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INTEGER.validate(True)

    def test_float_coerces_int(self):
        value = ColumnType.FLOAT.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.FLOAT.validate(False)

    def test_boolean_accepts_bool(self):
        assert ColumnType.BOOLEAN.validate(True) is True

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.BOOLEAN.validate(1)

    def test_none_passes_through(self):
        assert ColumnType.INTEGER.validate(None) is None

    def test_cnull_passes_through(self):
        assert ColumnType.STRING.validate(CNULL) is CNULL


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name!", ColumnType.STRING)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.STRING)

    def test_cnull_requires_crowd(self):
        plain = Column("a", ColumnType.STRING)
        with pytest.raises(TypeMismatchError):
            plain.validate(CNULL)

    def test_crowd_column_accepts_cnull(self):
        crowd = Column("a", ColumnType.STRING, crowd=True)
        assert crowd.validate(CNULL) is CNULL

    def test_not_null_rejects_none(self):
        col = Column("a", ColumnType.STRING, nullable=False)
        with pytest.raises(TypeMismatchError):
            col.validate(None)


class TestSchema:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", ColumnType.STRING), Column("a", ColumnType.INTEGER)])

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.STRING)], primary_key=("b",))

    def test_pk_cannot_be_crowd(self):
        with pytest.raises(SchemaError):
            Schema(
                [Column("a", ColumnType.STRING, crowd=True)], primary_key=("a",)
            )

    def test_column_lookup(self, people_schema):
        assert people_schema.column("age").ctype is ColumnType.INTEGER

    def test_unknown_column(self, people_schema):
        with pytest.raises(UnknownColumnError):
            people_schema.column("salary")

    def test_index_of(self, people_schema):
        assert people_schema.index_of("age") == 1

    def test_crowd_columns(self, people_schema):
        assert [c.name for c in people_schema.crowd_columns] == ["hometown"]

    def test_validate_row_defaults_crowd_to_cnull(self, people_schema):
        row = people_schema.validate_row({"name": "ann", "age": 3})
        assert is_cnull(row["hometown"])

    def test_validate_row_defaults_nullable_to_none(self, people_schema):
        row = people_schema.validate_row({"name": "ann"})
        assert row["age"] is None

    def test_validate_row_missing_not_null_raises(self, people_schema):
        with pytest.raises(TypeMismatchError):
            people_schema.validate_row({"age": 3})

    def test_validate_row_unknown_key_raises(self, people_schema):
        with pytest.raises(UnknownColumnError):
            people_schema.validate_row({"name": "x", "nope": 1})

    def test_validate_row_preserves_order(self, people_schema):
        row = people_schema.validate_row({"age": 1, "name": "b"})
        assert list(row) == ["name", "age", "hometown"]

    def test_project(self, people_schema):
        projected = people_schema.project(["age", "name"])
        assert projected.column_names == ("age", "name")

    def test_project_drops_broken_pk(self, people_schema):
        projected = people_schema.project(["age"])
        assert projected.primary_key == ()

    def test_project_keeps_pk_when_possible(self, people_schema):
        projected = people_schema.project(["name", "age"])
        assert projected.primary_key == ("name",)

    def test_rename(self, people_schema):
        renamed = people_schema.rename({"name": "full_name"})
        assert "full_name" in renamed
        assert renamed.primary_key == ("full_name",)

    def test_join_disjoint(self):
        a = Schema([Column("x", ColumnType.INTEGER)])
        b = Schema([Column("y", ColumnType.INTEGER)])
        joined = a.join(b)
        assert joined.column_names == ("x", "y")

    def test_join_with_clash_prefixes(self):
        a = Schema([Column("x", ColumnType.INTEGER)])
        b = Schema([Column("x", ColumnType.INTEGER)])
        joined = a.join(b, "l", "r")
        assert joined.column_names == ("l_x", "r_x")

    def test_equality(self, people_schema):
        clone = (
            SchemaBuilder()
            .string("name", nullable=False)
            .integer("age")
            .crowd_string("hometown")
            .key("name")
            .build()
        )
        assert clone == people_schema

    def test_contains(self, people_schema):
        assert "name" in people_schema
        assert "salary" not in people_schema

    def test_repr_mentions_crowd(self, people_schema):
        assert "CROWD" in repr(people_schema)


class TestSchemaBuilder:
    def test_all_types(self):
        schema = (
            SchemaBuilder()
            .string("s")
            .integer("i")
            .float("f")
            .boolean("b")
            .crowd_string("cs")
            .crowd_integer("ci")
            .crowd_float("cf")
            .crowd_boolean("cb")
            .build()
        )
        assert len(schema) == 8
        assert len(schema.crowd_columns) == 4

    def test_crowd_table_flag(self):
        schema = SchemaBuilder().string("a").crowd_table().build()
        assert schema.crowd_table
