"""Unit tests for repro.quality.workerqc."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.quality.workerqc import (
    GoldInjector,
    eliminate_spammers,
    pool_accuracy_report,
    qualification_test,
)
from repro.workers.pool import WorkerPool, true_accuracy


def _gold(n=10, seed=0):
    return [single_choice(f"g{i}", ("yes", "no"), truth="yes") for i in range(n)]


class TestQualificationTest:
    def test_requires_gold(self, platform):
        with pytest.raises(ConfigurationError):
            qualification_test(platform, [])

    def test_gold_needs_truth(self, platform):
        with pytest.raises(ConfigurationError):
            qualification_test(platform, [single_choice("g", ("a", "b"))])

    def test_filters_bad_workers(self):
        pool = WorkerPool.with_spammers(20, spammer_fraction=0.4, good_accuracy=0.95, seed=1)
        platform = SimulatedPlatform(pool, seed=2)
        qualification_test(platform, _gold(20), pass_accuracy=0.7)
        survivors = platform.pool.active_workers
        # Survivors should be overwhelmingly the good workers.
        good = [w for w in survivors if true_accuracy(w) is not None]
        assert len(good) >= len(survivors) - 2
        assert 10 <= len(survivors) <= 14

    def test_no_deactivation_when_disabled(self):
        pool = WorkerPool.with_spammers(10, spammer_fraction=0.5, seed=3)
        platform = SimulatedPlatform(pool, seed=4)
        scores = qualification_test(
            platform, _gold(10), pass_accuracy=0.7, deactivate_failures=False
        )
        assert len(platform.pool.active_workers) == 10
        assert len(scores) == 10

    def test_scores_in_unit_interval(self, platform):
        scores = qualification_test(platform, _gold(5), deactivate_failures=False)
        assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestGoldInjector:
    def test_requires_gold(self):
        with pytest.raises(ConfigurationError):
            GoldInjector(gold_tasks=[])

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            GoldInjector(gold_tasks=_gold(2), injection_rate=0.0)

    def test_marks_gold(self):
        gold = _gold(3)
        GoldInjector(gold_tasks=gold, seed=1)
        assert all(g.is_gold for g in gold)

    def test_inject_proportion(self):
        injector = GoldInjector(gold_tasks=_gold(5), injection_rate=0.2, seed=2)
        real = [single_choice(f"r{i}", ("a", "b"), truth="a") for i in range(50)]
        mixed = injector.inject(real)
        gold_count = sum(1 for t in mixed if t.is_gold)
        assert gold_count == 10
        assert len(mixed) == 60

    def test_scoring(self, platform):
        gold = _gold(8)
        injector = GoldInjector(gold_tasks=gold, seed=3)
        tasks_by_id = {g.task_id: g for g in gold}
        answers = platform.collect(gold, redundancy=3)
        for task_answers in answers.values():
            injector.score(task_answers, tasks_by_id)
        measured = injector.worker_accuracy()
        assert measured
        assert all(0.0 <= v <= 1.0 for v in measured.values())
        counts = injector.gold_counts()
        assert all(counts[w] >= 1 for w in measured)


class TestEliminateSpammers:
    def test_eliminates_chance_level_workers(self):
        pool = WorkerPool.uniform(5, 0.9, seed=5)
        ids = [w.worker_id for w in pool]
        accuracy = {ids[0]: 0.5, ids[1]: 0.95, ids[2]: 0.45}
        counts = {ids[0]: 20, ids[1]: 20, ids[2]: 20}
        eliminated = eliminate_spammers(pool, accuracy, counts)
        assert ids[0] in eliminated and ids[2] in eliminated
        assert ids[1] not in eliminated

    def test_needs_min_observations(self):
        pool = WorkerPool.uniform(2, 0.9, seed=6)
        wid = pool.workers[0].worker_id
        eliminated = eliminate_spammers(pool, {wid: 0.5}, {wid: 1})
        assert eliminated == []

    def test_report_joins_state(self):
        pool = WorkerPool.uniform(3, 0.9, seed=7)
        wid = pool.workers[0].worker_id
        pool.deactivate(wid)
        report = pool_accuracy_report(pool, {wid: 0.4})
        assert report[wid] == {"active": False, "gold_accuracy": 0.4}
        others = [v for k, v in report.items() if k != wid]
        assert all(v == {"active": True} for v in others)


class TestEndToEndPipeline:
    def test_gold_injection_then_elimination_improves_pool(self):
        pool = WorkerPool.with_spammers(20, spammer_fraction=0.3, good_accuracy=0.9, seed=8)
        platform = SimulatedPlatform(pool, seed=9)
        gold = _gold(40)
        injector = GoldInjector(gold_tasks=gold, seed=10)
        tasks_by_id = {g.task_id: g for g in gold}
        answers = platform.collect(gold, redundancy=10)
        for task_answers in answers.values():
            injector.score(task_answers, tasks_by_id)
        eliminated = eliminate_spammers(
            pool,
            injector.worker_accuracy(),
            injector.gold_counts(),
            min_observations=8,
        )
        # With ~20 gold answers per worker, eliminations should be spammers.
        spammers = {
            w.worker_id for w in pool if true_accuracy(w) is None
        }
        false_positives = [w for w in eliminated if w not in spammers]
        assert len(false_positives) <= 1
        # And most actual spammers should be caught.
        assert len([w for w in eliminated if w in spammers]) >= 4
