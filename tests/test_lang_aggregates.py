"""Unit tests for CrowdSQL aggregates (COUNT/SUM/AVG/MIN/MAX, GROUP BY)."""

import pytest

from repro.data.schema import CNULL
from repro.errors import ExecutionError, ParseError
from repro.lang.ast_nodes import AggregateSpec
from repro.lang.executor import CrowdOracle
from repro.lang.interpreter import CrowdSQLSession
from repro.lang.parser import parse_one
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


@pytest.fixture
def session():
    s = CrowdSQLSession()
    s.execute(
        """
        CREATE TABLE sales (region STRING, amount FLOAT, qty INTEGER);
        INSERT INTO sales VALUES
            ('north', 10.0, 1), ('north', 20.0, 2),
            ('south', 5.0, 1), ('south', NULL, 3), ('west', 7.5, NULL);
        """
    )
    return s


class TestParsing:
    def test_count_star(self):
        stmt = parse_one("SELECT COUNT(*) FROM t")
        assert stmt.aggregates == (AggregateSpec("COUNT", None),)
        assert stmt.columns == ()

    def test_output_names(self):
        assert AggregateSpec("COUNT", None).output_name == "count"
        assert AggregateSpec("SUM", "price").output_name == "sum_price"

    def test_mixed_items(self):
        stmt = parse_one("SELECT region, COUNT(*), SUM(amount) FROM t GROUP BY region")
        assert stmt.columns == ("region",)
        assert len(stmt.aggregates) == 2
        assert stmt.group_by == "region"

    def test_star_only_for_count(self):
        with pytest.raises(ParseError, match="COUNT"):
            parse_one("SELECT SUM(*) FROM t")

    def test_plain_column_without_group_by_rejected(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_one("SELECT region, COUNT(*) FROM t")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError, match="aggregate"):
            parse_one("SELECT region FROM t GROUP BY region")

    def test_group_by_qualified_name(self):
        stmt = parse_one("SELECT COUNT(*) FROM t GROUP BY t.region")
        assert stmt.group_by == "region"


class TestExecution:
    def test_count_star(self, session):
        result = session.query("SELECT COUNT(*) FROM sales")
        assert result.rows == [{"count": 5}]
        assert result.columns == ("count",)

    def test_count_with_where(self, session):
        result = session.query("SELECT COUNT(*) FROM sales WHERE qty > 1")
        assert result.rows == [{"count": 2}]

    def test_sum_avg_skip_nulls(self, session):
        result = session.query("SELECT SUM(amount), AVG(amount) FROM sales")
        assert result.rows[0]["sum_amount"] == pytest.approx(42.5)
        assert result.rows[0]["avg_amount"] == pytest.approx(42.5 / 4)

    def test_min_max(self, session):
        result = session.query("SELECT MIN(qty), MAX(qty) FROM sales")
        assert result.rows[0] == {"min_qty": 1, "max_qty": 3}

    def test_min_max_strings(self, session):
        result = session.query("SELECT MIN(region), MAX(region) FROM sales")
        assert result.rows[0] == {"min_region": "north", "max_region": "west"}

    def test_group_by(self, session):
        result = session.query(
            "SELECT region, COUNT(*), AVG(amount) FROM sales GROUP BY region"
        )
        by_region = {r["region"]: r for r in result.rows}
        assert by_region["north"]["count"] == 2
        assert by_region["north"]["avg_amount"] == pytest.approx(15.0)
        assert by_region["south"]["count"] == 2
        assert by_region["south"]["avg_amount"] == pytest.approx(5.0)

    def test_group_by_deterministic_order(self, session):
        result = session.query("SELECT region, COUNT(*) FROM sales GROUP BY region")
        regions = [r["region"] for r in result.rows]
        assert regions == sorted(regions, key=repr)

    def test_empty_input_aggregates(self, session):
        session.execute("CREATE TABLE empty (x FLOAT)")
        result = session.query("SELECT COUNT(*), SUM(x) FROM empty")
        assert result.rows == [{"count": 0, "sum_x": None}]

    def test_sum_non_numeric_rejected(self, session):
        with pytest.raises(ExecutionError, match="numeric"):
            session.query("SELECT SUM(region) FROM sales")

    def test_unknown_column_rejected(self, session):
        with pytest.raises(ExecutionError, match="unknown column"):
            session.query("SELECT SUM(ghost) FROM sales")

    def test_limit_applies_to_groups(self, session):
        result = session.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region LIMIT 2"
        )
        assert len(result.rows) == 2

    def test_cnull_excluded_from_aggregates(self):
        s = CrowdSQLSession()
        s.execute(
            "CREATE TABLE t (k STRING, v FLOAT CROWD);"
            "INSERT INTO t VALUES ('a', 1.0), ('b', CNULL)"
        )
        # COUNT(v) counts only resolved cells; no fill oracle needed since
        # the aggregate skips CNULL... but the planner inserts a FillNode
        # for referenced crowd columns with pending cells, so provide one.
        oracle_session = CrowdSQLSession(
            database=s.database,
            platform=SimulatedPlatform(WorkerPool.uniform(5, 1.0, seed=1), seed=2),
            oracle=CrowdOracle(fill_fn=lambda row, col: 9.0),
            redundancy=1,
        )
        result = oracle_session.query("SELECT COUNT(v), SUM(v) FROM t")
        assert result.rows[0]["count_v"] == 2   # CNULL was crowd-filled first
        assert result.rows[0]["sum_v"] == pytest.approx(10.0)

    def test_explain_shows_aggregate(self, session):
        text = session.explain("SELECT region, COUNT(*) FROM sales GROUP BY region")
        assert "Aggregate(count GROUP BY region)" in text


class TestAggregatesOverCrowdPredicates:
    def test_count_after_crowd_filter(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, 0.95, seed=3), seed=4)
        oracle = CrowdOracle(filter_fn=lambda v, q: str(v).startswith("n"))
        session = CrowdSQLSession(platform=platform, oracle=oracle, redundancy=3)
        session.execute(
            "CREATE TABLE cities (cname STRING);"
            "INSERT INTO cities VALUES ('nice'), ('nantes'), ('lyon'), ('paris')"
        )
        result = session.query(
            "SELECT COUNT(*) FROM cities WHERE CROWDFILTER(cname, 'starts with n?')"
        )
        assert result.rows[0]["count"] == 2
        assert result.stats.crowd_questions == 4
