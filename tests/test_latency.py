"""Unit tests for repro.latency (rounds, statistical model, mitigation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.latency.mitigation import (
    RetainerPool,
    run_baseline,
    run_with_replication,
    run_with_straggler_rescue,
)
from repro.latency.rounds import RoundScheduler, rounds_lower_bound
from repro.latency.statistical import (
    fit_completion_model,
    predict_speedup_from_reward,
    straggler_threshold,
)
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.models import OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import LatencyModel, Worker


def _tasks(n, prefix="q"):
    return [single_choice(f"{prefix}{i}", ("a", "b"), truth="a") for i in range(n)]


def _heavy_tail_pool(n=20, sigma=1.3, seed=5):
    workers = [
        Worker(
            model=OneCoinModel(0.9),
            latency=LatencyModel(mean_seconds=20.0, sigma=sigma, arrival_rate=1 / 30),
        )
        for _ in range(n)
    ]
    return WorkerPool(workers, seed=seed)


class TestRounds:
    def test_lower_bound_binary(self):
        assert rounds_lower_bound(64, 2) == 6
        assert rounds_lower_bound(64, 4) == 3
        assert rounds_lower_bound(1, 2) == 0

    def test_lower_bound_validated(self):
        with pytest.raises(ConfigurationError):
            rounds_lower_bound(0, 2)
        with pytest.raises(ConfigurationError):
            rounds_lower_bound(5, 1)

    def test_scheduler_runs_dependent_rounds(self, platform):
        scheduler = RoundScheduler(platform, redundancy=1)
        rounds_seen = []

        def next_round(answers, index):
            rounds_seen.append(len(answers))
            if index >= 3:
                return []
            return _tasks(2, prefix=f"r{index}_")

        outcome = scheduler.run(_tasks(4, prefix="r0_"), next_round)
        assert outcome.round_count == 3
        assert rounds_seen[0] == 4
        assert outcome.total_latency == pytest.approx(
            sum(r.duration for r in outcome.rounds)
        )
        assert outcome.total_answers == 4 + 2 + 2

    def test_scheduler_round_cap(self, platform):
        scheduler = RoundScheduler(platform, redundancy=1)
        with pytest.raises(ConfigurationError, match="max_rounds"):
            scheduler.run(
                _tasks(1), lambda answers, i: _tasks(1, prefix=f"x{i}_"), max_rounds=3
            )

    def test_redundancy_validated(self, platform):
        with pytest.raises(ConfigurationError):
            RoundScheduler(platform, redundancy=0)


class TestStatisticalModel:
    def test_fit_recovers_lognormal_params(self):
        rng = np.random.default_rng(3)
        durations = rng.lognormal(mean=3.0, sigma=0.5, size=5000)
        model = fit_completion_model(list(durations))
        assert model.mu == pytest.approx(3.0, abs=0.05)
        assert model.sigma == pytest.approx(0.5, abs=0.05)

    def test_fit_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_completion_model([5.0])

    def test_fit_ignores_nonpositive(self):
        model = fit_completion_model([10.0, 10.0, -1.0, 0.0])
        assert model.n_observations == 2

    def test_quantiles_monotone(self):
        model = fit_completion_model([10.0, 20.0, 30.0, 15.0, 25.0])
        assert model.quantile(0.25) < model.median < model.quantile(0.9)

    def test_quantile_bounds_validated(self):
        model = fit_completion_model([10.0, 20.0])
        with pytest.raises(ConfigurationError):
            model.quantile(0.0)

    def test_probability_done_by(self):
        model = fit_completion_model([10.0] * 10 + [12.0] * 10)
        assert model.probability_done_by(1.0) < 0.05
        assert model.probability_done_by(100.0) > 0.95
        assert model.probability_done_by(-5) == 0.0

    def test_expected_makespan_scales_with_waves(self):
        model = fit_completion_model([30.0, 40.0, 25.0, 35.0])
        assert model.expected_makespan(100, 10) > model.expected_makespan(10, 10)

    def test_fit_rejects_tiny_samples_cleanly(self):
        # The guard must fire before numpy sees the data: no degrees-of-
        # freedom RuntimeWarnings, no NaN parameters — a clean error.
        import warnings

        for bad in ([], [5.0], [float("nan"), float("inf")], [-1.0, 0.0]):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                with pytest.raises(ConfigurationError, match="at least two"):
                    fit_completion_model(bad)

    def test_fit_drops_nonfinite(self):
        model = fit_completion_model([10.0, 20.0, float("nan"), float("inf")])
        assert model.n_observations == 2

    def test_robust_fit_tracks_the_clean_body(self):
        # 25% of observations spiked 20x: the moment fit chases the tail
        # (its p95 lands near the straggler duration, so stragglers are
        # never "slow"), the median/MAD fit stays with the clean body.
        rng = np.random.default_rng(7)
        clean = list(rng.lognormal(mean=np.log(30.0), sigma=0.5, size=90))
        contaminated = clean + [600.0] * 30
        plain = fit_completion_model(contaminated)
        robust = fit_completion_model(contaminated, robust=True)
        assert straggler_threshold(robust, 0.95) < 150.0
        assert straggler_threshold(plain, 0.95) > 300.0

    def test_robust_fit_degenerate_mad_falls_back(self):
        # Over half the sample identical: MAD is 0, fall back to std.
        model = fit_completion_model([10.0, 10.0, 10.0, 20.0], robust=True)
        assert model.sigma > 0.0

    def test_straggler_threshold_above_median(self):
        model = fit_completion_model([10.0, 20.0, 30.0, 40.0])
        assert straggler_threshold(model, 0.9) > model.median

    def test_straggler_threshold_guards_degenerate_models(self):
        from repro.latency.statistical import CompletionModel

        with pytest.raises(ConfigurationError, match="at least two"):
            straggler_threshold(CompletionModel(mu=1.0, sigma=0.5, n_observations=1))
        with pytest.raises(ConfigurationError, match="finite"):
            straggler_threshold(
                CompletionModel(mu=float("nan"), sigma=0.5, n_observations=5)
            )

    def test_speedup_prediction_monotone(self):
        model = fit_completion_model([10.0, 20.0])
        assert predict_speedup_from_reward(model, 0.01, 0.05) > 1.0
        assert predict_speedup_from_reward(model, 0.01, 0.005) < 1.0
        with pytest.raises(ConfigurationError):
            predict_speedup_from_reward(model, 0.0, 0.01)


class TestMitigation:
    def test_baseline_accounts_cost(self):
        platform = SimulatedPlatform(_heavy_tail_pool(), seed=1)
        result = run_baseline(platform, _tasks(20))
        assert result.answers_used == 20
        assert result.cost == pytest.approx(0.2)
        assert result.makespan > 0

    def test_replication_validated(self):
        platform = SimulatedPlatform(_heavy_tail_pool(), seed=2)
        with pytest.raises(ConfigurationError):
            run_with_replication(platform, _tasks(2), replication=0)

    def test_replication_cuts_tail_with_heavy_tails(self):
        # Average over seeds: hedging must reduce p95 when service times
        # are heavy-tailed and workers outnumber tasks.
        base_p95, repl_p95 = [], []
        for seed in range(4):
            platform = SimulatedPlatform(_heavy_tail_pool(30, sigma=1.5, seed=seed), seed=seed)
            base_p95.append(run_baseline(platform, _tasks(12)).p95)
            platform2 = SimulatedPlatform(_heavy_tail_pool(30, sigma=1.5, seed=seed), seed=seed)
            repl_p95.append(
                run_with_replication(platform2, _tasks(12), replication=3).p95
            )
        assert np.mean(repl_p95) < np.mean(base_p95)

    def test_replication_costs_more(self):
        platform = SimulatedPlatform(_heavy_tail_pool(), seed=4)
        base = run_baseline(platform, _tasks(10))
        platform2 = SimulatedPlatform(_heavy_tail_pool(), seed=4)
        repl = run_with_replication(platform2, _tasks(10), replication=2)
        assert repl.cost > base.cost
        assert repl.answers_used == 2 * base.answers_used

    def test_straggler_rescue_improves_makespan(self):
        improved = 0
        for seed in range(4):
            platform = SimulatedPlatform(_heavy_tail_pool(seed=seed), seed=seed + 10)
            base = run_baseline(platform, _tasks(25))
            platform2 = SimulatedPlatform(_heavy_tail_pool(seed=seed), seed=seed + 10)
            rescue = run_with_straggler_rescue(platform2, _tasks(25), percentile=0.7)
            if rescue.makespan <= base.makespan:
                improved += 1
        assert improved >= 3

    def test_straggler_rescue_cost_bounded(self):
        platform = SimulatedPlatform(_heavy_tail_pool(), seed=20)
        rescue = run_with_straggler_rescue(platform, _tasks(20), percentile=0.75)
        # Rescue re-buys at most the straggler fraction (~25%) plus noise.
        assert rescue.cost <= 0.2 * 1.5


class TestRetainerPool:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetainerPool(standby_workers=0)

    def test_latency_is_service_bound(self):
        pool = RetainerPool(standby_workers=10, mean_service_seconds=30)
        assert pool.expected_latency(10) == pytest.approx(30.0)
        assert pool.expected_latency(25) == pytest.approx(90.0)

    def test_cost_includes_standby_wages(self):
        pool = RetainerPool(
            standby_workers=5, standby_wage_per_second=0.001, mean_service_seconds=10
        )
        cost = pool.expected_cost(5, task_reward=0.02)
        assert cost == pytest.approx(5 * 0.02 + 10 * 0.001 * 5)

    def test_n_tasks_validated(self):
        with pytest.raises(ConfigurationError):
            RetainerPool(standby_workers=1).expected_latency(0)
