"""Unit tests for the crowd planning operator (human-guided search)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.operators.plan import CrowdPlanner, optimal_path, path_score
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


def layered_graph(layers=5, width=4):
    graph = {}
    for layer in range(layers):
        for i in range(width):
            graph[(layer, i)] = [(layer + 1, j) for j in range(width)]
    return graph


def seeded_edge_score(seed_offset=0):
    cache = {}

    def edge_score(u, v):
        key = (u, v)
        if key not in cache:
            rng = np.random.default_rng((hash(key) + seed_offset) % (2**32))
            cache[key] = float(rng.uniform(0, 1))
        return cache[key]

    return edge_score


def _platform(accuracy=0.95, seed=1):
    return SimulatedPlatform(WorkerPool.uniform(15, accuracy, seed=seed), seed=seed + 1)


class TestOptimalPath:
    def test_simple_dp(self):
        graph = {"s": ["a", "b"], "a": ["t"], "b": ["t"]}
        score = {("s", "a"): 1.0, ("s", "b"): 5.0, ("a", "t"): 1.0, ("b", "t"): 1.0}
        best = optimal_path(graph, "s", 2, lambda u, v: score[(u, v)])
        assert best == ["s", "b", "t"]

    def test_steps_validated(self):
        with pytest.raises(ConfigurationError):
            optimal_path({}, "s", 0, lambda u, v: 0.0)

    def test_dead_end_truncates(self):
        graph = {"s": ["a"], "a": []}
        best = optimal_path(graph, "s", 5, lambda u, v: 1.0)
        assert best == ["s", "a"]

    def test_path_score(self):
        assert path_score(["a", "b", "c"], lambda u, v: 2.0) == 4.0
        assert path_score(["a"], lambda u, v: 2.0) == 0.0


class TestCrowdPlanner:
    def test_config_validated(self):
        planner = CrowdPlanner(_platform(), {}, lambda u, v: 0.0)
        with pytest.raises(ConfigurationError):
            planner.greedy("s", 0)
        with pytest.raises(ConfigurationError):
            planner.beam("s", 1, width=0)
        with pytest.raises(ConfigurationError):
            CrowdPlanner(_platform(), {}, lambda u, v: 0.0, redundancy=0)

    def test_accurate_workers_find_good_plans(self):
        graph = layered_graph()
        edge_score = seeded_edge_score()
        planner = CrowdPlanner(_platform(accuracy=0.97, seed=3), graph, edge_score,
                               redundancy=5)
        result = planner.greedy((0, 0), 5)
        assert len(result.path) == 6
        # Greedy with near-perfect votes: small regret vs the DP optimum.
        assert result.regret(graph, edge_score) < 1.0

    def test_single_successor_needs_no_vote(self):
        graph = {"s": ["a"], "a": ["b"], "b": []}
        planner = CrowdPlanner(_platform(seed=5), graph, lambda u, v: 1.0)
        result = planner.greedy("s", 2)
        assert result.path == ["s", "a", "b"]
        assert result.questions_asked == 0
        assert result.cost == 0.0

    def test_dead_end_stops_early(self):
        graph = {"s": ["a"], "a": []}
        planner = CrowdPlanner(_platform(seed=7), graph, lambda u, v: 1.0)
        result = planner.greedy("s", 10)
        assert result.path == ["s", "a"]

    def test_question_accounting(self):
        graph = layered_graph(layers=3)
        planner = CrowdPlanner(_platform(seed=9), graph, seeded_edge_score(),
                               redundancy=3)
        result = planner.greedy((0, 0), 3)
        assert result.answers_bought == result.questions_asked * 3
        assert result.cost == pytest.approx(result.answers_bought * 0.01)

    def test_beam_no_worse_than_greedy_under_noise(self):
        # Adversarial layered graph where the myopic choice is a trap:
        # the edge with the best immediate score leads to a layer with
        # poor onward edges.
        graph = {
            "s": ["trap", "good"],
            "trap": ["t1"], "good": ["t2"],
            "t1": [], "t2": [],
        }
        score = {
            ("s", "trap"): 0.9, ("s", "good"): 0.8,
            ("trap", "t1"): 0.1, ("good", "t2"): 0.9,
        }
        edge_score = lambda u, v: score[(u, v)]
        greedy = CrowdPlanner(_platform(accuracy=1.0, seed=11), graph, edge_score)
        beam = CrowdPlanner(_platform(accuracy=1.0, seed=11), graph, edge_score)
        greedy_result = greedy.greedy("s", 2)
        beam_result = beam.beam("s", 2, width=2)
        assert beam_result.score(edge_score) >= greedy_result.score(edge_score)
        # The beam escapes the trap (its round-2 vote sees full 2-step paths).
        assert beam_result.path == ["s", "good", "t2"]

    def test_beam_width_one_equals_greedy_choice_structure(self):
        graph = layered_graph(layers=3)
        edge_score = seeded_edge_score(3)
        planner = CrowdPlanner(_platform(accuracy=1.0, seed=13), graph, edge_score)
        result = planner.beam((0, 0), 3, width=1)
        assert len(result.path) == 4
