"""Unit tests for repro.cost (similarity, pruning, deduction, selection,
sampling, task design)."""

import numpy as np
import pytest

from repro.cost.deduction import ComparisonDeducer, TransitiveResolver, resolve_pairs
from repro.cost.pruning import SimilarityPruner, pruning_recall
from repro.cost.sampling import (
    estimate_count,
    estimate_mean,
    estimate_proportion,
    required_sample_size,
    sample_indices,
    stratified_estimate,
)
from repro.cost.selection import (
    ExpectedErrorReductionSelector,
    MarginSelector,
    UncertaintySelector,
    entropy,
    margin,
)
from repro.cost.similarity import (
    cosine_tokens,
    edit_distance,
    edit_similarity,
    jaccard_ngrams,
    jaccard_tokens,
    ngrams,
    tokenize,
)
from repro.cost.taskdesign import (
    FatigueModel,
    batch_tasks,
    best_batch_size,
    plan_batching,
)
from repro.errors import ConfigurationError, DeductionError
from repro.platform.task import fill


class TestSimilarity:
    def test_tokenize_lowercases(self):
        assert tokenize("Hello, World-2") == ["hello", "world", "2"]

    def test_jaccard_identical(self):
        assert jaccard_tokens("a b c", "c b a") == pytest.approx(1.0)

    def test_jaccard_disjoint(self):
        assert jaccard_tokens("a b", "c d") == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard_tokens("", "") == 1.0

    def test_jaccard_one_empty(self):
        assert jaccard_tokens("a", "") == 0.0

    def test_ngrams_short_string(self):
        assert ngrams("ab", 3) == {"ab"}

    def test_ngram_similarity_order_insensitive(self):
        assert jaccard_ngrams("apple phone", "phone apple") > 0.4

    def test_edit_distance_classic(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_edit_distance_identity(self):
        assert edit_distance("same", "same") == 0

    def test_edit_distance_empty(self):
        assert edit_distance("", "abc") == 3

    def test_edit_distance_symmetric(self):
        assert edit_distance("abcdef", "azced") == edit_distance("azced", "abcdef")

    def test_edit_similarity_bounds(self):
        assert 0.0 <= edit_similarity("abc", "xyz") <= 1.0
        assert edit_similarity("", "") == 1.0

    def test_cosine_identical(self):
        assert cosine_tokens("a b a", "a a b") == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        assert cosine_tokens("a", "b") == 0.0

    @pytest.mark.parametrize(
        "fn", [jaccard_tokens, jaccard_ngrams, edit_similarity, cosine_tokens]
    )
    def test_all_similarities_symmetric_and_bounded(self, fn):
        pairs = [("apple iphone", "iphone apple 12"), ("x", "y"), ("", "abc")]
        for a, b in pairs:
            assert fn(a, b) == pytest.approx(fn(b, a))
            assert 0.0 <= fn(a, b) <= 1.0


class TestPruning:
    RECORDS = [
        "swift falcon 120",
        "falcon swift 120",
        "amber orchid 55",
        "orchid amber 55 pro",
        "cobalt summit 9",
    ]

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            SimilarityPruner(threshold=2.0)

    def test_unknown_similarity_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityPruner(similarity="nope")

    def test_prunes_cross_entity_pairs(self):
        pairs, report = SimilarityPruner(0.5).candidate_pairs(self.RECORDS)
        kept = {(p.left_index, p.right_index) for p in pairs}
        assert (0, 1) in kept and (2, 3) in kept
        assert (0, 4) not in kept
        assert report.total_pairs == 10
        assert report.pruned_fraction > 0.5

    def test_zero_threshold_keeps_everything(self):
        pairs, report = SimilarityPruner(0.0).candidate_pairs(self.RECORDS)
        assert len(pairs) == report.total_pairs == 10

    def test_pairs_sorted_by_similarity(self):
        pairs, _ = SimilarityPruner(0.0).candidate_pairs(self.RECORDS)
        sims = [p.similarity for p in pairs]
        assert sims == sorted(sims, reverse=True)

    def test_cross_pairs(self):
        left = ["swift falcon"]
        right = ["falcon swift x", "other thing"]
        pairs, report = SimilarityPruner(0.5).cross_pairs(left, right)
        assert [(p.left_index, p.right_index) for p in pairs] == [(0, 0)]
        assert report.total_pairs == 2

    def test_recall_computation(self):
        pairs, _ = SimilarityPruner(0.5).candidate_pairs(self.RECORDS)
        assert pruning_recall(pairs, {(0, 1), (2, 3)}) == 1.0
        assert pruning_recall(pairs, {(0, 4)}) == 0.0
        assert pruning_recall([], set()) == 1.0

    def test_custom_similarity_callable(self):
        pruner = SimilarityPruner(0.5, similarity=lambda a, b: 1.0)
        pairs, _ = pruner.candidate_pairs(["x", "y", "z"])
        assert len(pairs) == 3


class TestTransitiveResolver:
    def test_positive_transitivity(self):
        resolver = TransitiveResolver()
        resolver.record_match("a", "b")
        resolver.record_match("b", "c")
        assert resolver.infer("a", "c") is True

    def test_negative_propagation(self):
        resolver = TransitiveResolver()
        resolver.record_match("a", "b")
        resolver.record_nonmatch("b", "x")
        assert resolver.infer("a", "x") is False

    def test_unknown_is_none(self):
        resolver = TransitiveResolver()
        resolver.record_match("a", "b")
        assert resolver.infer("a", "z") is None

    def test_strict_contradiction_match(self):
        resolver = TransitiveResolver(strict=True)
        resolver.record_nonmatch("a", "b")
        with pytest.raises(DeductionError):
            resolver.record_match("a", "b")

    def test_strict_contradiction_nonmatch(self):
        resolver = TransitiveResolver(strict=True)
        resolver.record_match("a", "b")
        with pytest.raises(DeductionError):
            resolver.record_nonmatch("a", "b")

    def test_lenient_records_conflicts(self):
        resolver = TransitiveResolver(strict=False)
        resolver.record_match("a", "b")
        resolver.record_nonmatch("a", "b")
        assert resolver.conflicts
        assert resolver.infer("a", "b") is True  # first evidence wins

    def test_nonmatch_edges_survive_merges(self):
        resolver = TransitiveResolver()
        resolver.record_nonmatch("a", "x")
        resolver.record_match("a", "b")   # merge a,b; edge must follow root
        assert resolver.infer("b", "x") is False

    def test_clusters(self):
        resolver = TransitiveResolver()
        resolver.record_match("a", "b")
        resolver.record_match("c", "d")
        clusters = resolver.clusters(["a", "b", "c", "d", "e"])
        as_sets = sorted(tuple(sorted(c)) for c in clusters)
        assert as_sets == [("a", "b"), ("c", "d"), ("e",)]

    def test_resolve_pairs_saves_questions(self):
        cluster = {i: i // 4 for i in range(12)}  # 3 clusters of 4
        pairs = [(i, j) for i in range(12) for j in range(i + 1, 12)]
        labels, asked = resolve_pairs(pairs, lambda a, b: cluster[a] == cluster[b])
        assert asked < len(pairs)
        assert all(
            labels[(i, j)] == (cluster[i] == cluster[j]) for i, j in pairs
        )


class TestComparisonDeducer:
    def test_transitive_order(self):
        deducer = ComparisonDeducer()
        deducer.record("a", "b")
        deducer.record("b", "c")
        deducer.record("c", "d")
        assert deducer.infer("a", "d") is True
        assert deducer.infer("d", "a") is False
        assert deducer.infer("a", "zz") is None

    def test_self_comparison_rejected(self):
        with pytest.raises(DeductionError):
            ComparisonDeducer().record("a", "a")

    def test_cycle_rejected_strict(self):
        deducer = ComparisonDeducer(strict=True)
        deducer.record("a", "b")
        deducer.record("b", "c")
        with pytest.raises(DeductionError):
            deducer.record("c", "a")

    def test_cycle_ignored_lenient(self):
        deducer = ComparisonDeducer(strict=False)
        deducer.record("a", "b")
        deducer.record("b", "a")
        assert deducer.conflicts == [("b", "a")]

    def test_duplicate_edge_not_recounted(self):
        deducer = ComparisonDeducer()
        deducer.record("a", "b")
        deducer.record("a", "b")
        assert deducer.recorded == 1

    def test_known_sets(self):
        deducer = ComparisonDeducer()
        deducer.record("a", "b")
        deducer.record("b", "c")
        assert deducer.known_below("a") == {"b", "c"}
        assert deducer.known_above("c") == {"a", "b"}


class TestSelection:
    def test_entropy_uniform_is_max(self):
        assert entropy({"a": 0.5, "b": 0.5}) > entropy({"a": 0.9, "b": 0.1})

    def test_entropy_certain_is_zero(self):
        assert entropy({"a": 1.0, "b": 0.0}) == pytest.approx(0.0)

    def test_entropy_handles_unnormalized(self):
        assert entropy({"a": 2, "b": 2}) == pytest.approx(entropy({"a": 0.5, "b": 0.5}))

    def test_margin(self):
        assert margin({"a": 0.8, "b": 0.2}) == pytest.approx(0.6)
        assert margin({"a": 1.0}) == 1.0

    def test_uncertainty_selects_most_uncertain(self):
        posteriors = {
            "easy": {"a": 0.95, "b": 0.05},
            "hard": {"a": 0.5, "b": 0.5},
            "mid": {"a": 0.7, "b": 0.3},
        }
        assert UncertaintySelector().select(posteriors, budget=2) == ["hard", "mid"]

    def test_margin_selector_agrees_on_binary(self):
        posteriors = {
            "easy": {"a": 0.95, "b": 0.05},
            "hard": {"a": 0.51, "b": 0.49},
        }
        assert MarginSelector().select(posteriors, budget=1) == ["hard"]

    def test_eer_prefers_decidable_uncertainty(self):
        selector = ExpectedErrorReductionSelector(assumed_accuracy=0.8)
        # A coin-flip task gains more from one answer than a settled one.
        assert selector.score({"a": 0.5, "b": 0.5}) > selector.score(
            {"a": 0.95, "b": 0.05}
        )

    def test_eer_accuracy_validated(self):
        with pytest.raises(ConfigurationError):
            ExpectedErrorReductionSelector(assumed_accuracy=0.3)

    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            UncertaintySelector().select({}, budget=-1)

    def test_budget_zero_empty(self):
        assert UncertaintySelector().select({"t": {"a": 1.0}}, budget=0) == []


class TestSampling:
    def test_proportion_point_estimate(self):
        est = estimate_proportion([True, True, False, False], 1000)
        assert est.value == pytest.approx(0.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_proportion([], 10)

    def test_fpc_shrinks_stderr(self):
        small_pop = estimate_proportion([True, False] * 20, 50)
        big_pop = estimate_proportion([True, False] * 20, 100_000)
        assert small_pop.stderr < big_pop.stderr

    def test_count_scales_proportion(self):
        est = estimate_count([True, False], 100)
        assert est.value == pytest.approx(50.0)

    def test_interval_contains_truth_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        trials = 200
        for _ in range(trials):
            sample = rng.random(100) < 0.3
            est = estimate_count(list(sample), 10_000, confidence=0.95)
            if est.contains(3000):
                hits += 1
        assert hits / trials > 0.88  # ~95% nominal

    def test_estimate_mean(self):
        est = estimate_mean([10.0, 12.0, 8.0, 10.0])
        assert est.value == pytest.approx(10.0)
        assert est.stderr > 0

    def test_required_sample_size_monotone(self):
        assert required_sample_size(0.01) > required_sample_size(0.05)

    def test_required_sample_size_classic_value(self):
        # 95% CI, +-5% -> ~385 samples.
        assert 380 <= required_sample_size(0.05, 0.95) <= 390

    def test_sample_indices_unique_sorted(self, rng):
        idx = sample_indices(100, 30, rng)
        assert len(set(idx)) == 30
        assert idx == sorted(idx)

    def test_sample_too_large_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            sample_indices(5, 10, rng)

    def test_stratified_combines(self):
        est = stratified_estimate(
            [([True] * 8 + [False] * 2, 800), ([True] * 2 + [False] * 8, 200)]
        )
        assert est.value == pytest.approx(0.8 * 0.8 + 0.2 * 0.2)

    def test_stratified_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            stratified_estimate([])


class TestTaskDesign:
    def test_batching_shapes(self):
        tasks = [fill(f"q{i}") for i in range(10)]
        hits = batch_tasks(tasks, 3)
        assert [len(h) for h in hits] == [3, 3, 3, 1]

    def test_batch_size_validated(self):
        with pytest.raises(ConfigurationError):
            batch_tasks([fill("q")], 0)

    def test_fatigue_monotone(self):
        fatigue = FatigueModel(decay=0.05, floor=0.5)
        multipliers = [fatigue.multiplier(k) for k in range(20)]
        assert multipliers == sorted(multipliers, reverse=True)
        assert min(multipliers) >= 0.5

    def test_fatigue_validated(self):
        with pytest.raises(ConfigurationError):
            FatigueModel(decay=1.5)
        with pytest.raises(ConfigurationError):
            FatigueModel(floor=0.0)

    def test_plan_batching_amortizes_overhead(self):
        plans = plan_batching(100, [1, 5, 20], engagement_overhead=1.0)
        by_size = {p.batch_size: p for p in plans}
        assert by_size[20].engagement_cost < by_size[1].engagement_cost
        assert by_size[20].mean_accuracy_multiplier < by_size[1].mean_accuracy_multiplier

    def test_best_batch_size_prefers_middle_ground(self):
        plans = plan_batching(
            100, [1, 5, 10, 50], fatigue=FatigueModel(decay=0.02, floor=0.5)
        )
        best = best_batch_size(plans)
        assert best.batch_size > 1  # batching always beats singletons on ratio

    def test_best_batch_size_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_batch_size([])
