"""Regression tests for obs/server concurrency hardening (ISSUE 10).

Three bugs pinned here:

* the ``/metrics`` handler's 500 fallback used to re-write to the socket
  that had just failed (scraper disconnecting mid-response), raising a
  second time out of ``do_GET`` — and, when the status line was already
  out, appending a second status line (malformed HTTP);
* :attr:`MetricsServer.url` rendered ``http://::1:port`` for IPv6 binds;
* registry snapshot/render iterated the live series dicts, so a scrape
  racing first-use labeled-series creation could die with
  ``RuntimeError: dictionary changed size during iteration``.
"""

import threading
import time
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_prometheus
from repro.obs.server import MetricsServer, _make_handler


class FlakyWFile:
    """File-like that starts raising ``BrokenPipeError`` at write *fail_from*."""

    def __init__(self, fail_from: int) -> None:
        self.writes: list[bytes] = []
        self.attempts = 0
        self.fail_from = fail_from

    def write(self, data: bytes) -> int:
        index = self.attempts
        self.attempts += 1
        if index >= self.fail_from:
            raise BrokenPipeError(32, "Broken pipe")
        self.writes.append(bytes(data))
        return len(data)

    def flush(self) -> None:
        pass


def make_handler(path: str, wfile: FlakyWFile, run_status=None):
    """A handler instance wired to a fake socket (no network)."""
    server = MetricsServer(MetricsRegistry(), run_status=run_status)
    handler_cls = _make_handler(server)
    handler = handler_cls.__new__(handler_cls)
    handler.path = path
    handler.command = "GET"
    handler.request_version = "HTTP/1.1"
    handler.requestline = f"GET {path} HTTP/1.1"
    handler.client_address = ("127.0.0.1", 55555)
    handler.close_connection = False
    handler.wfile = wfile
    return handler


def status_lines(wfile: FlakyWFile) -> int:
    return b"".join(wfile.writes).count(b"HTTP/1.")


class TestDisconnectFallback:
    def test_body_write_broken_pipe_does_not_raise(self):
        # Headers flush (write 0) succeeds; the body write (write 1) hits
        # a dead socket. The old fallback re-replied on the same socket:
        # a second status line *and* a second BrokenPipeError out of
        # do_GET, which the stdlib logs as an unhandled traceback.
        wfile = FlakyWFile(fail_from=1)
        handler = make_handler("/healthz", wfile)
        handler.do_GET()  # must not raise
        assert handler.close_connection is True
        assert status_lines(wfile) == 1  # no second status line attempted

    def test_header_flush_broken_pipe_does_not_raise(self):
        # The very first socket write (the header flush) fails: nothing is
        # on the wire from our side, but the peer is gone — the fallback
        # must not try to write a 500 to the same dead socket.
        wfile = FlakyWFile(fail_from=0)
        handler = make_handler("/healthz", wfile)
        handler.do_GET()  # must not raise
        assert handler.close_connection is True
        assert wfile.attempts == 1  # exactly one write attempt, no retry

    def test_provider_error_with_healthy_socket_gets_clean_500(self):
        # A genuine handler error on a live socket still produces exactly
        # one well-formed 500 response.
        def boom():
            raise RuntimeError("status provider exploded")

        wfile = FlakyWFile(fail_from=10_000)
        handler = make_handler("/run", wfile, run_status=boom)
        handler.do_GET()
        joined = b"".join(wfile.writes)
        assert status_lines(wfile) == 1
        assert b" 500 " in joined
        assert b"status provider exploded" in joined

    def test_live_mid_response_disconnect_keeps_serving(self):
        # End-to-end: a scraper that closes its socket mid-response must
        # not take the serving thread down for later scrapers.
        registry = MetricsRegistry()
        for i in range(2000):
            registry.inc("service.tasks_dispatched", labels={"tenant": f"t{i}"})
        with MetricsServer(registry, port=0) as server:
            import socket as socket_mod

            sock = socket_mod.create_connection(("127.0.0.1", server.port))
            sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.recv(128)  # read a little, then vanish mid-body
            sock.setsockopt(
                socket_mod.SOL_SOCKET,
                socket_mod.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",  # RST on close
            )
            sock.close()
            time.sleep(0.05)
            with urllib.request.urlopen(server.url + "/healthz", timeout=5) as resp:
                assert resp.read() == b"ok\n"


class TestIPv6Url:
    def test_url_brackets_ipv6_host(self):
        server = MetricsServer(MetricsRegistry(), host="::1", port=9123)
        assert server.url == "http://[::1]:9123"

    def test_url_plain_ipv4_unchanged(self):
        server = MetricsServer(MetricsRegistry(), host="127.0.0.1", port=9123)
        assert server.url == "http://127.0.0.1:9123"

    def test_ipv6_bind_and_scrape(self):
        registry = MetricsRegistry()
        registry.inc("platform.tasks_published", 3)
        try:
            server = MetricsServer(registry, host="::1", port=0).start()
        except Exception:
            pytest.skip("IPv6 loopback unavailable")
        try:
            with urllib.request.urlopen(server.url + "/healthz", timeout=5) as resp:
                assert resp.read() == b"ok\n"
        finally:
            server.stop()


class TestScrapeWhileMutating:
    def test_render_and_snapshot_race_series_creation(self):
        # A writer thread mints fresh labeled series as fast as it can
        # (what the multi-tenant service run loop does) while the main
        # thread scrapes. Pre-fix this dies with "dictionary changed size
        # during iteration" in render/snapshot within a few iterations.
        registry = MetricsRegistry()
        stop = threading.Event()
        writer_errors: list[BaseException] = []

        def writer() -> None:
            i = 0
            try:
                while not stop.is_set():
                    tenant = f"t{i}"
                    registry.inc(
                        "service.tasks_dispatched", labels={"tenant": tenant}
                    )
                    registry.set_gauge(
                        "service.queue_depth", float(i % 13), labels={"tenant": tenant}
                    )
                    registry.observe(
                        "service.queue_wait", float(i % 7), labels={"tenant": tenant}
                    )
                    i += 1
            except BaseException as exc:  # surface in the main thread
                writer_errors.append(exc)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                text = render_prometheus(registry)
                assert "service_tasks_dispatched_total" in text or text
                registry.snapshot()
                registry.report()
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not writer_errors
