"""Unit tests for graceful degradation and checkpoint/resume (repro.recovery)."""

import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    RetryExhaustedError,
    SimulatedCrash,
)
from repro.faults import (
    DeliveryFaults,
    FaultPlan,
    OutageWindow,
    StragglerSpikes,
    WorkerChurn,
    verify_kill_resume,
)
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.recovery import (
    BudgetBreaker,
    Checkpoint,
    CheckpointingRunner,
    CoverageReport,
    DeadlineBreaker,
    FailureInfo,
    FailurePolicy,
)
from repro.workers.models import OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker


def make_world(seed=7, n_workers=10, budget=None, policy="degrade", **batch_kwargs):
    """A fully deterministic platform: explicit worker ids, seeded streams."""
    import numpy as np

    rng = np.random.default_rng([seed, 99])
    workers = [
        Worker(model=OneCoinModel(float(rng.uniform(0.6, 0.95))), worker_id=f"rw{i}")
        for i in range(n_workers)
    ]
    pool = WorkerPool(workers, seed=seed)
    kwargs = dict(
        batch_size=8,
        max_parallel=3,
        retry_limit=2,
        assignment_timeout=200.0,
        abandon_rate=0.05,
        retry_backoff=1.0,
        seed=seed + 2,
        failure_policy=policy,
    )
    kwargs.update(batch_kwargs)
    import math

    return SimulatedPlatform(
        pool,
        budget=math.inf if budget is None else budget,
        seed=seed + 1,
        batch=BatchConfig(**kwargs),
    )


def make_tasks(n, seed=7):
    return [
        Task(
            TaskType.SINGLE_CHOICE,
            question=f"recovery q{i}",
            options=("yes", "no"),
            truth="yes" if (seed + i) % 2 == 0 else "no",
            task_id=f"rec-s{seed}-t{i}",
        )
        for i in range(n)
    ]


def fingerprint(platform, answers):
    """Comparable view of a run: per-task answer tuples + key stats."""
    stats = platform.stats
    return (
        {
            task_id: [
                (a.worker_id, a.value, round(a.submitted_at, 9),
                 round(a.duration, 9), a.reward_paid)
                for a in got
            ]
            for task_id, got in sorted(answers.items())
        },
        (
            stats.answers_collected,
            round(stats.cost_spent, 9),
            stats.assignments_dispatched,
            stats.assignments_retried,
        ),
    )


class TestFailurePolicies:
    def test_fail_policy_raises_with_context(self):
        platform = make_world(policy="fail", abandon_rate=1.0, retry_limit=1)
        with pytest.raises(RetryExhaustedError) as excinfo:
            platform.scheduler.run(make_tasks(4), redundancy=2)
        exc = excinfo.value
        assert exc.attempts == 2
        assert exc.outcomes == ["abandoned", "abandoned"]
        assert "retry budget exhausted" in str(exc)

    def test_degrade_keeps_every_task_key(self):
        platform = make_world(policy="degrade", abandon_rate=1.0, retry_limit=1)
        tasks = make_tasks(5)
        run = platform.scheduler.run(tasks, redundancy=2)
        assert set(run.answers) == {t.task_id for t in tasks}
        assert all(not got for got in run.answers.values())
        assert all(
            run.failures[t.task_id].reason == "retries_exhausted" for t in tasks
        )
        assert run.degraded

    def test_skip_drops_failed_tasks(self):
        platform = make_world(policy="skip", abandon_rate=1.0, retry_limit=1)
        tasks = make_tasks(5)
        run = platform.scheduler.run(tasks, redundancy=2)
        assert run.answers == {}
        assert len(run.failures) == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            BatchConfig(failure_policy="panic")
        assert "panic" in str(excinfo.value)

    def test_degrade_budget_exhaustion_records_failures(self):
        platform = make_world(policy="degrade", budget=0.05, abandon_rate=0.0)
        tasks = make_tasks(12)
        run = platform.scheduler.run(tasks, redundancy=3)
        assert run.failures
        assert {f.reason for f in run.failures.values()} <= {
            "budget_exhausted",
            "breaker:budget",
        }
        spent = sum(a.reward_paid for got in run.answers.values() for a in got)
        assert spent <= platform.budget + 1e-9


class TestBreakers:
    def test_budget_breaker_halts_between_batches(self):
        platform = make_world(policy="degrade", budget=0.30, abandon_rate=0.0)
        platform.scheduler.breakers = [BudgetBreaker(reserve=0.15)]
        tasks = make_tasks(24)
        run = platform.scheduler.run(tasks, redundancy=3)
        assert any(
            info.reason == "breaker:budget" for info in run.failures.values()
        )
        assert platform.stats.cost_spent <= 0.30 + 1e-9

    def test_deadline_breaker_halts(self):
        platform = make_world(policy="degrade", abandon_rate=0.0)
        platform.scheduler.breakers = [DeadlineBreaker(deadline=1.0)]
        tasks = make_tasks(24)
        run = platform.scheduler.run(tasks, redundancy=3)
        assert any(
            info.reason == "breaker:deadline" for info in run.failures.values()
        )

    def test_breakers_ignored_under_fail_policy(self):
        platform = make_world(policy="fail", abandon_rate=0.0)
        platform.scheduler.breakers = [DeadlineBreaker(deadline=1.0)]
        run = platform.scheduler.run(make_tasks(12), redundancy=2)
        assert not run.failures

    def test_breaker_validation(self):
        with pytest.raises(ConfigurationError):
            BudgetBreaker(reserve=-1.0)
        with pytest.raises(ConfigurationError):
            DeadlineBreaker(deadline=0.0)

    def test_breaker_reset(self):
        breaker = DeadlineBreaker(deadline=5.0)
        breaker.tripped = "was open"
        breaker.reset()
        assert breaker.tripped is None


class TestCoverageReport:
    def test_validate_catches_bad_split(self):
        report = CoverageReport(
            requested=3, completed=1, partial=1, failed=0,
            answers_expected=9, answers_collected=4,
        )
        with pytest.raises(AssertionError):
            report.validate()

    def test_summary_mentions_counts(self):
        report = CoverageReport(
            requested=4, completed=2, partial=1, failed=1,
            answers_expected=12, answers_collected=7,
        )
        report.validate()
        assert "2/4 tasks complete" in report.summary()
        assert not report.complete

    def test_failure_info_str(self):
        info = FailureInfo("t1", reason="retries_exhausted", attempts=3,
                           outcomes=["abandoned", "timeout", "abandoned"])
        text = str(info)
        assert "t1" in text and "3 attempt(s)" in text and "timeout" in text


class TestCheckpointRoundTrip:
    def test_snapshot_restore_preserves_future_randomness(self, tmp_path):
        # Run half the workload, checkpoint, finish; then rebuild a fresh
        # world, restore, finish — the second halves must match exactly.
        tasks = make_tasks(16)
        first, second = tasks[:8], tasks[8:]

        original = make_world()
        original.scheduler.run(first, redundancy=3)
        Checkpoint.capture(original, scheduler=original.scheduler).save(tmp_path)
        tail_a = original.scheduler.run(second, redundancy=3)

        restored = make_world()
        Checkpoint.load(tmp_path).restore(restored, scheduler=restored.scheduler)
        tail_b = restored.scheduler.run(make_tasks(16)[8:], redundancy=3)

        assert fingerprint(original, tail_a.answers) == fingerprint(
            restored, tail_b.answers
        )

    def test_restore_rebuilds_answer_log_and_spend(self, tmp_path):
        original = make_world(budget=10.0)
        original.scheduler.run(make_tasks(8), redundancy=3)
        Checkpoint.capture(original, scheduler=original.scheduler).save(tmp_path)

        restored = make_world(budget=10.0)
        Checkpoint.load(tmp_path).restore(restored, scheduler=restored.scheduler)
        assert len(restored.answers) == len(original.answers)
        assert restored.stats.cost_spent == pytest.approx(original.stats.cost_spent)
        assert restored.remaining_budget == pytest.approx(original.remaining_budget)

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpoint.load(tmp_path / "nope")

    def test_extra_payload_round_trips(self, tmp_path):
        platform = make_world()
        Checkpoint.capture(platform, extra={"statements_done": 4}).save(tmp_path)
        assert Checkpoint.load(tmp_path).extra["statements_done"] == 4


class TestKillAndResume:
    def test_simulated_crash_raises_after_checkpoint(self, tmp_path):
        platform = make_world()
        runner = CheckpointingRunner(platform, tmp_path, redundancy=3)
        with pytest.raises(SimulatedCrash):
            runner.run(make_tasks(24), kill_after=1)
        assert (tmp_path / "checkpoint.json").exists()

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        tasks = make_tasks(24)
        baseline_platform = make_world()
        baseline = CheckpointingRunner(
            baseline_platform, tmp_path / "base", redundancy=3
        ).run(tasks)

        crashed = make_world()
        with pytest.raises(SimulatedCrash):
            CheckpointingRunner(
                crashed, tmp_path / "crash", redundancy=3
            ).run(make_tasks(24), kill_after=1)

        resumed_platform = make_world()
        resumed = CheckpointingRunner(
            resumed_platform, tmp_path / "crash", redundancy=3
        ).run(make_tasks(24), resume=True)

        assert resumed.resumed and resumed.chunks_done == baseline.chunks_done
        assert fingerprint(baseline_platform, baseline.answers) == fingerprint(
            resumed_platform, resumed.answers
        )

    def test_kill_and_resume_under_faults(self, tmp_path):
        # The full harness: outage + churn + delivery faults + stragglers,
        # killed after one chunk, resumed on a fresh platform.
        assert verify_kill_resume(7, str(tmp_path))

    def test_resume_rejects_redundancy_mismatch(self, tmp_path):
        platform = make_world()
        with pytest.raises(SimulatedCrash):
            CheckpointingRunner(platform, tmp_path, redundancy=3).run(
                make_tasks(16), kill_after=1
            )
        fresh = make_world()
        with pytest.raises(CheckpointError):
            CheckpointingRunner(fresh, tmp_path, redundancy=4).run(
                make_tasks(16), resume=True
            )

    def test_runner_requires_scheduler(self, tmp_path):
        pool = WorkerPool.heterogeneous(4, accuracy_low=0.7, accuracy_high=0.9, seed=0)
        platform = SimulatedPlatform(pool, seed=1)
        with pytest.raises(CheckpointError):
            CheckpointingRunner(platform, tmp_path)

    def test_churn_joiners_survive_restore(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            outages=(OutageWindow(start=100.0, end=300.0),),
            churn=WorkerChurn(leave_rate=0.05, join_rate=0.6),
            delivery=DeliveryFaults(duplicate_rate=0.05, late_rate=0.1),
            stragglers=StragglerSpikes(rate=0.1, multiplier=8.0),
        )
        platform = make_world(seed=5)
        platform.attach_faults(plan)
        with pytest.raises(SimulatedCrash):
            CheckpointingRunner(platform, tmp_path, redundancy=3).run(
                make_tasks(24, seed=5), kill_after=2
            )
        joined = {w.worker_id for w in platform.pool if w.worker_id.startswith("j")}

        fresh = make_world(seed=5)
        fresh.attach_faults(plan)
        CheckpointingRunner(fresh, tmp_path, redundancy=3).run(
            make_tasks(24, seed=5), resume=True
        )
        restored = {w.worker_id for w in fresh.pool if w.worker_id.startswith("j")}
        assert joined <= restored


class TestFailurePolicyParse:
    def test_parse_accepts_enum_and_string(self):
        assert FailurePolicy.parse("degrade") is FailurePolicy.DEGRADE
        assert FailurePolicy.parse(FailurePolicy.SKIP) is FailurePolicy.SKIP

    def test_parse_error_lists_options(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FailurePolicy.parse("explode")
        assert "fail" in str(excinfo.value) and "degrade" in str(excinfo.value)
