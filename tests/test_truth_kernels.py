"""Differential-equivalence harness: vectorized EM kernels vs legacy loops.

Every EM method (ZenCrowd, MACE, GLAD, Dawid–Skene) runs the same model
math through two backends: the batched log-space numpy ``kernel`` (the
default) and the original per-answer ``legacy`` loop. On seeded workloads
the two must agree on every inferred truth, agree on posteriors and worker
quality within 1e-6, and preserve ``iterations``/``converged`` semantics.

GLAD gets a bounded iteration budget here: its gradient-ascent M-step is a
chaotic iterated map, so the ulp-level differences between equivalent
floating-point summation orders (bincount vs per-answer accumulation,
``np.exp`` vs ``math.exp``) amplify exponentially with iteration count.
The per-step map itself is exact — pinned by the tight-tolerance
single-step tests below.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.obs.runtime import activate, deactivate
from repro.obs.sinks import MemorySink
from repro.obs.tracer import Tracer
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Answer
from repro.quality.truth import (
    EM_BACKENDS,
    BayesianVote,
    DawidSkene,
    Glad,
    Mace,
    ZenCrowd,
    encode_observations,
)
from repro.recovery import Checkpoint
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks

# Factories pinning the configs under which kernel/legacy equivalence is
# asserted. GLAD is capped at 10 EM iterations (see module docstring).
EM_FACTORIES = {
    "zc": lambda backend: ZenCrowd(backend=backend),
    "mace": lambda backend: Mace(backend=backend),
    "glad": lambda backend: Glad(max_iterations=10, backend=backend),
    "ds": lambda backend: DawidSkene(backend=backend),
}

WORKLOADS = {
    "hetero": lambda: _evidence(seed=7),
    "spammy": lambda: _evidence(
        seed=3, pool=WorkerPool.with_spammers(24, spammer_fraction=0.3, seed=3)
    ),
    "sparse": lambda: _evidence(seed=11, n_tasks=60, redundancy=2),
}


def _evidence(n_tasks=120, pool=None, redundancy=5, seed=7, labels=("a", "b", "c")):
    pool = pool or WorkerPool.heterogeneous(20, seed=seed)
    platform = SimulatedPlatform(pool, seed=seed + 1)
    tasks = make_choice_tasks(n_tasks, labels=labels, seed=seed)
    return platform.collect(tasks, redundancy=redundancy)


def _manual(votes):
    return {
        task_id: [Answer(task_id=task_id, worker_id=w, value=v) for w, v in pairs]
        for task_id, pairs in votes.items()
    }


def _one_task(n_a, n_b, label_a="a", label_b="b"):
    """A single task with n_a + n_b answers from distinct workers."""
    answers = [
        Answer(task_id="t", worker_id=f"wa{i}", value=label_a) for i in range(n_a)
    ] + [Answer(task_id="t", worker_id=f"wb{i}", value=label_b) for i in range(n_b)]
    return {"t": answers}


def _assert_equivalent(kernel, legacy, tol=1e-6):
    assert kernel.truths == legacy.truths
    assert kernel.iterations == legacy.iterations
    assert kernel.converged == legacy.converged
    for task_id in legacy.posteriors:
        labels = set(legacy.posteriors[task_id]) | set(kernel.posteriors[task_id])
        for label in labels:
            assert kernel.posteriors[task_id].get(label, 0.0) == pytest.approx(
                legacy.posteriors[task_id].get(label, 0.0), abs=tol
            )
    assert set(kernel.worker_quality) == set(legacy.worker_quality)
    for w in legacy.worker_quality:
        assert kernel.worker_quality[w] == pytest.approx(
            legacy.worker_quality[w], abs=tol
        )


class TestSparseEncoding:
    def test_round_trips_evidence(self):
        evidence = _manual(
            {"t1": [("w2", "b"), ("w1", "a")], "t2": [("w1", "c"), ("w2", "a")]}
        )
        obs = encode_observations(evidence)
        assert obs.task_ids == ("t1", "t2")
        assert obs.worker_ids == ("w1", "w2")
        assert obs.labels == ("a", "b", "c")
        assert obs.n_obs == 4
        # Row i encodes the i-th answer in task order.
        decoded = [
            (obs.task_ids[t], obs.worker_ids[w], obs.labels[v])
            for t, w, v in zip(obs.obs_task, obs.obs_worker, obs.obs_label)
        ]
        assert decoded == [
            ("t1", "w2", "b"), ("t1", "w1", "a"), ("t2", "w1", "c"), ("t2", "w2", "a")
        ]

    def test_candidate_mask_marks_answered_labels(self):
        evidence = _manual({"t1": [("w1", "a"), ("w2", "b")], "t2": [("w1", "c")]})
        obs = encode_observations(evidence)
        assert obs.candidate_mask.tolist() == [[True, True, False], [False, False, True]]
        assert obs.spread_counts().tolist() == [2, 2]  # single candidate floors at 2

    def test_counts(self):
        evidence = _manual({"t1": [("w1", "a"), ("w1", "a"), ("w2", "b")]})
        obs = encode_observations(evidence)
        assert obs.answers_per_task().tolist() == [3]
        assert obs.answers_per_worker().tolist() == [2, 1]

    def test_unknown_backend_rejected(self):
        for cls in (ZenCrowd, Mace, Glad, DawidSkene):
            with pytest.raises(InferenceError):
                cls(backend="numba")


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("method", sorted(EM_FACTORIES))
    def test_kernel_matches_legacy(self, method, workload):
        answers = WORKLOADS[workload]()
        kernel = EM_FACTORIES[method]("kernel").infer(answers)
        legacy = EM_FACTORIES[method]("legacy").infer(answers)
        _assert_equivalent(kernel, legacy)

    @pytest.mark.parametrize("iters", [1, 2, 3])
    def test_glad_em_map_is_exact_per_step(self, iters):
        """The GLAD kernel computes the same per-step map as the legacy
        loop to near machine precision; only long chaotic iteration
        amplifies summation-order noise (hence the capped budget above)."""
        answers = _evidence(seed=7)
        kernel = Glad(max_iterations=iters, backend="kernel").infer(answers)
        legacy = Glad(max_iterations=iters, backend="legacy").infer(answers)
        _assert_equivalent(kernel, legacy, tol=1e-12)
        for t in legacy.task_difficulty:
            assert kernel.task_difficulty[t] == pytest.approx(
                legacy.task_difficulty[t], abs=1e-12
            )

    def test_mace_spam_distributions_match(self):
        answers = WORKLOADS["spammy"]()
        kernel = Mace(backend="kernel").infer(answers)
        legacy = Mace(backend="legacy").infer(answers)
        for w in legacy.spam_distributions:
            for label, p in legacy.spam_distributions[w].items():
                assert kernel.spam_distributions[w][label] == pytest.approx(p, abs=1e-6)

    @pytest.mark.parametrize("method", ["zc", "ds", "mace", "glad"])
    def test_export_state_agrees_across_backends(self, method):
        answers = WORKLOADS["hetero"]()
        kernel = EM_FACTORIES[method]("kernel")
        legacy = EM_FACTORIES[method]("legacy")
        kernel.infer(answers)
        legacy.infer(answers)
        k_state, l_state = kernel.export_state(), legacy.export_state()
        assert k_state.keys() == l_state.keys()
        # Structural equality within tolerance.
        for key, k_val in k_state.items():
            l_val = l_state[key]
            assert set(k_val) == set(l_val)
            for entry in k_val:
                if isinstance(k_val[entry], dict):
                    for label in k_val[entry]:
                        assert k_val[entry][label] == pytest.approx(
                            l_val[entry][label], abs=1e-6
                        )
                else:
                    assert k_val[entry] == pytest.approx(l_val[entry], abs=1e-6)

    def test_zencrowd_warm_start_equivalent(self):
        answers = _evidence(seed=5, n_tasks=60)
        state = {"reliability": {f"w{i}": 0.6 + 0.01 * i for i in range(10)}}
        results = []
        for backend in EM_BACKENDS:
            algo = ZenCrowd(backend=backend)
            algo.warm_start(state)
            results.append(algo.infer(answers))
        _assert_equivalent(*results)


class TestUnderflowRegression:
    """Satellite 1: linear-space likelihoods underflow on answer-heavy tasks.

    Both scenarios have an unambiguous majority label, yet the legacy
    E-steps collapse to a uniform posterior (and an arbitrary repr
    tie-break winner) because every label's linear-space likelihood hits
    0.0 / the 1e-300 floor. The log-space kernels keep the evidence.
    """

    def test_zencrowd_240_answers_confident_posterior(self):
        evidence = _one_task(130, 110)  # 240 answers on one task
        result = ZenCrowd(prior_reliability=0.999).infer(evidence)
        assert result.truths["t"] == "a"
        assert result.confidences["t"] > 0.99  # non-uniform, confident

    def test_zencrowd_legacy_collapses_to_uniform(self):
        evidence = _one_task(130, 110)
        legacy = ZenCrowd(prior_reliability=0.999, backend="legacy").infer(evidence)
        # The bug this PR fixes: total underflow -> uniform fallback, and
        # the repr tie-break then picks the *minority* label.
        assert legacy.confidences["t"] == pytest.approx(0.5)
        assert legacy.truths["t"] == "b"

    def test_mace_answer_heavy_task_confident_posterior(self):
        evidence = _one_task(1000, 900)  # 1900 answers on one task
        result = Mace(prior_competence=0.99).infer(evidence)
        assert result.truths["t"] == "a"
        assert result.confidences["t"] > 0.99

    def test_mace_legacy_floor_saturates_to_uniform(self):
        evidence = _one_task(1000, 900)
        legacy = Mace(prior_competence=0.99, backend="legacy").infer(evidence)
        assert legacy.confidences["t"] == pytest.approx(0.5)


class TestDegenerateInputs:
    """Satellite 4: degenerate evidence shapes across all EM methods."""

    @pytest.mark.parametrize("backend", EM_BACKENDS)
    @pytest.mark.parametrize("method", sorted(EM_FACTORIES))
    def test_single_label_evidence(self, method, backend):
        evidence = _manual(
            {f"t{i}": [("w1", "only"), ("w2", "only"), ("w3", "only")] for i in range(4)}
        )
        result = EM_FACTORIES[method](backend).infer(evidence)
        assert all(v == "only" for v in result.truths.values())
        for post in result.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0)
        assert all(c == pytest.approx(1.0) for c in result.confidences.values())

    def test_single_label_evidence_bayes(self):
        evidence = _manual({"t1": [("w1", "only")], "t2": [("w1", "only")]})
        result = BayesianVote().infer(evidence)
        assert result.truths == {"t1": "only", "t2": "only"}

    @pytest.mark.parametrize("backend", EM_BACKENDS)
    @pytest.mark.parametrize("method", sorted(EM_FACTORIES))
    def test_one_worker_answers_everything(self, method, backend):
        evidence = _manual(
            {f"t{i}": [("solo", "a" if i % 2 else "b")] for i in range(10)}
        )
        result = EM_FACTORIES[method](backend).infer(evidence)
        for i in range(10):
            assert result.truths[f"t{i}"] == ("a" if i % 2 else "b")
        assert 0.0 <= result.worker_quality["solo"] <= 1.0
        for post in result.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("backend", EM_BACKENDS)
    @pytest.mark.parametrize("method", sorted(EM_FACTORIES))
    def test_single_candidate_task_among_contested(self, method, backend):
        """A task whose candidate set is one label (the k = max(2, .)
        guard) coexisting with a contested task."""
        evidence = _manual(
            {
                "easy": [("w1", "a"), ("w2", "a"), ("w3", "a")],
                "hard": [("w1", "a"), ("w2", "b"), ("w3", "b")],
            }
        )
        result = EM_FACTORIES[method](backend).infer(evidence)
        assert result.truths["easy"] == "a"
        assert result.truths["hard"] == "b"
        for post in result.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0)


class TestResultFieldsAndCheckpoint:
    """Satellite 3: task_difficulty / spam_distributions are declared
    InferenceResult fields that survive copies and checkpoint export."""

    def test_fields_survive_dataclass_copy(self):
        answers = _evidence(seed=9, n_tasks=30, redundancy=3)
        glad = Glad(max_iterations=5).infer(answers)
        mace = Mace(max_iterations=5).infer(answers)
        assert glad.task_difficulty and not glad.spam_distributions
        assert mace.spam_distributions and not mace.task_difficulty
        # dataclasses.replace / asdict no longer drop them.
        assert dataclasses.replace(glad).task_difficulty == glad.task_difficulty
        assert (
            dataclasses.asdict(mace)["spam_distributions"] == mace.spam_distributions
        )

    def test_default_fields_empty_dicts(self):
        from repro.quality.truth import InferenceResult

        result = InferenceResult(truths={"t": "a"})
        assert result.task_difficulty == {}
        assert result.spam_distributions == {}

    @pytest.mark.parametrize("algo_cls", [Mace, Glad])
    def test_em_state_checkpoint_round_trip(self, algo_cls, tmp_path):
        pool = WorkerPool.heterogeneous(8, seed=1)
        platform = SimulatedPlatform(pool, seed=2)
        tasks = make_choice_tasks(30, seed=3)
        answers = platform.collect(tasks, redundancy=3)
        algo = algo_cls(max_iterations=5)
        algo.infer(answers)
        exported = algo.export_state()
        assert exported  # EM methods must export warm-start state

        ck = Checkpoint.capture(platform, inference=algo)
        ck.save(tmp_path)
        loaded = Checkpoint.load(tmp_path)

        fresh_pool = WorkerPool.heterogeneous(8, seed=1)
        fresh_platform = SimulatedPlatform(fresh_pool, seed=2)
        fresh = algo_cls(max_iterations=5)
        loaded.restore(fresh_platform, inference=fresh)
        # The JSON round trip preserves every exported parameter exactly.
        assert loaded.state["inference"] == exported
        # Warm starting changes initialization only — the restored instance
        # must still run and produce normalized posteriors.
        warm = fresh.infer(answers)
        assert warm.truths.keys() == {t.task_id for t in tasks}
        for post in warm.posteriors.values():
            assert sum(post.values()) == pytest.approx(1.0)

    def test_glad_difficulty_round_trips_through_json(self):
        answers = _evidence(seed=9, n_tasks=20, redundancy=3)
        algo = Glad(max_iterations=5)
        result = algo.infer(answers)
        state = json.loads(json.dumps(algo.export_state()))
        assert state["task_difficulty"] == pytest.approx(result.task_difficulty)
        fresh = Glad(max_iterations=5)
        fresh.warm_start(state)
        rerun = fresh.infer(answers)
        assert rerun.truths == result.truths


class TestObservabilityContract:
    @pytest.mark.parametrize("method", sorted(EM_FACTORIES))
    def test_kernel_emits_em_span_and_iterations(self, method):
        sink = MemorySink()
        tracer = Tracer(sink)
        activate(tracer=tracer)
        try:
            with tracer.span("root"):
                EM_FACTORIES[method]("kernel").infer(_evidence(seed=5, n_tasks=20))
        finally:
            deactivate(tracer=tracer)
        names = [s["name"] for s in sink.spans]
        truth_spans = [s for s in sink.spans if s["name"].startswith("truth.")]
        assert truth_spans, names
        span = truth_spans[0]
        assert span["tags"]["iterations"] >= 1
        assert "converged" in span["tags"]
        iters = [s for s in sink.spans if s["name"] == "em.iteration"]
        assert iters and all(s["parent_id"] == span["span_id"] for s in iters)
