"""Meta-tests keeping the documentation honest.

These assert the claims DESIGN.md / README.md make about the repository's
structure — experiment coverage, method registries, example inventory —
so the docs cannot silently drift from the code.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

EXPERIMENT_BENCHES = {
    "T1": "bench_truth_inference.py",
    "T2": "bench_spammer_robustness.py",
    "T3": "bench_crowd_join.py",
    "T4": "bench_crowd_sort.py",
    "T5": "bench_crowd_count.py",
    "T6": "bench_latency.py",
    "T7": "bench_crowdsql.py",
    "T8": "bench_deco.py",
    "T9": "bench_task_design.py",
    "T10": "bench_worker_qc.py",
    "F1": "bench_task_assignment.py",
    "F2": "bench_early_termination.py",
    "F3": "bench_deduction.py",
    "F4": "bench_crowd_max.py",
    "F5": "bench_crowd_collect.py",
    "F6": "bench_crowd_filter.py",
    "F7": "bench_domain_assignment.py",
    "F8": "bench_skyline.py",
    "F9": "bench_hybrid.py",
    "F10": "bench_planning.py",
    "B1": "bench_batch_runtime.py",
    "B3": "bench_columnar.py",
    "B8": "bench_hedging.py",
    "B9": "bench_streaming.py",
    "B10": "bench_service.py",
    "C1": "bench_answer_cache.py",
}


class TestExperimentInventory:
    def test_every_indexed_bench_exists(self):
        for experiment, bench in EXPERIMENT_BENCHES.items():
            assert (REPO / "benchmarks" / bench).exists(), (experiment, bench)

    def test_no_unindexed_benches(self):
        on_disk = {
            p.name for p in (REPO / "benchmarks").glob("bench_*.py")
        }
        assert on_disk == set(EXPERIMENT_BENCHES.values())

    def test_design_md_mentions_every_experiment(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for experiment in EXPERIMENT_BENCHES:
            assert f"| {experiment} |" in design, experiment

    def test_experiments_md_has_a_section_per_experiment(self):
        text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for experiment in EXPERIMENT_BENCHES:
            assert f"## {experiment} —" in text, experiment


class TestRepositoryHygiene:
    """Build products stay out of the tree and artifacts land in one place."""

    def _tracked_files(self):
        import subprocess

        try:
            out = subprocess.run(
                ["git", "ls-files"],
                cwd=REPO,
                capture_output=True,
                text=True,
                check=True,
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("not a git checkout")
        return out.splitlines()

    def test_no_tracked_bytecode_or_artifacts(self):
        offenders = [
            f
            for f in self._tracked_files()
            if f.endswith(".pyc")
            or "__pycache__" in f
            or (f.rsplit("/", 1)[-1].startswith("BENCH_") and f.endswith(".json"))
        ]
        assert not offenders, offenders

    def test_gitignore_covers_build_products(self):
        ignored = (REPO / ".gitignore").read_text(encoding="utf-8").splitlines()
        for pattern in ("__pycache__/", "*.pyc", "BENCH_*.json"):
            assert pattern in ignored, pattern

    def test_benches_write_artifacts_via_helper(self):
        """Every artifact-writing bench routes through bench_artifact()."""
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            text = bench.read_text(encoding="utf-8")
            if "BENCH_" not in text:
                continue
            assert "bench_artifact(" in text, bench.name
            assert 'CROWDDM_BENCH_DIR", "."' not in text, bench.name

    def test_no_stray_artifacts_in_benchmarks_dir(self):
        assert not list((REPO / "benchmarks").glob("BENCH_*.json"))


class TestRegistries:
    def test_seven_categorical_methods(self):
        from repro.quality.truth import CATEGORICAL_METHODS

        assert set(CATEGORICAL_METHODS) == {
            "mv", "wmv", "zc", "ds", "glad", "bayes", "mace",
        }

    def test_three_numeric_methods(self):
        from repro.quality.truth import NUMERIC_METHODS

        assert set(NUMERIC_METHODS) == {"mean", "median", "catd"}

    def test_four_similarity_functions(self):
        from repro.cost.similarity import SIMILARITY_FUNCTIONS

        assert set(SIMILARITY_FUNCTIONS) == {"jaccard", "ngram", "edit", "cosine"}

    def test_all_task_types_have_a_capable_worker_model(self, rng):
        """OneCoinModel must produce a sane answer for every task type."""
        from repro.platform.task import (
            Task,
            TaskType,
            collect,
            compare,
            fill,
            multi_choice,
            numeric,
            rate,
            single_choice,
        )
        from repro.workers.models import OneCoinModel

        model = OneCoinModel(0.9)
        tasks = [
            single_choice("q", ("a", "b"), truth="a"),
            multi_choice("q", ("a", "b"), truth={"a"}),
            fill("q", truth="x"),
            compare("l", "r", truth="left"),
            rate("q", truth=3.0),
            numeric("q", truth=10.0),
            collect("q"),
        ]
        covered = {t.task_type for t in tasks}
        assert covered == set(TaskType)
        for task in tasks:
            model.answer(task, rng)  # must not raise


class TestExamplesInventory:
    def test_examples_exist_and_have_docstrings(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 8
        for example in examples:
            text = example.read_text(encoding="utf-8")
            assert text.startswith('"""'), example.name
            assert "__main__" in text, example.name

    def test_readme_points_at_real_paths(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for path in ("src/repro/data", "src/repro/deco", "src/repro/hybrid",
                     "docs/TUTORIAL.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert path.split("/")[-1] in readme
            assert (REPO / path).exists(), path


class TestPublicApiSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core", "repro.data", "repro.platform", "repro.workers",
            "repro.quality", "repro.quality.truth", "repro.quality.assignment",
            "repro.cost", "repro.latency", "repro.operators", "repro.lang",
            "repro.deco", "repro.hybrid", "repro.experiments",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, f"{module}.{name}"


class TestDocstringCoverage:
    """Every public module, class, function, and non-override method has a
    docstring (overrides inherit their contract from a documented base)."""

    @staticmethod
    def _inherited_doc(cls, method_name):
        for base in cls.__mro__[1:]:
            method = base.__dict__.get(method_name)
            if method is not None and getattr(method, "__doc__", None):
                return True
        return False

    def test_all_public_items_documented(self):
        import importlib
        import inspect
        import pkgutil

        import repro

        missing = []
        for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if modinfo.name.endswith("__main__"):
                continue
            mod = importlib.import_module(modinfo.name)
            if not mod.__doc__:
                missing.append(modinfo.name)
            for name, obj in vars(mod).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) and obj.__module__ == modinfo.name:
                    if not obj.__doc__:
                        missing.append(f"{modinfo.name}.{name}")
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_") or not inspect.isfunction(meth):
                            continue
                        if not meth.__doc__ and not self._inherited_doc(obj, mname):
                            missing.append(f"{modinfo.name}.{name}.{mname}")
                elif inspect.isfunction(obj) and obj.__module__ == modinfo.name:
                    if not obj.__doc__:
                        missing.append(f"{modinfo.name}.{name}")
        assert not missing, f"undocumented public items: {missing}"
