"""Unit tests for repro.operators (filter, join, sort, topk, count,
collect, fill, categorize)."""

import numpy as np
import pytest

from repro.cost.pruning import SimilarityPruner
from repro.data.schema import SchemaBuilder
from repro.data.table import Table
from repro.errors import ConfigurationError
from repro.experiments.datasets import er_dataset, ranking_dataset
from repro.operators.categorize import CrowdCategorize
from repro.operators.collect import (
    CrowdCollect,
    bind_zipf_knowledge,
    chao84_estimate,
    chao92_estimate,
    good_turing_coverage,
)
from repro.operators.count import CrowdCount
from repro.operators.fill import CrowdFill
from repro.operators.filter import AdaptiveFilter, FixedKFilter
from repro.operators.join import CrowdJoin, crossing_join
from repro.operators.sort import (
    CrowdComparator,
    all_pairs_sort,
    hybrid_sort,
    merge_sort_crowd,
    rating_sort,
)
from repro.operators.topk import (
    expected_tournament_cost,
    topk_tournament,
    tournament_max,
)
from repro.platform.platform import SimulatedPlatform
from repro.workers.models import CollectorModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

from collections import Counter


def _platform(accuracy=0.92, n=15, seed=3, kind="uniform", **kwargs):
    if kind == "uniform":
        pool = WorkerPool.uniform(n, accuracy, seed=seed)
    elif kind == "comparison":
        pool = WorkerPool.comparison_pool(n, kwargs.get("sharpness", 10.0), seed=seed)
    else:
        raise ValueError(kind)
    return SimulatedPlatform(pool, seed=seed + 1)


class TestFilter:
    ITEMS = list(range(30))
    TRUTH = [i % 3 == 0 for i in range(30)]

    def test_fixed_k_accuracy(self):
        platform = _platform()
        result = FixedKFilter(
            platform, "multiple of 3?", truth_fn=lambda i: self.TRUTH[i], redundancy=5
        ).run(self.ITEMS)
        assert result.accuracy_against(self.TRUTH) > 0.9
        assert result.questions_asked == 150

    def test_fixed_k_redundancy_validated(self):
        with pytest.raises(ConfigurationError):
            FixedKFilter(_platform(), "q", redundancy=0)

    def test_adaptive_cheaper_than_fixed(self):
        fixed = FixedKFilter(
            _platform(seed=7), "q", truth_fn=lambda i: self.TRUTH[i], redundancy=5
        ).run(self.ITEMS)
        adaptive = AdaptiveFilter(
            _platform(seed=7), "q", truth_fn=lambda i: self.TRUTH[i], margin=2, max_answers=5
        ).run(self.ITEMS)
        assert adaptive.questions_asked < fixed.questions_asked
        assert adaptive.accuracy_against(self.TRUTH) >= fixed.accuracy_against(self.TRUTH) - 0.05

    def test_adaptive_margin_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveFilter(_platform(), "q", margin=0)
        with pytest.raises(ConfigurationError):
            AdaptiveFilter(_platform(), "q", margin=3, max_answers=2)

    def test_kept_matches_decisions(self):
        platform = _platform(accuracy=1.0)
        result = FixedKFilter(
            platform, "q", truth_fn=lambda i: self.TRUTH[i], redundancy=1
        ).run(self.ITEMS)
        assert result.kept == [i for i in self.ITEMS if self.TRUTH[i]]

    def test_cost_tracked(self):
        platform = _platform()
        result = FixedKFilter(
            platform, "q", truth_fn=lambda i: True, redundancy=3
        ).run(self.ITEMS[:5])
        assert result.cost == pytest.approx(0.15)


class TestJoin:
    @pytest.fixture
    def er(self):
        return er_dataset(n_entities=12, records_per_entity=(2, 3), seed=5)

    def test_pruning_slashes_questions(self, er):
        full = CrowdJoin(_platform(seed=11), er.truth_fn, redundancy=3).run(er.records)
        pruned = CrowdJoin(
            _platform(seed=11), er.truth_fn, pruner=SimilarityPruner(0.4), redundancy=3
        ).run(er.records)
        assert pruned.questions_asked < full.questions_asked / 2

    def test_transitivity_deduces(self, er):
        result = CrowdJoin(
            _platform(seed=13),
            er.truth_fn,
            pruner=SimilarityPruner(0.3),
            use_transitivity=True,
            redundancy=3,
        ).run(er.records)
        assert result.deduced_pairs > 0

    def test_f1_reasonable_with_pruning(self, er):
        result = CrowdJoin(
            _platform(accuracy=0.95, seed=17),
            er.truth_fn,
            pruner=SimilarityPruner(0.4),
            use_transitivity=True,
            redundancy=3,
        ).run(er.records)
        _p, _r, f1 = result.precision_recall_f1(er.true_pairs)
        assert f1 > 0.75

    def test_clusters_partition_records(self, er):
        result = CrowdJoin(
            _platform(seed=19), er.truth_fn, pruner=SimilarityPruner(0.4)
        ).run(er.records)
        covered = sorted(i for cluster in result.clusters for i in cluster)
        assert covered == list(range(len(er.records)))

    def test_matched_pairs_closed_under_clusters(self, er):
        result = CrowdJoin(
            _platform(seed=23), er.truth_fn, pruner=SimilarityPruner(0.4),
            use_transitivity=True,
        ).run(er.records)
        for cluster in result.clusters:
            ordered = sorted(cluster)
            for x in range(len(ordered)):
                for y in range(x + 1, len(ordered)):
                    assert (ordered[x], ordered[y]) in result.matched_pairs

    def test_redundancy_validated(self):
        with pytest.raises(ConfigurationError):
            CrowdJoin(_platform(), lambda a, b: True, redundancy=0)

    def test_crossing_join(self):
        left = ["swift falcon 1", "amber orchid 2"]
        right = ["falcon swift 1", "cobalt summit 3"]
        result = crossing_join(
            _platform(accuracy=0.95, seed=29),
            left,
            right,
            truth_fn=lambda a, b: set(a.split()) == set(b.split()),
            redundancy=3,
        )
        assert result.matched_pairs == {(0, 2)}

    def test_perfect_f1_metrics(self):
        from repro.operators.join import JoinResult

        result = JoinResult(
            matched_pairs=set(), clusters=[], pairs_considered=0,
            questions_asked=0, answers_bought=0, cost=0.0,
        )
        assert result.precision_recall_f1(set()) == (1.0, 1.0, 1.0)


class TestSort:
    @pytest.fixture
    def ranking(self):
        return ranking_dataset(n_items=12, seed=9)

    def _comparator(self, ranking, seed=31, redundancy=3, **kwargs):
        platform = _platform(kind="comparison", seed=seed, n=20)
        return CrowdComparator(
            platform, ranking.items, ranking.score_fn, redundancy=redundancy, **kwargs
        )

    def test_all_pairs_cost(self, ranking):
        comparator = self._comparator(ranking)
        result = all_pairs_sort(comparator)
        assert result.comparisons_asked == 12 * 11 // 2

    def test_merge_sort_cheaper(self, ranking):
        ap = all_pairs_sort(self._comparator(ranking, seed=37))
        ms = merge_sort_crowd(self._comparator(ranking, seed=37))
        assert ms.comparisons_asked < ap.comparisons_asked

    def test_high_sharpness_recovers_order(self, ranking):
        result = merge_sort_crowd(self._comparator(ranking, seed=41))
        assert result.kendall_tau(ranking.true_order) > 0.8

    def test_comparator_caches(self, ranking):
        comparator = self._comparator(ranking, seed=43)
        first = comparator.above(0, 1)
        asked = comparator.comparisons_asked
        assert comparator.above(1, 0) == (not first)
        assert comparator.comparisons_asked == asked  # cache hit

    def test_comparator_deduction_skips_purchases(self, ranking):
        comparator = self._comparator(ranking, seed=47, use_deduction=True)
        # Establish 0>1, 1>2 (whatever verdicts come back, record them).
        comparator.above(0, 1)
        comparator.above(1, 2)
        asked = comparator.comparisons_asked
        comparator.above(0, 2)
        # Either deduced (no new ask) or genuinely needed (contradictory
        # verdicts); with perfect workers it must be deduced.
        assert comparator.comparisons_asked <= asked + 1

    def test_self_comparison_rejected(self, ranking):
        with pytest.raises(ConfigurationError):
            self._comparator(ranking).above(3, 3)

    def test_rating_sort_shape(self, ranking):
        platform = _platform(kind="comparison", seed=53, n=20)
        result = rating_sort(platform, ranking.items, ranking.score_fn, redundancy=3)
        assert sorted(result.order) == list(range(12))
        assert result.comparisons_asked == 0
        assert len(result.ratings) == 12

    def test_hybrid_improves_rating(self, ranking):
        taus_rating, taus_hybrid = [], []
        for seed in (59, 61, 67):
            platform = _platform(kind="comparison", seed=seed, n=20)
            taus_rating.append(
                rating_sort(platform, ranking.items, ranking.score_fn, 3)
                .kendall_tau(ranking.true_order)
            )
            platform2 = _platform(kind="comparison", seed=seed, n=20)
            taus_hybrid.append(
                hybrid_sort(platform2, ranking.items, ranking.score_fn, 3,
                            close_threshold=2.0)
                .kendall_tau(ranking.true_order)
            )
        assert np.mean(taus_hybrid) >= np.mean(taus_rating) - 0.02


class TestTopK:
    @pytest.fixture
    def ranking(self):
        return ranking_dataset(n_items=16, seed=71)

    def _comparator(self, ranking, seed=73):
        platform = _platform(kind="comparison", seed=seed, n=25, sharpness=40.0)
        return CrowdComparator(platform, ranking.items, ranking.score_fn, redundancy=5)

    def test_max_finds_best(self, ranking):
        result = tournament_max(self._comparator(ranking))
        assert result.winners[0] == ranking.true_order[0]
        assert result.rounds == 4  # log2(16)

    def test_fan_in_trades_rounds_for_comparisons(self, ranking):
        narrow = tournament_max(self._comparator(ranking, seed=79), fan_in=2)
        wide = tournament_max(self._comparator(ranking, seed=79), fan_in=4)
        assert wide.rounds < narrow.rounds
        assert wide.comparisons_asked >= narrow.comparisons_asked

    def test_fan_in_validated(self, ranking):
        with pytest.raises(ConfigurationError):
            tournament_max(self._comparator(ranking), fan_in=1)

    def test_topk_returns_k_best(self, ranking):
        result = topk_tournament(self._comparator(ranking, seed=83), k=3)
        assert set(result.winners) == set(ranking.true_order[:3])

    def test_topk_reuses_cache(self, ranking):
        comparator = self._comparator(ranking, seed=89)
        result = topk_tournament(comparator, k=3)
        # Repeated tournaments without reuse would cost ~3*(n-1) at fan-in 2;
        # cache reuse must bring it well under that.
        assert result.comparisons_asked < 3 * 15

    def test_topk_k_validated(self, ranking):
        with pytest.raises(ConfigurationError):
            topk_tournament(self._comparator(ranking), k=0)
        with pytest.raises(ConfigurationError):
            topk_tournament(self._comparator(ranking), k=99)

    def test_expected_cost_formula(self):
        comparisons, rounds = expected_tournament_cost(16, 2)
        assert comparisons == 15
        assert rounds == 4
        comparisons4, rounds4 = expected_tournament_cost(16, 4)
        assert rounds4 == 2
        assert comparisons4 == 4 * 6 + 6  # 4 groups of C(4,2), final C(4,2)


class TestCount:
    def test_estimate_near_truth(self):
        items = list(range(2000))
        truth_fn = lambda i: i % 5 == 0  # 20%
        platform = _platform(accuracy=0.95, n=25, seed=97)
        counter = CrowdCount(platform, "q", truth_fn, redundancy=5, seed=1)
        result = counter.run(items, sample_size=200)
        assert abs(result.value - 400) / 400 < 0.3
        assert result.questions_asked == 1000

    def test_interval_widens_with_smaller_sample(self):
        items = list(range(1000))
        platform = _platform(accuracy=1.0, n=25, seed=101)
        counter = CrowdCount(platform, "q", lambda i: i < 500, redundancy=1, seed=2)
        small = counter.run(items, sample_size=30)
        platform2 = _platform(accuracy=1.0, n=25, seed=101)
        counter2 = CrowdCount(platform2, "q", lambda i: i < 500, redundancy=1, seed=2)
        large = counter2.run(items, sample_size=300)
        width = lambda e: e.interval[1] - e.interval[0]
        assert width(large.estimate) < width(small.estimate)

    def test_sample_size_validated(self):
        platform = _platform()
        counter = CrowdCount(platform, "q", lambda i: True)
        with pytest.raises(ConfigurationError):
            counter.run([1, 2, 3], sample_size=0)


class TestCollect:
    def _collector_platform(self, universe, n_workers=10, knowledge=25, seed=7):
        pool = WorkerPool(
            [Worker(model=CollectorModel()) for _ in range(n_workers)], seed=seed
        )
        bind_zipf_knowledge(pool, universe, knowledge_size=knowledge, seed=seed + 1)
        return SimulatedPlatform(pool, seed=seed + 2)

    def test_estimators_on_known_frequencies(self):
        freqs = Counter({"a": 5, "b": 2, "c": 1, "d": 1})
        assert good_turing_coverage(freqs) == pytest.approx(1 - 2 / 9)
        assert chao84_estimate(freqs) == pytest.approx(4 + 4 / 2)  # f1=2, f2=1
        assert chao92_estimate(freqs) >= 4.0

    def test_coverage_empty(self):
        assert good_turing_coverage(Counter()) == 0.0
        assert chao92_estimate(Counter()) == 0.0

    def test_all_singletons_falls_back_to_chao84(self):
        freqs = Counter({"a": 1, "b": 1, "c": 1})
        assert chao92_estimate(freqs) == chao84_estimate(freqs)

    def test_collect_discovers_and_estimates(self):
        universe = [f"item{i}" for i in range(50)]
        platform = self._collector_platform(universe, knowledge=20)
        result = CrowdCollect(platform, "name an item").run(max_queries=200)
        assert 15 <= result.distinct_count <= 50
        assert result.estimated_richness >= result.distinct_count
        assert result.recall_against(universe) == result.distinct_count / 50
        assert result.queries_issued == 200
        assert result.richness_trajectory  # checkpoints recorded

    def test_coverage_stop(self):
        universe = [f"item{i}" for i in range(10)]
        platform = self._collector_platform(universe, knowledge=10)
        result = CrowdCollect(platform, "q").run(
            max_queries=500, stop_at_coverage=0.9
        )
        assert result.queries_issued < 500

    def test_bind_knowledge_validated(self):
        pool = WorkerPool([Worker(model=CollectorModel())], seed=1)
        with pytest.raises(ConfigurationError):
            bind_zipf_knowledge(pool, ["a"], knowledge_size=5)

    def test_max_queries_validated(self):
        platform = self._collector_platform(["a", "b"], knowledge=2)
        with pytest.raises(ConfigurationError):
            CrowdCollect(platform, "q").run(max_queries=0)


class TestFill:
    def _table(self):
        schema = (
            SchemaBuilder().string("city", nullable=False).crowd_string("country")
            .crowd_string("continent").key("city").build()
        )
        table = Table("cities", schema)
        table.insert_many([{"city": c} for c in ("paris", "rome", "tokyo")])
        return table

    TRUTH = {
        "paris": {"country": "france", "continent": "europe"},
        "rome": {"country": "italy", "continent": "europe"},
        "tokyo": {"country": "japan", "continent": "asia"},
    }

    def test_fills_all_cells(self):
        table = self._table()
        filler = CrowdFill(
            _platform(accuracy=0.95),
            truth_fn=lambda row, col: self.TRUTH[row["city"]][col],
            redundancy=3,
        )
        result = filler.run(table)
        assert result.filled_cells == 6
        assert table.completeness() == 1.0

    def test_column_restriction(self):
        table = self._table()
        filler = CrowdFill(
            _platform(),
            truth_fn=lambda row, col: self.TRUTH[row["city"]][col],
        )
        result = filler.run(table, columns=("country",))
        assert result.filled_cells == 3
        assert table.cnull_cells() == [(i, "continent") for i in (1, 2, 3)]

    def test_limit(self):
        table = self._table()
        filler = CrowdFill(
            _platform(),
            truth_fn=lambda row, col: self.TRUTH[row["city"]][col],
        )
        result = filler.run(table, limit=2)
        assert result.filled_cells == 2

    def test_accuracy_helper(self):
        table = self._table()
        filler = CrowdFill(
            _platform(accuracy=1.0),
            truth_fn=lambda row, col: self.TRUTH[row["city"]][col],
            redundancy=1,
        )
        result = filler.run(table)
        expected = {
            (rowid, col): self.TRUTH[table.row(rowid)["city"]][col]
            for rowid, col in result.values
        }
        assert filler.accuracy_against(result, expected) == 1.0

    def test_empty_table_noop(self):
        schema = SchemaBuilder().string("k").crowd_string("v").build()
        result = CrowdFill(_platform(), truth_fn=lambda r, c: "x").run(Table("t", schema))
        assert result.filled_cells == 0 and result.cost == 0.0


class TestCategorize:
    ITEMS = ["lion", "eagle", "shark", "tiger", "sparrow", "salmon", "bear", "owl"]
    TRUTH = {
        "lion": "mammal", "tiger": "mammal", "bear": "mammal",
        "eagle": "bird", "sparrow": "bird", "owl": "bird",
        "shark": "fish", "salmon": "fish",
    }

    def test_accuracy_and_groups(self):
        op = CrowdCategorize(
            _platform(accuracy=0.95),
            ("mammal", "bird", "fish"),
            truth_fn=self.TRUTH.get,
            redundancy=5,
        )
        result = op.run(self.ITEMS)
        assert result.accuracy_against([self.TRUTH[i] for i in self.ITEMS]) >= 0.85
        grouped = sorted(i for members in result.groups.values() for i in members)
        assert grouped == list(range(len(self.ITEMS)))

    def test_needs_two_categories(self):
        with pytest.raises(ConfigurationError):
            CrowdCategorize(_platform(), ("only",))

    def test_truth_outside_categories_rejected(self):
        op = CrowdCategorize(
            _platform(), ("a", "b"), truth_fn=lambda item: "z"
        )
        with pytest.raises(ConfigurationError):
            op.run(["x"])
