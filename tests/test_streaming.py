"""Streaming pipelined executor: determinism, cancellation, and recovery.

The contract under test (DESIGN.md §12): with ``pipeline=on`` and no early
termination, rows *and* stats are bit-identical to the barrier executor at
the same seed; TOP-K/LIMIT cancels still-pending HITs through the
scheduler's cancel seam without double-counting spend or poisoning the
answer cache; unsupported plan shapes fall back to the barrier path.
"""

import pytest

from repro.data.database import Database
from repro.data.expressions import And, Comparison, CrowdPredicate, col, lit
from repro.data.persistence import load_database, save_database
from repro.data.schema import SchemaBuilder
from repro.lang.executor import CrowdOracle, Executor
from repro.lang.interpreter import CrowdSQLSession
from repro.lang.planner import (
    CrowdFilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderNode,
    ScanNode,
)
from repro.lang.streaming import StreamingExecutor, _Unsupported
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import QueryProfiler
from repro.obs.prom import render_prometheus
from repro.platform.batch import BatchConfig
from repro.platform.cache import AnswerCache
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.recovery import Checkpoint
from repro.workers.pool import WorkerPool

N_ITEMS = 60

FILTER_SQL = (
    "SELECT name, price FROM items "
    "WHERE price > 10 AND CROWDFILTER(name, 'is it in stock?')"
)
TOPK_SQL = (
    "SELECT name, price FROM items "
    "WHERE CROWDFILTER(name, 'is it in stock?') "
    "ORDER BY price DESC LIMIT 5"
)


def make_database() -> Database:
    database = Database()
    items = (
        SchemaBuilder().integer("id").string("name").integer("cat").integer("price").build()
    )
    database.create_table(
        "items",
        items,
        rows=[
            {"id": i, "name": f"item {i}", "cat": i % 7, "price": (i * 37) % 100}
            for i in range(N_ITEMS)
        ],
    )
    labels = SchemaBuilder().integer("ref").string("label").build()
    database.create_table(
        "labels", labels, rows=[{"ref": r, "label": f"group {r}"} for r in range(7)]
    )
    return database


def make_platform(
    accuracy: float | None = None,
    seed: int = 5,
    metrics: MetricsRegistry | None = None,
) -> SimulatedPlatform:
    """8 lanes so pipelining has parallelism to exploit."""
    if accuracy is None:
        pool = WorkerPool.heterogeneous(
            12, accuracy_low=0.75, accuracy_high=0.97, seed=seed
        )
    else:
        pool = WorkerPool.uniform(12, accuracy, seed=seed)
    return SimulatedPlatform(
        pool,
        seed=seed + 1,
        batch=BatchConfig(batch_size=16, max_parallel=8, seed=seed + 2),
        metrics=metrics,
    )


def make_oracle() -> CrowdOracle:
    return CrowdOracle(
        filter_fn=lambda value, _q: int(str(value).split()[-1]) % 3 == 0
    )


def make_session(
    pipeline: bool,
    accuracy: float | None = None,
    seed: int = 5,
    metrics: MetricsRegistry | None = None,
    profiler: QueryProfiler | None = None,
) -> CrowdSQLSession:
    return CrowdSQLSession(
        database=make_database(),
        platform=make_platform(accuracy, seed, metrics),
        oracle=make_oracle(),
        redundancy=3,
        pipeline=pipeline,
        profiler=profiler,
    )


def crowd_filter(question: str = "is it in stock?") -> CrowdPredicate:
    return CrowdPredicate("filter", (col("name"),), question=question)


def join_plan() -> LogicalPlan:
    predicate = And(Comparison(">", col("price"), lit(10)), crowd_filter())
    root = JoinNode(
        CrowdFilterNode(ScanNode("items"), predicate),
        ScanNode("labels"),
        Comparison("=", col("cat"), col("ref")),
    )
    return LogicalPlan(root=root)


def topk_plan(limit: int = 5) -> LogicalPlan:
    root = LimitNode(
        OrderNode(
            CrowdFilterNode(ScanNode("items"), crowd_filter()),
            (("price", False), ("id", True)),
        ),
        limit,
    )
    return LogicalPlan(root=root)


def run_plan(plan: LogicalPlan, pipelined: bool, accuracy: float | None = None):
    """One fresh platform per run; returns (query result, platform)."""
    platform = make_platform(accuracy)
    executor_cls = StreamingExecutor if pipelined else Executor
    executor = executor_cls(make_database(), platform, redundancy=3, oracle=make_oracle())
    return executor.execute(plan), platform


class TestStreamingEquivalence:
    """pipeline=on is bit-identical to barrier when nothing terminates early."""

    def test_sql_filter_rows_and_stats_match_barrier(self):
        barrier = make_session(pipeline=False)
        piped = make_session(pipeline=True)
        expected = barrier.query(FILTER_SQL)
        got = piped.query(FILTER_SQL)
        assert got.rows == expected.rows
        assert got.stats == expected.stats
        assert (
            piped.platform.stats.cost_spent == barrier.platform.stats.cost_spent
        )
        # The whole point: one scheduler run saturates the 8 lanes instead
        # of a one-task run per row.
        assert (
            piped.platform.scheduler.simulated_clock
            < barrier.platform.scheduler.simulated_clock
        )

    def test_programmatic_filter_join_matches_barrier(self):
        expected, barrier_platform = run_plan(join_plan(), pipelined=False)
        got, piped_platform = run_plan(join_plan(), pipelined=True)
        assert got.rows == expected.rows
        assert got.stats == expected.stats
        assert piped_platform.stats.cost_spent == barrier_platform.stats.cost_spent
        assert (
            piped_platform.scheduler.simulated_clock
            < barrier_platform.scheduler.simulated_clock
        )

    def test_order_without_limit_drains_and_matches_barrier(self):
        sql = (
            "SELECT name, price FROM items "
            "WHERE CROWDFILTER(name, 'is it in stock?') ORDER BY price DESC"
        )
        expected = make_session(pipeline=False).query(sql)
        got = make_session(pipeline=True).query(sql)
        assert got.rows == expected.rows
        assert got.stats == expected.stats

    def test_pipelined_replay_is_bit_identical(self):
        first = make_session(pipeline=True).query(FILTER_SQL)
        second = make_session(pipeline=True).query(FILTER_SQL)
        assert first.rows == second.rows
        assert first.stats == second.stats


class TestEarlyTermination:
    """TOP-K cancels pending HITs upstream; accounting stays consistent."""

    def test_topk_cancels_pending_hits(self):
        barrier = make_session(pipeline=False, accuracy=1.0)
        piped = make_session(pipeline=True, accuracy=1.0)
        expected = barrier.query(TOPK_SQL)
        got = piped.query(TOPK_SQL)
        assert got.rows == expected.rows
        assert expected.stats.tasks_cancelled == 0
        assert got.stats.tasks_cancelled > 0
        assert got.stats.cost_avoided > 0
        assert (
            piped.platform.stats.tasks_published
            < barrier.platform.stats.tasks_published
        )
        # ExecutionStats and PlatformStats agree on what was cancelled.
        assert piped.platform.stats.tasks_cancelled == got.stats.tasks_cancelled
        assert piped.platform.stats.cancel_cost_refunded == pytest.approx(
            got.stats.cost_avoided
        )

    def test_cancelled_spend_never_double_counted(self):
        # Same task set, same per-task price: the pipelined spend plus the
        # avoided spend must reconstruct the barrier spend exactly.
        barrier = make_session(pipeline=False, accuracy=1.0)
        piped = make_session(pipeline=True, accuracy=1.0)
        barrier.query(TOPK_SQL)
        result = piped.query(TOPK_SQL)
        assert piped.platform.stats.cost_spent + result.stats.cost_avoided == (
            pytest.approx(barrier.platform.stats.cost_spent)
        )
        assert result.stats.crowd_cost == pytest.approx(
            piped.platform.stats.cost_spent
        )

    def test_limit_zero_publishes_nothing(self):
        expected, _ = run_plan(topk_plan(limit=0), pipelined=False, accuracy=1.0)
        got, platform = run_plan(topk_plan(limit=0), pipelined=True, accuracy=1.0)
        assert expected.rows == []
        assert got.rows == []
        assert platform.stats.tasks_published == 0
        assert got.stats.tasks_cancelled == N_ITEMS
        assert got.stats.crowd_cost == 0.0

    def test_batch_summary_reports_cancellations(self):
        piped = make_session(pipeline=True, accuracy=1.0)
        piped.query(TOPK_SQL)
        summary = piped.platform.stats.batch_summary()
        assert "HITs cancelled" in summary


class TestCancellationAccounting:
    """Cancelled tasks leave no trace in the cache and zero the gauge."""

    def test_cancelled_tasks_do_not_poison_cache(self):
        cache = AnswerCache()
        piped = make_session(pipeline=True, accuracy=1.0)
        piped.platform.attach_cache(cache)
        result = piped.query(TOPK_SQL)
        # One cache entry per *published* question — cancelled HITs never
        # produce answers, so they must not be stored.
        assert len(cache) == piped.platform.stats.tasks_published
        assert len(cache) < N_ITEMS
        # A barrier run over the same cache reaches the same rows: a
        # poisoned (empty-answer) entry would flip its verdict to False.
        barrier = make_session(pipeline=False, accuracy=1.0)
        barrier.platform.attach_cache(cache)
        assert barrier.query(TOPK_SQL).rows == result.rows

    def test_in_flight_gauge_returns_to_zero(self):
        registry = MetricsRegistry(enabled=True)
        piped = make_session(pipeline=True, metrics=registry)
        piped.query(FILTER_SQL)
        gauge = registry.gauge("operators.in_flight", labels={"operator": "crowd_filter"})
        assert gauge.value == 0.0

    def test_cancellation_counter_labeled_by_reason(self):
        registry = MetricsRegistry(enabled=True)
        piped = make_session(pipeline=True, accuracy=1.0, metrics=registry)
        piped.query(TOPK_SQL)
        counter = registry.counter(
            "batch.cancellations", labels={"reason": "early_termination"}
        )
        assert counter.value > 0
        exposition = render_prometheus(registry)
        assert "batch_cancellations_total" in exposition
        assert "operators_in_flight" in exposition

    def test_profiler_surfaces_cancellations(self):
        registry = MetricsRegistry(enabled=True)
        platform = make_platform(accuracy=1.0, metrics=registry)
        profiler = QueryProfiler(registry, platform)
        session = CrowdSQLSession(
            database=make_database(),
            platform=platform,
            oracle=make_oracle(),
            redundancy=3,
            pipeline=True,
            profiler=profiler,
        )
        session.query(TOPK_SQL)
        profile = profiler.profile()
        assert profile["totals"]["cancelled"] > 0
        assert profile["totals"]["cancel_refunded"] > 0


class TestCheckpointResume:
    """A run killed between statements resumes bit-identically."""

    SCRIPT_HEAD = "SELECT name FROM items WHERE CROWDFILTER(name, 'first pass?')"
    SCRIPT_TAIL = (
        "SELECT name, price FROM items "
        "WHERE price > 10 AND CROWDFILTER(name, 'second pass?')"
    )

    def test_killed_mid_script_resumes_bit_identically(self, tmp_path):
        seed = 11
        reference = make_session(pipeline=True, seed=seed)
        results = reference.execute(f"{self.SCRIPT_HEAD}; {self.SCRIPT_TAIL}")

        # Interrupted run: statement 1 lands, then the process dies. The
        # checkpoint (statement granularity) holds the RNG/bookkeeping
        # state the streamed statement 2 must replay from.
        interrupted = make_session(pipeline=True, seed=seed)
        head = interrupted.execute(self.SCRIPT_HEAD)
        assert head[0].rows == results[0].rows
        Checkpoint.capture(
            interrupted.platform, scheduler=interrupted.platform.scheduler
        ).save(tmp_path)
        save_database(interrupted.database, tmp_path / "db")

        resumed_platform = make_platform(seed=seed)
        resumed = CrowdSQLSession(
            database=load_database(tmp_path / "db"),
            platform=resumed_platform,
            oracle=make_oracle(),
            redundancy=3,
            pipeline=True,
        )
        Checkpoint.load(tmp_path).restore(
            resumed_platform, scheduler=resumed_platform.scheduler
        )
        tail = resumed.execute(self.SCRIPT_TAIL)
        assert tail[0].rows == results[1].rows
        assert tail[0].stats == results[1].stats


class TestFallback:
    """Unsupported shapes run through the inherited barrier path unchanged."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) FROM items WHERE CROWDFILTER(name, 'in stock?')",
            "SELECT name FROM items "
            "WHERE CROWDFILTER(name, 'a?') AND CROWDFILTER(name, 'b?')",
            "SELECT name FROM items WHERE price > 80 CROWDORDER BY price",
            "SELECT name FROM items WHERE price > 50",
        ],
    )
    def test_fallback_shapes_match_barrier(self, sql):
        expected = make_session(pipeline=False).query(sql)
        got = make_session(pipeline=True).query(sql)
        assert got.rows == expected.rows
        assert got.stats == expected.stats

    def test_compiler_rejects_non_streamable_shapes(self):
        executor = StreamingExecutor(
            make_database(), make_platform(), redundancy=3, oracle=make_oracle()
        )
        # Crowd condition in the join itself.
        crowd_join = JoinNode(
            CrowdFilterNode(ScanNode("items"), crowd_filter()),
            ScanNode("labels"),
            CrowdPredicate("equal", (col("cat"), col("ref"))),
        )
        # Two crowd conjuncts keep the barrier's short-circuit order.
        two_conjuncts = CrowdFilterNode(
            ScanNode("items"), And(crowd_filter("a?"), crowd_filter("b?"))
        )
        # Machine-only predicate: nothing to stream.
        machine = CrowdFilterNode(
            ScanNode("items"), Comparison(">", col("price"), lit(10))
        )
        for root in (crowd_join, two_conjuncts, machine):
            with pytest.raises(_Unsupported):
                executor._compile(root)


class TestWiring:
    """The pipeline knob defaults off and reaches the session everywhere."""

    def test_session_default_is_barrier(self):
        assert CrowdSQLSession().pipeline is False

    def test_engine_config_reaches_session(self):
        from repro.core.config import EngineConfig
        from repro.core.engine import CrowdEngine

        assert EngineConfig().pipeline is False
        engine = CrowdEngine(EngineConfig(seed=3, pipeline=True))
        assert engine._session.pipeline is True

    def test_cli_build_session_passes_pipeline(self):
        from repro.cli import build_session

        session = build_session(1, 3, 8, pipeline=True)
        assert session.pipeline is True
        assert build_session(1, 3, 8).pipeline is False

    def test_cli_run_accepts_pipeline_flag(self, tmp_path):
        from repro.cli import main

        script = tmp_path / "q.sql"
        script.write_text(
            "CREATE TABLE t (a STRING); INSERT INTO t VALUES ('x'); "
            "SELECT a FROM t;",
            encoding="utf-8",
        )
        assert main(["--pipeline", "run", str(script)]) == 0


class TestSchedulerCancelSeam:
    """Unit coverage for the cancel/on_batch hooks on BatchScheduler.run."""

    @staticmethod
    def _tasks(n: int) -> list:
        # Explicit ids: answers are keyed by task_id, and the bit-identical
        # comparison below spans two separately built task lists.
        return [
            Task(
                TaskType.SINGLE_CHOICE,
                question=f"seam q{i}",
                options=("yes", "no"),
                truth="yes",
                task_id=f"seam-t{i}",
            )
            for i in range(n)
        ]

    def test_cancel_before_first_batch_cancels_everything(self):
        platform = make_platform()
        result = platform.scheduler.run(
            self._tasks(10), redundancy=2, cancel=lambda task: "early_termination"
        )
        assert result.answers == {}
        assert platform.stats.tasks_published == 0
        assert platform.stats.tasks_cancelled == 10
        assert platform.stats.cancel_cost_refunded > 0

    def test_on_batch_fires_per_dispatched_batch(self):
        platform = make_platform()
        sizes = []
        platform.scheduler.run(
            self._tasks(34),
            redundancy=2,
            on_batch=lambda batch, run: sizes.append(len(batch)),
        )
        assert sizes == [16, 16, 2]

    def test_noop_hooks_leave_run_bit_identical(self):
        plain = make_platform()
        hooked = make_platform()
        baseline = plain.scheduler.run(self._tasks(12), redundancy=3)
        observed = hooked.scheduler.run(
            self._tasks(12),
            redundancy=3,
            cancel=lambda task: None,
            on_batch=lambda batch, run: None,
        )
        # Worker ids are allocated globally across pools; compare the run
        # dynamics (values, timings, payments) rather than the w-names.
        def fingerprint(result):
            return {
                tid: [(a.value, a.submitted_at, a.duration, a.reward_paid) for a in answers]
                for tid, answers in result.answers.items()
            }

        assert fingerprint(observed) == fingerprint(baseline)
        assert plain.stats.cost_spent == hooked.stats.cost_spent
        assert plain.scheduler.simulated_clock == hooked.scheduler.simulated_clock
