"""Property-based tests (hypothesis) for core invariants."""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cost.deduction import ComparisonDeducer, TransitiveResolver
from repro.cost.sampling import estimate_proportion
from repro.cost.selection import entropy, margin
from repro.cost.similarity import (
    cosine_tokens,
    edit_distance,
    edit_similarity,
    jaccard_ngrams,
    jaccard_tokens,
)
from repro.operators.collect import chao92_estimate, good_turing_coverage
from repro.platform.task import Answer
from repro.quality.truth import (
    BayesianVote,
    DawidSkene,
    MajorityVote,
    ZenCrowd,
)

TEXT = st.text(alphabet="abcdef ", min_size=0, max_size=30)
LABELS = st.sampled_from(["red", "green", "blue"])


# --------------------------------------------------------------------- #
# Similarity functions
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("fn", [jaccard_tokens, jaccard_ngrams, edit_similarity, cosine_tokens])
@given(a=TEXT, b=TEXT)
@settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_similarity_symmetric_bounded(fn, a, b):
    value = fn(a, b)
    assert 0.0 <= value <= 1.0
    assert value == pytest.approx(fn(b, a))


@given(a=TEXT)
@settings(max_examples=40)
def test_similarity_identity(a):
    assert jaccard_tokens(a, a) == 1.0
    assert edit_similarity(a, a) == 1.0


@given(a=TEXT, b=TEXT, c=TEXT)
@settings(max_examples=40)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(a=TEXT, b=TEXT)
@settings(max_examples=40)
def test_edit_distance_bounds(a, b):
    d = edit_distance(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0)


# --------------------------------------------------------------------- #
# Truth inference
# --------------------------------------------------------------------- #

EVIDENCE = st.dictionaries(
    keys=st.sampled_from([f"t{i}" for i in range(6)]),
    values=st.lists(
        st.tuples(st.sampled_from([f"w{i}" for i in range(5)]), LABELS),
        min_size=1,
        max_size=6,
        unique_by=lambda pair: pair[0],
    ),
    min_size=1,
    max_size=6,
)


def _as_answers(evidence):
    return {
        task: [Answer(task_id=task, worker_id=w, value=v) for w, v in pairs]
        for task, pairs in evidence.items()
    }


@pytest.mark.parametrize("algo_factory", [MajorityVote, ZenCrowd, BayesianVote, DawidSkene])
@given(evidence=EVIDENCE)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_inference_invariants(algo_factory, evidence):
    answers = _as_answers(evidence)
    result = algo_factory().infer(answers)
    # Every task gets a truth from the global label space.
    assert set(result.truths) == set(answers)
    all_labels = {a.value for ans in answers.values() for a in ans}
    assert all(v in all_labels for v in result.truths.values())
    # Confidences and qualities are probabilities.
    assert all(0.0 <= c <= 1.0 + 1e-9 for c in result.confidences.values())
    assert all(0.0 <= q <= 1.0 + 1e-9 for q in result.worker_quality.values())


@given(evidence=EVIDENCE)
@settings(max_examples=25, deadline=None)
def test_unanimous_tasks_win(evidence):
    answers = _as_answers(evidence)
    result = MajorityVote().infer(answers)
    for task, task_answers in answers.items():
        values = {a.value for a in task_answers}
        if len(values) == 1:
            assert result.truths[task] == values.pop()


# --------------------------------------------------------------------- #
# Deduction
# --------------------------------------------------------------------- #

PAIRS = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda p: p[0] != p[1]),
    max_size=20,
)


@given(pairs=PAIRS, clusters=st.integers(1, 4))
@settings(max_examples=50)
def test_transitive_resolver_consistent_with_ground_truth(pairs, clusters):
    """Feeding consistent evidence never contradicts and infer() agrees."""
    cluster_of = {i: i % clusters for i in range(9)}
    resolver = TransitiveResolver(strict=True)
    for a, b in pairs:
        if cluster_of[a] == cluster_of[b]:
            resolver.record_match(a, b)
        else:
            resolver.record_nonmatch(a, b)
    for a, b in pairs:
        inferred = resolver.infer(a, b)
        assert inferred == (cluster_of[a] == cluster_of[b])
    assert not resolver.conflicts


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda p: p[0] < p[1]),
        max_size=15,
    )
)
@settings(max_examples=50)
def test_comparison_deducer_respects_total_order(edges):
    """Evidence consistent with integer order yields order-consistent closure."""
    deducer = ComparisonDeducer(strict=True)
    for hi, lo in [(max(e), min(e)) for e in edges]:
        deducer.record(hi, lo)
    for a in range(8):
        for b in range(8):
            if a == b:
                continue
            inferred = deducer.infer(a, b)
            if inferred is not None:
                assert inferred == (a > b)


# --------------------------------------------------------------------- #
# Sampling & species estimation
# --------------------------------------------------------------------- #


@given(
    labels=st.lists(st.booleans(), min_size=1, max_size=200),
    extra=st.integers(0, 10_000),
)
@settings(max_examples=50)
def test_proportion_estimate_bounded(labels, extra):
    population = len(labels) + extra
    est = estimate_proportion(labels, population)
    assert 0.0 <= est.value <= 1.0
    assert est.stderr >= 0.0
    low, high = est.interval
    assert low <= est.value <= high


@given(
    counts=st.dictionaries(
        st.integers(0, 30), st.integers(1, 10), min_size=0, max_size=20
    )
)
@settings(max_examples=50)
def test_species_estimators_bounded_below_by_observed(counts):
    freqs = Counter({f"s{k}": v for k, v in counts.items()})
    observed = len(freqs)
    assert 0.0 <= good_turing_coverage(freqs) <= 1.0
    assert chao92_estimate(freqs) >= observed - 1e-9


# --------------------------------------------------------------------- #
# Selection scores
# --------------------------------------------------------------------- #

POSTERIOR = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=4,
)


@given(posterior=POSTERIOR)
@settings(max_examples=50)
def test_entropy_margin_bounds(posterior):
    h = entropy(posterior)
    assert h >= 0.0
    m = margin(posterior)
    assert 0.0 <= m <= 1.0


# --------------------------------------------------------------------- #
# CrowdSQL parser totality on generated inputs
# --------------------------------------------------------------------- #

def _not_keyword(name: str) -> bool:
    from repro.lang.lexer import KEYWORDS

    return name.upper() not in KEYWORDS


IDENT = st.text(alphabet="abcxyz", min_size=1, max_size=6).filter(_not_keyword)


@given(
    table=IDENT,
    column=IDENT,
    value=st.integers(-1000, 1000),
    limit=st.integers(1, 99),
)
@settings(max_examples=40)
def test_parser_roundtrips_generated_selects(table, column, value, limit):
    from repro.lang.parser import parse_one

    sql = f"SELECT {column} FROM {table} WHERE {column} > {value} LIMIT {limit}"
    stmt = parse_one(sql)
    assert stmt.table == table
    assert stmt.columns == (column,)
    assert stmt.limit == limit
    assert stmt.where.evaluate({column: value + 1}) is True
    assert stmt.where.evaluate({column: value - 1}) is False
