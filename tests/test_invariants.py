"""System-level invariants and failure injection.

These tests verify properties the architecture promises hold *everywhere*:
budget conservation, graceful behaviour at the budget boundary, consistent
state after mid-operation failures, and platform determinism under seeding.
"""


import pytest

from repro.errors import BudgetExceededError, NoWorkersAvailableError
from repro.operators.fill import CrowdFill
from repro.operators.filter import AdaptiveFilter, FixedKFilter
from repro.operators.join import CrowdJoin
from repro.platform.platform import SimulatedPlatform
from repro.quality.assignment import RoundRobinAssignment, run_assignment
from repro.workers.pool import WorkerPool

from conftest import make_choice_tasks


class TestBudgetConservation:
    """Every spent credit is attributable to exactly one answer."""

    def test_collect_accounting(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=1), seed=2)
        tasks = make_choice_tasks(20, seed=3)
        platform.collect(tasks, redundancy=3)
        assert platform.stats.cost_spent == pytest.approx(
            sum(a.reward_paid for a in platform.answers)
        )
        assert platform.stats.answers_collected == len(platform.answers) == 60

    def test_timeline_accounting(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=4), seed=5)
        tasks = make_choice_tasks(15, seed=6)
        platform.simulate_timeline(tasks, redundancy=2)
        assert platform.stats.cost_spent == pytest.approx(
            sum(a.reward_paid for a in platform.answers)
        )

    def test_online_assignment_accounting(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=7), seed=8)
        tasks = make_choice_tasks(10, seed=9)
        outcome = run_assignment(
            platform, RoundRobinAssignment(redundancy=2), tasks, max_answers=100
        )
        assert outcome.cost == pytest.approx(platform.stats.cost_spent)

    def test_worker_earnings_match_spend(self):
        platform = SimulatedPlatform(WorkerPool.uniform(8, seed=10), seed=11)
        tasks = make_choice_tasks(12, seed=12)
        platform.collect(tasks, redundancy=3)
        assert sum(w.earned for w in platform.pool) == pytest.approx(
            platform.stats.cost_spent
        )


class TestBudgetBoundary:
    def test_spend_exactly_to_budget(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=1), budget=0.10, seed=2)
        tasks = make_choice_tasks(5, seed=3)
        platform.collect(tasks, redundancy=2)  # exactly 0.10
        assert platform.remaining_budget == pytest.approx(0.0)
        with pytest.raises(BudgetExceededError):
            platform.ask(make_choice_tasks(1, seed=4)[0])

    def test_failed_charge_does_not_spend(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=5), budget=0.005, seed=6)
        task = make_choice_tasks(1, seed=7)[0]
        with pytest.raises(BudgetExceededError):
            platform.ask(task)
        assert platform.stats.cost_spent == 0.0
        assert platform.stats.answers_collected == 0

    def test_filter_fails_cleanly_mid_run(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=8), budget=0.07, seed=9)
        op = FixedKFilter(platform, "q", truth_fn=lambda i: True, redundancy=3)
        with pytest.raises(BudgetExceededError):
            op.run(list(range(10)))
        # Whatever was bought is still consistently accounted.
        assert platform.stats.cost_spent <= 0.07 + 1e-9
        assert platform.stats.cost_spent == pytest.approx(
            sum(a.reward_paid for a in platform.answers)
        )

    def test_join_fails_cleanly_mid_run(self):
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=10), budget=0.05, seed=11)
        records = [f"swift falcon {i}" for i in range(6)]
        join = CrowdJoin(platform, lambda a, b: a == b, redundancy=3)
        with pytest.raises(BudgetExceededError):
            join.run(records)
        assert platform.stats.cost_spent <= 0.05 + 1e-9

    def test_fill_fails_cleanly_and_partial_progress_persists(self):
        from repro.data.schema import SchemaBuilder
        from repro.data.table import Table

        schema = SchemaBuilder().string("k").crowd_string("v").build()
        table = Table("t", schema)
        table.insert_many([{"k": str(i)} for i in range(10)])
        platform = SimulatedPlatform(WorkerPool.uniform(10, seed=12), budget=0.12, seed=13)
        filler = CrowdFill(platform, truth_fn=lambda row, col: row["k"], redundancy=3)
        with pytest.raises(BudgetExceededError):
            filler.run(table)
        # Collect-then-infer is transactional per batch here: on failure no
        # cells were written, and all spend is accounted.
        assert platform.stats.cost_spent <= 0.12 + 1e-9
        assert 0 <= 10 - len(table.cnull_cells()) <= 10


class TestPoolExhaustion:
    def test_all_workers_deactivated(self):
        pool = WorkerPool.uniform(3, seed=1)
        platform = SimulatedPlatform(pool, seed=2)
        for worker in list(pool):
            pool.deactivate(worker.worker_id)
        with pytest.raises(NoWorkersAvailableError):
            platform.ask(make_choice_tasks(1, seed=3)[0])

    def test_adaptive_filter_with_tiny_pool(self):
        # 3 workers, max 5 answers per item: only 3 obtainable per item.
        platform = SimulatedPlatform(WorkerPool.uniform(3, 0.9, seed=4), seed=5)
        op = AdaptiveFilter(
            platform, "q", truth_fn=lambda i: True, margin=2, max_answers=3
        )
        result = op.run([1, 2, 3])
        assert len(result.decisions) == 3


class TestDeterminism:
    def test_identical_seeds_identical_everything(self):
        def run():
            platform = SimulatedPlatform(WorkerPool.heterogeneous(12, seed=9), seed=10)
            tasks = make_choice_tasks(25, seed=11)
            collected = platform.collect(tasks, redundancy=3)
            return (
                platform.stats.cost_spent,
                [a.value for t in tasks for a in collected[t.task_id]],
            )

        cost_a, values_a = run()
        cost_b, values_b = run()
        assert cost_a == cost_b
        assert values_a == values_b

    def test_engine_determinism_end_to_end(self):
        from repro import CrowdEngine, EngineConfig

        def run():
            engine = CrowdEngine(EngineConfig(seed=77))
            result = engine.filter(list(range(20)), "q", lambda i: i % 2 == 0)
            return result.decisions, engine.spent

        assert run() == run()
