"""Setup shim for environments without the `wheel` package.

`pip install -e .` with modern setuptools requires wheel for PEP 660
builds; this shim lets the legacy `--no-build-isolation` editable path
(`setup.py develop`) work in fully offline environments.
"""

from setuptools import setup

setup()
