"""F7 — Worker-based assignment: domain-aware routing on a diverse-skills pool.

Half the pool is expert at domain A and mediocre at B; the other half the
reverse. Expected shape: domain-aware assignment approaches the
expert-accuracy ceiling once its online skill estimates warm up, beating
domain-blind round-robin at equal budget; on a homogeneous pool the two
coincide (routing has nothing to exploit).
"""

from conftest import run_once

import numpy as np

from repro.experiments.harness import run_trials
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.assignment import (
    DomainAwareAssignment,
    RoundRobinAssignment,
    run_assignment,
)
from repro.quality.truth import MajorityVote
from repro.workers.models import DiverseSkillsModel, OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

DOMAINS = ("birds", "law")
N_TASKS = 200
BUDGET = 600


def _skilled_pool(seed: int) -> WorkerPool:
    workers = []
    for i in range(20):
        if i % 2 == 0:
            skills = {"birds": 0.95, "law": 0.55}
        else:
            skills = {"birds": 0.55, "law": 0.95}
        workers.append(Worker(model=DiverseSkillsModel(skills=skills)))
    return WorkerPool(workers, seed=seed)


def _uniform_pool(seed: int) -> WorkerPool:
    return WorkerPool([Worker(model=OneCoinModel(0.75)) for _ in range(20)], seed=seed)


def _tasks(seed: int) -> list[Task]:
    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(N_TASKS):
        domain = DOMAINS[i % 2]
        tasks.append(
            Task(
                TaskType.SINGLE_CHOICE,
                question=f"{domain} #{i}",
                options=("yes", "no"),
                truth=("yes", "no")[int(rng.integers(2))],
                payload={"domain": domain},
            )
        )
    return tasks


def _accuracy(pool_factory, strategy_factory, seed: int) -> float:
    platform = SimulatedPlatform(pool_factory(seed), seed=seed + 1)
    tasks = _tasks(seed + 2)
    truth = {t.task_id: t.truth for t in tasks}
    outcome = run_assignment(platform, strategy_factory(), tasks, max_answers=BUDGET)
    inferred = MajorityVote().infer(outcome.answers_by_task).truths
    return sum(1 for t in truth if inferred.get(t) == truth[t]) / len(truth)


def _trial(seed: int) -> dict[str, float]:
    return {
        "skilled_rr": _accuracy(
            _skilled_pool, lambda: RoundRobinAssignment(redundancy=3), seed
        ),
        "skilled_domain": _accuracy(
            _skilled_pool,
            lambda: DomainAwareAssignment(redundancy=3, exploration=1),
            seed,
        ),
        "uniform_rr": _accuracy(
            _uniform_pool, lambda: RoundRobinAssignment(redundancy=3), seed
        ),
        "uniform_domain": _accuracy(
            _uniform_pool,
            lambda: DomainAwareAssignment(redundancy=3, exploration=1),
            seed,
        ),
    }


def test_f7_domain_aware_assignment(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F7", _trial, n_trials=3, base_seed=31))

    rows = [
        {
            "pool": "diverse skills",
            "round_robin": result.mean("skilled_rr"),
            "domain_aware": result.mean("skilled_domain"),
            "gain": result.mean("skilled_domain") - result.mean("skilled_rr"),
        },
        {
            "pool": "homogeneous",
            "round_robin": result.mean("uniform_rr"),
            "domain_aware": result.mean("uniform_domain"),
            "gain": result.mean("uniform_domain") - result.mean("uniform_rr"),
        },
    ]
    report.table(rows, title="F7: domain-aware routing (200 tasks, budget 600, 3 trials)")

    # Shapes: clear win on the skilled pool; no meaningful effect (either
    # way) on the homogeneous pool.
    assert result.mean("skilled_domain") > result.mean("skilled_rr") + 0.02
    assert abs(result.mean("uniform_domain") - result.mean("uniform_rr")) < 0.05
