"""T5 — Crowd COUNT by sampling: error vs sample size.

Expected shape: relative error shrinks like 1/sqrt(n) as the sample grows
(cost grows linearly), so modest samples already give single-digit-percent
estimates of a 10k population — the cost-control argument for
sampling-based crowd aggregation.
"""

from conftest import run_once

from repro.experiments.datasets import counting_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.experiments.metrics import relative_error
from repro.operators.count import CrowdCount

POOL = PoolSpec(kind="uniform", size=25, accuracy=0.93)
POPULATION = 10_000
SAMPLE_FRACTIONS = (0.01, 0.05, 0.10)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    dataset = counting_dataset(POPULATION, selectivity=0.3, seed=seed + 29)
    for fraction in SAMPLE_FRACTIONS:
        platform = make_platform(POOL, seed=seed)
        counter = CrowdCount(
            platform, "does it qualify?", dataset.truth_fn, redundancy=3, seed=seed
        )
        result = counter.run(dataset.items, sample_size=int(POPULATION * fraction))
        values[f"error@{fraction}"] = relative_error(result.value, dataset.true_count)
        values[f"questions@{fraction}"] = result.questions_asked
        values[f"covered@{fraction}"] = (
            1.0 if result.estimate.contains(dataset.true_count) else 0.0
        )
    return values


def test_t5_count_sampling(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T5", _trial, n_trials=4))

    rows = [
        {
            "sample": f"{fraction:.0%}",
            "relative_error": result.mean(f"error@{fraction}"),
            "questions": result.mean(f"questions@{fraction}"),
            "ci_coverage": result.mean(f"covered@{fraction}"),
        }
        for fraction in SAMPLE_FRACTIONS
    ]
    report.table(rows, title="T5: COUNT estimation error vs sample size (4 trials)")

    # Shapes: error shrinks with sample size; 10% sample achieves <10%
    # error while asking 30x fewer questions than exhaustive labeling.
    errors = [result.mean(f"error@{f}") for f in SAMPLE_FRACTIONS]
    assert errors[-1] <= errors[0] + 0.02
    assert errors[-1] < 0.10
    assert result.mean(f"questions@{SAMPLE_FRACTIONS[-1]}") <= POPULATION * 3 * 0.11
