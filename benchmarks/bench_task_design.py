"""T9 — Task design ablation: HIT batch size vs cost and effective accuracy.

Batching amortizes the per-HIT engagement overhead across questions but
fatigues workers (per-slot accuracy decay). Expected shape: engagement
cost falls hyperbolically with batch size while the mean accuracy
multiplier decays linearly to its floor, so accuracy-per-cost peaks at a
moderate batch size — the knee `best_batch_size` picks. An empirical
sweep (simulated batched collection with fatigue) confirms the analytic
accuracy curve.
"""

from conftest import run_once

from repro.cost.taskdesign import FatigueModel, batch_tasks, best_batch_size, plan_batching
from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import run_trials
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import MajorityVote
from repro.workers.pool import WorkerPool

import numpy as np

BATCH_SIZES = (1, 2, 5, 10, 20, 50)
N_TASKS = 500


def _trial(seed: int) -> dict[str, float]:
    # plan_batching is analytic; trials sweep the fatigue parameters the
    # empirical studies report (decay 1-3% per slot).
    rng = np.random.default_rng(seed)
    decay = float(rng.uniform(0.01, 0.03))
    fatigue = FatigueModel(decay=decay, floor=0.6)
    plans = plan_batching(
        N_TASKS, BATCH_SIZES, engagement_overhead=1.0, per_question_cost=0.2,
        fatigue=fatigue,
    )
    values: dict[str, float] = {"decay": decay}
    for plan in plans:
        values[f"cost@{plan.batch_size}"] = plan.engagement_cost
        values[f"acc@{plan.batch_size}"] = plan.mean_accuracy_multiplier
        values[f"ratio@{plan.batch_size}"] = (
            plan.mean_accuracy_multiplier / plan.engagement_cost
        )
    best = best_batch_size(plans)
    values["best_batch"] = best.batch_size

    # Empirical confirmation: run batched collection with fatigue and
    # measure majority-vote accuracy per batch size (same total answers).
    for size in (1, 10, 50):
        platform = SimulatedPlatform(WorkerPool.uniform(20, 0.9, seed=seed), seed=seed + 1)
        dataset = labeling_dataset(200, labels=("yes", "no"), seed=seed + 7)
        hits = batch_tasks(dataset.tasks, size)
        answers = platform.collect_batched(hits, redundancy=3, fatigue=fatigue)
        accuracy = MajorityVote().infer(answers).accuracy_against(dataset.truth)
        values[f"measured_acc@{size}"] = accuracy
    return values


def test_t9_batching_ablation(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T9", _trial, n_trials=5))

    rows = [
        {
            "batch_size": size,
            "engagement_cost": result.mean(f"cost@{size}"),
            "accuracy_multiplier": result.mean(f"acc@{size}"),
            "quality_per_cost": result.mean(f"ratio@{size}"),
        }
        for size in BATCH_SIZES
    ]
    report.table(rows, title="T9: HIT batching frontier (500 tasks, 5 trials)")
    report.note(f"chosen batch size (mean over trials): {result.mean('best_batch'):.1f}")
    report.table(
        [
            {
                "batch_size": size,
                "measured_mv_accuracy": result.mean(f"measured_acc@{size}"),
            }
            for size in (1, 10, 50)
        ],
        title="T9b: measured accuracy under batched collection (k=3)",
    )

    # Shapes: cost strictly falls with batch size; accuracy strictly falls;
    # the quality/cost optimum is strictly interiorish (neither 1 nor the max).
    costs = [result.mean(f"cost@{s}") for s in BATCH_SIZES]
    accs = [result.mean(f"acc@{s}") for s in BATCH_SIZES]
    assert costs == sorted(costs, reverse=True)
    assert accs == sorted(accs, reverse=True)
    assert result.mean("best_batch") > 1
    # Empirical: fatigue measurably hurts the big batches.
    assert result.mean("measured_acc@1") >= result.mean("measured_acc@50")
