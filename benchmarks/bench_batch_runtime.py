"""B1 — Batched concurrent runtime: throughput vs the sequential path.

A 500-task filter workload is dispatched through the BatchScheduler at
increasing lane counts. Expected shape: simulated throughput (assignments
per simulated second) scales with ``max_parallel`` because independent
assignments overlap on separate lanes, while ``max_parallel=1`` reproduces
the pre-batch sequential ``platform.collect`` path answer-for-answer. A
fault-injected row shows the retry machinery delivering full redundancy
despite abandonment and timeouts.
"""

import json
import os
import time

from conftest import bench_artifact, run_once

from repro.experiments.harness import quick_mode, run_trials
from repro.obs import MetricsRegistry, NullSink, Tracer
from repro.obs.prom import render_prometheus, validate_exposition
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.pool import WorkerPool

N_TASKS = 100 if quick_mode() else 500
REDUNDANCY = 3
POOL_SIZE = 40
LANES = (1, 2, 4, 8)


def _tasks(n: int) -> list:
    return [
        single_choice(f"item {i}: keep?", ("yes", "no"), truth="yes" if i % 2 else "no")
        for i in range(n)
    ]


def _platform(
    seed: int,
    batch: BatchConfig | None = None,
    tracer=None,
    metrics=None,
) -> SimulatedPlatform:
    pool = WorkerPool.heterogeneous(
        POOL_SIZE, accuracy_low=0.7, accuracy_high=0.95, seed=seed
    )
    return SimulatedPlatform(pool, seed=seed + 1, batch=batch, tracer=tracer, metrics=metrics)


def _normalized(platform: SimulatedPlatform, tasks: list, answers: dict) -> list:
    """Answer stream keyed by workload position and within-pool worker index.

    Worker and task ids both come from process-global counters, so two
    platforms built in the same process name them differently even when the
    pools and workloads are identical; positions are the stable identities.
    """
    index = {w.worker_id: i for i, w in enumerate(platform.pool)}
    return [
        (ti, index[a.worker_id], a.value, round(a.submitted_at, 9))
        for ti, task in enumerate(tasks)
        for a in answers[task.task_id]
    ]


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}

    # Reference: the pre-batch sequential collect() path.
    ref = _platform(seed)
    ref_tasks = _tasks(N_TASKS)
    ref_answers = ref.collect(ref_tasks, redundancy=REDUNDANCY)
    ref_stream = _normalized(ref, ref_tasks, ref_answers)

    for lanes in LANES:
        cfg = BatchConfig(batch_size=50, max_parallel=lanes, seed=seed + 2)
        platform = _platform(seed, batch=cfg)
        tasks = _tasks(N_TASKS)
        run = platform.scheduler.run(tasks, redundancy=REDUNDANCY)
        values[f"makespan@{lanes}"] = run.makespan
        values[f"throughput@{lanes}"] = run.throughput
        if lanes == 1:
            values["seq_identical"] = float(
                _normalized(platform, tasks, run.answers) == ref_stream
            )

    # Fault injection: abandonment + tight deadline, retries must refill.
    faulty_cfg = BatchConfig(
        batch_size=50,
        max_parallel=8,
        retry_limit=8,
        abandon_rate=0.15,
        assignment_timeout=90.0,
        seed=seed + 2,
    )
    faulty = _platform(seed, batch=faulty_cfg)
    run = faulty.scheduler.run(_tasks(N_TASKS), redundancy=REDUNDANCY)
    values["faulty_retries"] = faulty.stats.assignments_retried
    values["faulty_full_redundancy"] = float(
        all(len(a) == REDUNDANCY for a in run.answers.values())
    )
    return values


def test_b1_batch_runtime_throughput(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("B1", _trial, n_trials=3))

    rows = [
        {
            "max_parallel": lanes,
            "sim_makespan_s": result.mean(f"makespan@{lanes}"),
            "sim_throughput": result.mean(f"throughput@{lanes}"),
            "speedup_vs_seq": result.mean(f"throughput@{lanes}")
            / result.mean("throughput@1"),
        }
        for lanes in LANES
    ]
    report.table(
        rows,
        title=f"B1: batch runtime scaling ({N_TASKS} filter tasks, redundancy {REDUNDANCY})",
    )
    report.note(
        f"fault row: {result.mean('faulty_retries'):.1f} retries/trial, "
        f"full redundancy in {result.mean('faulty_full_redundancy'):.0%} of trials"
    )

    # max_parallel=1 must reproduce the pre-batch sequential path exactly.
    assert result.mean("seq_identical") == 1.0
    # Acceptance: >= 2x simulated throughput at 8 lanes vs sequential.
    assert result.mean("throughput@8") >= 2.0 * result.mean("throughput@1")
    # Faults happened and were absorbed: every task still got full redundancy.
    assert result.mean("faulty_retries") > 0
    assert result.mean("faulty_full_redundancy") == 1.0


def _timed_run(seed: int, tracer=None, metrics=None, repeats: int = 5) -> float:
    """Best-of-*repeats* wall-clock for the standard workload (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        cfg = BatchConfig(batch_size=50, max_parallel=4, seed=seed + 2)
        platform = _platform(seed, batch=cfg, tracer=tracer, metrics=metrics)
        tasks = _tasks(N_TASKS)
        start = time.perf_counter()
        platform.scheduler.run(tasks, redundancy=REDUNDANCY)
        best = min(best, time.perf_counter() - start)
        if tracer is not None:
            tracer.close()
    return best


def test_b1_null_sink_overhead(benchmark, report):
    """Observability wired to a null sink stays within noise of the off path.

    Off path = NULL_TRACER + disabled registry (the defaults). On path =
    enabled tracer emitting to :class:`~repro.obs.sinks.NullSink` plus an
    enabled registry — full span/counter bookkeeping, no I/O. The guard
    allows 5% relative overhead plus a 50 ms absolute floor so timer noise
    on sub-100ms quick runs cannot trip it.
    """

    def measure() -> dict[str, float]:
        off = _timed_run(seed=11)
        on = _timed_run(
            seed=11,
            tracer=Tracer(NullSink()),
            metrics=MetricsRegistry(enabled=True),
        )
        return {"off_s": off, "on_s": on}

    values = run_once(benchmark, measure)
    overhead = values["on_s"] / values["off_s"] - 1.0
    report.note(
        f"B1 overhead guard: off {values['off_s'] * 1e3:.1f} ms, "
        f"on (null sink) {values['on_s'] * 1e3:.1f} ms, overhead {overhead:+.1%}"
    )
    assert values["on_s"] <= values["off_s"] * 1.05 + 0.050


def _timed_run_scraped(seed: int, repeats: int = 5) -> dict[str, float]:
    """Enabled registry (labeled families on) + one mid-run scrape per run."""
    best = float("inf")
    best_render = 0.0
    samples = 0
    for _ in range(repeats):
        cfg = BatchConfig(batch_size=50, max_parallel=4, seed=seed + 2)
        registry = MetricsRegistry(enabled=True)
        platform = _platform(seed, batch=cfg, metrics=registry)
        tasks = _tasks(N_TASKS)
        start = time.perf_counter()
        platform.scheduler.run(tasks, redundancy=REDUNDANCY)
        render_start = time.perf_counter()
        body = render_prometheus(registry)
        render_s = time.perf_counter() - render_start
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            best_render = render_s
            samples = validate_exposition(body)
    return {"on_s": best, "render_s": best_render, "samples": float(samples)}


def test_b1_labeled_metrics_exporter_overhead(benchmark, report):
    """Labeled metrics + the Prometheus exporter stay inside the same gate.

    On path = enabled registry recording every labeled family (operator,
    cache outcome, assignment outcome) plus one full ``render_prometheus``
    scrape of the run — the serve-metrics steady state. Same guard as the
    null-sink test: 5% relative overhead plus a 50 ms absolute floor.
    """

    def measure() -> dict[str, float]:
        off = _timed_run(seed=13)
        scraped = _timed_run_scraped(seed=13)
        return {"off_s": off, **scraped}

    values = run_once(benchmark, measure)
    overhead = values["on_s"] / values["off_s"] - 1.0
    report.note(
        f"B1 exporter guard: off {values['off_s'] * 1e3:.1f} ms, "
        f"on (labeled metrics + scrape) {values['on_s'] * 1e3:.1f} ms "
        f"(render {values['render_s'] * 1e3:.2f} ms, "
        f"{values['samples']:.0f} samples), overhead {overhead:+.1%}"
    )

    out_path = bench_artifact("BENCH_obs.json")
    with open(out_path, "w") as fh:
        json.dump(
            {
                "workload": {
                    "tasks": N_TASKS,
                    "redundancy": REDUNDANCY,
                    "max_parallel": 4,
                    "quick": quick_mode(),
                },
                "off_s": values["off_s"],
                "on_s": values["on_s"],
                "render_s": values["render_s"],
                "exposition_samples": values["samples"],
                "overhead_rel": overhead,
                "gate": "on_s <= off_s * 1.05 + 0.050",
            },
            fh,
            indent=2,
        )

    assert values["samples"] > 0
    assert values["on_s"] <= values["off_s"] * 1.05 + 0.050
