"""B10 — multi-tenant service: throughput, fairness, and bit-identity.

Load-generates against :class:`repro.service.CrowdService` — N requester
tenants sharing one simulated platform — and gates the ISSUE 10 SLOs:

* **throughput scales with lanes**: the same multi-tenant offered load
  finishes in proportionally less simulated time at 8 batch lanes than
  at 2 (the fair-share dispatcher must not serialize away the batch
  scheduler's parallelism);
* **fairness under skew**: with a 10:1 offered-load skew and a platform
  budget covering only part of it, the max/min tenant completion-rate
  ratio stays <= 2 — deficit round-robin lets the light tenant finish
  everything while the heavy tenant absorbs the budget shortfall;
* **hundreds of concurrent sessions**: asyncio drives CrowdSQL sessions
  (full mode: 200) through ``aexecute`` on one service; every session
  completes and tenant ledgers sum exactly to the platform's spend;
* **single-tenant bit-identity**: one tenant through the service equals
  the plain engine path at the same seed — rows, cost, votes.
"""

import asyncio
import json
import time

from conftest import bench_artifact, run_once

from repro.data.database import Database
from repro.errors import BudgetExceededError
from repro.experiments.harness import quick_mode
from repro.lang.interpreter import CrowdSQLSession
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.service import CrowdService, TenantSpec
from repro.workers.pool import WorkerPool

SEED = 53
POOL_SIZE = 24
REDUNDANCY = 2
UNIT_TASKS = 32  # tasks per work unit: enough to occupy all 8 lanes
THROUGHPUT_UNITS = 4 if quick_mode() else 16  # per tenant, 4 tenants
SKEW = 10  # heavy tenant offers SKEW x the light tenant's units
LIGHT_UNITS = 2 if quick_mode() else 5
N_SESSIONS = 40 if quick_mode() else 200
THROUGHPUT_FLOOR = 1.5  # x improvement going 2 -> 8 lanes
FAIRNESS_CEILING = 2.0  # max/min tenant completion-rate ratio

SCRIPT = """
CREATE TABLE films (title STRING NOT NULL, score FLOAT, PRIMARY KEY (title));
INSERT INTO films VALUES ('a', 1.0), ('b', 2.0), ('c', 3.0);
CREATE TABLE imports (listing STRING NOT NULL, PRIMARY KEY (listing));
INSERT INTO imports VALUES ('a'), ('b');
SELECT listing, title FROM imports CROWDJOIN films ON CROWDEQUAL(listing, title);
SELECT title FROM films CROWDORDER BY score LIMIT 2;
"""


def _platform(max_parallel: int, budget: float = float("inf")) -> SimulatedPlatform:
    pool = WorkerPool.uniform(POOL_SIZE, 0.9, seed=SEED)
    return SimulatedPlatform(
        pool,
        budget=budget,
        seed=SEED + 1,
        batch=BatchConfig(batch_size=8, max_parallel=max_parallel, seed=SEED + 2),
    )


def _unit(tag: str, n: int = UNIT_TASKS) -> list:
    return [
        Task(TaskType.SINGLE_CHOICE, question=f"{tag} q{i}?", options=("yes", "no"))
        for i in range(n)
    ]


async def _offer(service, offers):
    """Enqueue every (tenant, tag) unit concurrently; return outcomes."""
    jobs = [
        service.asubmit(tenant, _unit(tag), redundancy=REDUNDANCY)
        for tenant, tag in offers
    ]
    return await asyncio.gather(*jobs, return_exceptions=True)


def _throughput(max_parallel: int) -> dict:
    """Drive 4 equal tenants; simulated task throughput at *max_parallel*."""
    platform = _platform(max_parallel)
    with CrowdService(platform) as service:
        tenants = [service.register(f"t{i}") for i in range(4)]
        offers = [
            (tenant, f"p{max_parallel} {tenant.name} u{u}")
            for u in range(THROUGHPUT_UNITS)
            for tenant in tenants
        ]
        asyncio.run(_offer(service, offers))
        makespan = platform.scheduler.simulated_clock
        tasks = sum(t.tasks_dispatched for t in tenants)
    return {
        "lanes": max_parallel,
        "units": len(offers),
        "tasks": tasks,
        "makespan": makespan,
        "throughput": tasks / makespan,
    }


def _fairness() -> dict:
    """10:1 offered-load skew under a budget covering ~60% of it."""
    heavy_units = LIGHT_UNITS * SKEW
    offered_cost = (heavy_units + LIGHT_UNITS) * UNIT_TASKS * REDUNDANCY * 0.01
    platform = _platform(max_parallel=8, budget=0.6 * offered_cost)
    with CrowdService(platform) as service:
        heavy = service.register("heavy")
        light = service.register("light")
        offers = [(heavy, f"h{u}") for u in range(heavy_units)]
        offers += [(light, f"l{u}") for u in range(LIGHT_UNITS)]
        outcomes = asyncio.run(_offer(service, offers))
        rejected = sum(1 for o in outcomes if isinstance(o, BudgetExceededError))
        rates = {
            "heavy": heavy.units_completed / heavy_units,
            "light": light.units_completed / LIGHT_UNITS,
        }
        return {
            "offered": {"heavy": heavy_units, "light": LIGHT_UNITS},
            "completed": {
                "heavy": heavy.units_completed,
                "light": light.units_completed,
            },
            "rejected_or_failed": rejected,
            "completion_rates": rates,
            "ratio": max(rates.values()) / max(min(rates.values()), 1e-12),
            "spent": platform.stats.cost_spent,
            "budget": platform.budget,
        }


def _session_script(i: int) -> str:
    # Session-unique values so no two sessions share crowd questions —
    # the offered load is real, not a cache replay.
    return SCRIPT.replace("'a'", f"'a{i}'").replace("'b'", f"'b{i}'").replace(
        "'c'", f"'c{i}'"
    )


def _concurrent_sessions() -> dict:
    """Hundreds of CrowdSQL sessions through one service via asyncio."""
    platform = _platform(max_parallel=8)

    async def drive(service) -> int:
        tenants = [
            service.register(TenantSpec(f"org{i}", weight=float(i + 1)))
            for i in range(4)
        ]
        sessions = [
            service.session(
                tenants[i % len(tenants)], database=Database(), redundancy=REDUNDANCY
            )
            for i in range(N_SESSIONS)
        ]
        results = await asyncio.gather(
            *(
                service.aexecute(session, _session_script(i))
                for i, session in enumerate(sessions)
            )
        )
        ok = sum(
            1 for r in results if any(hasattr(stmt, "rows") for stmt in r)
        )
        return ok

    start = time.perf_counter()
    with CrowdService(platform, max_sessions=64) as service:
        ok = asyncio.run(drive(service))
        ledger_total = sum(t.account.spent for t in service.tenants)
    wall = time.perf_counter() - start
    return {
        "sessions": N_SESSIONS,
        "succeeded": ok,
        "wall_s": wall,
        "sessions_per_s": N_SESSIONS / wall,
        "spent": platform.stats.cost_spent,
        "ledger_total": ledger_total,
        "ledger_matches": abs(ledger_total - platform.stats.cost_spent) < 1e-9,
    }


def _engine_run(via_service: bool) -> dict:
    platform = _platform(max_parallel=4)
    if via_service:
        with CrowdService(platform) as service:
            tenant = service.register("solo")
            session = service.session(
                tenant, database=Database(), redundancy=3
            )
            results = session.execute(SCRIPT)
    else:
        session = CrowdSQLSession(
            database=Database(), platform=platform, redundancy=3
        )
        results = session.execute(SCRIPT)
    return {
        "rows": [r.rows for r in results if hasattr(r, "rows")],
        "cost": platform.stats.cost_spent,
        "answers": platform.stats.answers_collected,
        "published": platform.stats.tasks_published,
        "values": [a.value for a in platform.answers],
    }


def test_b10_service_load(benchmark, report):
    def measure() -> dict:
        return {
            "narrow": _throughput(max_parallel=2),
            "wide": _throughput(max_parallel=8),
            "fairness": _fairness(),
            "sessions": _concurrent_sessions(),
            "plain": _engine_run(via_service=False),
            "service": _engine_run(via_service=True),
        }

    values = run_once(benchmark, measure)
    narrow, wide = values["narrow"], values["wide"]
    fairness = values["fairness"]
    sessions = values["sessions"]
    scaling = wide["throughput"] / narrow["throughput"]
    identical = values["service"] == values["plain"]

    report.table(
        [
            {
                "lanes": r["lanes"],
                "units": r["units"],
                "tasks": r["tasks"],
                "makespan_s": r["makespan"],
                "tasks_per_sim_s": r["throughput"],
            }
            for r in (narrow, wide)
        ],
        title=(
            f"B10: service throughput vs lanes "
            f"(4 tenants x {THROUGHPUT_UNITS} units, {UNIT_TASKS} tasks/unit, "
            f"redundancy {REDUNDANCY})"
        ),
    )
    report.note(
        f"lane scaling {scaling:.2f}x (floor {THROUGHPUT_FLOOR}x); "
        f"fairness ratio {fairness['ratio']:.2f} under {SKEW}:1 skew "
        f"(heavy {fairness['completion_rates']['heavy']:.0%}, "
        f"light {fairness['completion_rates']['light']:.0%}); "
        f"{sessions['succeeded']}/{sessions['sessions']} concurrent sessions in "
        f"{sessions['wall_s']:.1f}s ({sessions['sessions_per_s']:.0f}/s); "
        f"single-tenant bit-identity: {identical}"
    )

    gates = {
        f"lane_scaling >= {THROUGHPUT_FLOOR}": scaling >= THROUGHPUT_FLOOR,
        f"fairness_ratio <= {FAIRNESS_CEILING}": fairness["ratio"]
        <= FAIRNESS_CEILING,
        "light_tenant_completes_fully": fairness["completion_rates"]["light"]
        == 1.0,
        "all_sessions_succeed": sessions["succeeded"] == sessions["sessions"],
        "ledgers_sum_to_platform_spend": sessions["ledger_matches"],
        "single_tenant_bit_identical": identical,
    }
    out_path = bench_artifact("BENCH_service.json")
    with open(out_path, "w") as fh:
        json.dump(
            {
                "workload": {
                    "tenants": 4,
                    "units_per_tenant": THROUGHPUT_UNITS,
                    "unit_tasks": UNIT_TASKS,
                    "redundancy": REDUNDANCY,
                    "skew": SKEW,
                    "sessions": N_SESSIONS,
                    "pool": POOL_SIZE,
                    "quick": quick_mode(),
                },
                "throughput": {"narrow": narrow, "wide": wide, "scaling": scaling},
                "fairness": fairness,
                "sessions": sessions,
                "bit_identity": {
                    "identical": identical,
                    "cost": values["plain"]["cost"],
                    "answers": values["plain"]["answers"],
                },
                "gates": gates,
            },
            fh,
            indent=2,
        )

    assert scaling >= THROUGHPUT_FLOOR, f"lane scaling {scaling:.2f}x"
    assert fairness["ratio"] <= FAIRNESS_CEILING, f"ratio {fairness['ratio']:.2f}"
    assert fairness["completion_rates"]["light"] == 1.0
    assert sessions["succeeded"] == sessions["sessions"]
    assert sessions["ledger_matches"]
    assert identical, "single-tenant service run diverged from the plain engine"
