"""F9 — Hybrid human/machine labeling: crowd-in-the-loop active learning.

Label 300 documents with a small crowd budget. Three policies:

* crowd-only — spend the budget on random items; everything unlabeled gets
  the best constant guess (what a no-ML pipeline produces);
* hybrid-random — same crowd labels, but a naive-Bayes model trained on
  them labels the rest (passive learning);
* hybrid-uncertainty — the model also *chooses* which items the crowd
  labels (lowest-margin first).

Expected shapes: hybrid policies dominate crowd-only at every budget by a
wide margin (the tutorial's machine+human argument); uncertainty routing
adds a smaller but consistent edge over random routing on the harder
(low-signal) corpus.
"""

from conftest import run_once

from repro.experiments.datasets import text_classification_dataset
from repro.experiments.harness import run_trials
from repro.hybrid import ActiveLearner
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool

N_DOCS = 300
BUDGETS = (20, 40, 80)
SIGNAL = 0.3  # hard corpus: the model stays imperfect at these budgets


def _run(selection: str, budget: int, seed: int) -> tuple[float, float]:
    dataset = text_classification_dataset(
        N_DOCS, signal_strength=SIGNAL, seed=seed + 101
    )
    truth = dict(zip(dataset.documents, dataset.labels))
    platform = SimulatedPlatform(WorkerPool.uniform(15, 0.92, seed=seed), seed=seed + 1)
    learner = ActiveLearner(
        platform, dataset.classes, truth_fn=truth.get,
        selection=selection, batch_size=10, seed=seed + 2,
    )
    result = learner.run(dataset.documents, label_budget=budget)
    hybrid_accuracy = result.accuracy_against(dataset.labels)
    # Crowd-only counterfactual on the same labels: crowd-labeled items are
    # (approximately) right, the rest get the majority-class constant.
    crowd_only = (budget * 0.97 + (N_DOCS - budget) * (1 / 3)) / N_DOCS
    return hybrid_accuracy, crowd_only


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for budget in BUDGETS:
        random_acc, crowd_only = _run("random", budget, seed)
        uncertainty_acc, _ = _run("uncertainty", budget, seed)
        values[f"crowd_only@{budget}"] = crowd_only
        values[f"hybrid_random@{budget}"] = random_acc
        values[f"hybrid_uncertainty@{budget}"] = uncertainty_acc
    return values


def test_f9_hybrid_active_learning(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F9", _trial, n_trials=4))

    rows = []
    for budget in BUDGETS:
        rows.append(
            {
                "crowd_budget": budget,
                "crowd_only": result.mean(f"crowd_only@{budget}"),
                "hybrid_random": result.mean(f"hybrid_random@{budget}"),
                "hybrid_uncertainty": result.mean(f"hybrid_uncertainty@{budget}"),
            }
        )
    report.table(
        rows,
        title=f"F9: labeling 300 docs, crowd budget sweep (signal={SIGNAL}, 4 trials)",
    )

    # Shapes: hybrid >> crowd-only everywhere; uncertainty routing >=
    # random routing on average; more budget never hurts the hybrid.
    for budget in BUDGETS:
        assert result.mean(f"hybrid_random@{budget}") > result.mean(
            f"crowd_only@{budget}"
        ) + 0.10
    mean_gain = sum(
        result.mean(f"hybrid_uncertainty@{b}") - result.mean(f"hybrid_random@{b}")
        for b in BUDGETS
    ) / len(BUDGETS)
    assert mean_gain > -0.01
    assert result.mean("hybrid_uncertainty@80") >= result.mean("hybrid_uncertainty@20")
