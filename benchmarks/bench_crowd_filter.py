"""F6 — Crowd filter strategies: fixed-k vs adaptive sequential.

Sweeps predicate selectivity. Expected shape (CrowdScreen): the adaptive
strategy matches fixed-k accuracy while buying ~half the answers, because
most items terminate after two agreeing votes; the saving holds across
selectivities.
"""

from conftest import run_once

from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.operators.filter import AdaptiveFilter, FixedKFilter

POOL = PoolSpec(kind="uniform", size=25, accuracy=0.88)
SELECTIVITIES = (0.1, 0.5, 0.9)
N_ITEMS = 100


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    items = list(range(N_ITEMS))
    for selectivity in SELECTIVITIES:
        cutoff = int(N_ITEMS * selectivity)
        truth = [i < cutoff for i in items]

        platform = make_platform(POOL, seed=seed)
        fixed = FixedKFilter(
            platform, "keep?", truth_fn=lambda i: truth[i], redundancy=5
        ).run(items)
        values[f"fixed_q@{selectivity}"] = fixed.questions_asked
        values[f"fixed_acc@{selectivity}"] = fixed.accuracy_against(truth)

        platform = make_platform(POOL, seed=seed)
        adaptive = AdaptiveFilter(
            platform, "keep?", truth_fn=lambda i: truth[i], margin=2, max_answers=5
        ).run(items)
        values[f"adaptive_q@{selectivity}"] = adaptive.questions_asked
        values[f"adaptive_acc@{selectivity}"] = adaptive.accuracy_against(truth)
    return values


def test_f6_filter_strategies(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F6", _trial, n_trials=3))

    rows = []
    for selectivity in SELECTIVITIES:
        rows.append(
            {
                "selectivity": selectivity,
                "fixed5_questions": result.mean(f"fixed_q@{selectivity}"),
                "fixed5_accuracy": result.mean(f"fixed_acc@{selectivity}"),
                "adaptive_questions": result.mean(f"adaptive_q@{selectivity}"),
                "adaptive_accuracy": result.mean(f"adaptive_acc@{selectivity}"),
            }
        )
    report.table(rows, title="F6: fixed-k vs adaptive filtering (100 items, 3 trials)")

    for selectivity in SELECTIVITIES:
        # Adaptive buys at most ~60% of fixed-k's answers...
        assert result.mean(f"adaptive_q@{selectivity}") < 0.62 * result.mean(
            f"fixed_q@{selectivity}"
        )
        # ...while keeping accuracy within 4 points.
        assert result.mean(f"adaptive_acc@{selectivity}") >= result.mean(
            f"fixed_acc@{selectivity}"
        ) - 0.04
