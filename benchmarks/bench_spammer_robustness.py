"""T2 — Robustness to spammers: accuracy vs spammer fraction at k=5.

Expected shape: MV degrades steeply as spammers dilute the vote; worker-
model methods (DS / ZC / Bayes) hold up much longer because they learn to
discount the spammers' answers.
"""

from conftest import run_once

from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.quality.truth import CATEGORICAL_METHODS

METHODS = ("mv", "zc", "ds", "bayes", "mace")
SPAM_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for fraction in SPAM_FRACTIONS:
        spec = PoolSpec(kind="spammers", size=30, spammer_fraction=fraction, accuracy=0.85)
        platform = make_platform(spec, seed=seed)
        dataset = labeling_dataset(250, seed=seed + 17)
        answers = platform.collect(dataset.tasks, redundancy=5)
        for name in METHODS:
            result = CATEGORICAL_METHODS[name]().infer(answers)
            values[f"{name}@{fraction}"] = result.accuracy_against(dataset.truth)
    return values


def test_t2_spammer_robustness(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T2", _trial, n_trials=3))

    rows = []
    for name in METHODS:
        row = {"method": name}
        for fraction in SPAM_FRACTIONS:
            row[f"spam={fraction:.0%}"] = result.mean(f"{name}@{fraction}")
        rows.append(row)
    report.table(rows, title="T2: accuracy vs spammer fraction (k=5, 3 trials)")

    # Shape: at 40% spammers, learning-based methods beat MV clearly.
    mv_heavy = result.mean("mv@0.4")
    for name in ("zc", "ds", "bayes", "mace"):
        assert result.mean(f"{name}@0.4") >= mv_heavy
    # And MV's drop from 0% to 40% is the steepest in absolute terms.
    mv_drop = result.mean("mv@0.0") - result.mean("mv@0.4")
    ds_drop = result.mean("ds@0.0") - result.mean("ds@0.4")
    assert mv_drop >= ds_drop - 0.02
