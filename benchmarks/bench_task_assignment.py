"""F1 — Online task assignment: quality vs answer budget.

Random / round-robin (fixed redundancy) vs QASCA (quality-aware). Expected
shape: QASCA dominates the baselines at every budget because it spends
marginal answers on tasks whose posterior they actually move.
"""

from conftest import run_once

from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.quality.assignment import Qasca, RandomAssignment, RoundRobinAssignment, run_assignment
from repro.quality.truth import MajorityVote

N_TASKS = 150
BUDGETS = (150, 300, 450, 600)
POOL = PoolSpec(kind="heterogeneous", size=30, accuracy_low=0.55, accuracy_high=0.9)

STRATEGIES = {
    "random": lambda budget: RandomAssignment(redundancy=max(1, budget // N_TASKS), seed=0),
    "round_robin": lambda budget: RoundRobinAssignment(redundancy=max(1, budget // N_TASKS)),
    "qasca": lambda budget: Qasca(redundancy_cap=9, confidence_target=0.97),
}


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for budget in BUDGETS:
        for name, factory in STRATEGIES.items():
            platform = make_platform(POOL, seed=seed)
            dataset = labeling_dataset(N_TASKS, labels=("yes", "no"), seed=seed + 31)
            strategy = factory(budget)
            outcome = run_assignment(platform, strategy, dataset.tasks, max_answers=budget)
            if hasattr(strategy, "inferred_truths"):
                inferred = strategy.inferred_truths()
            else:
                inferred = MajorityVote().infer(outcome.answers_by_task).truths
            accuracy = sum(
                1 for t in dataset.truth if inferred.get(t) == dataset.truth[t]
            ) / len(dataset.truth)
            values[f"{name}@{budget}"] = accuracy
    return values


def test_f1_assignment_quality_vs_budget(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F1", _trial, n_trials=3))

    rows = []
    for name in STRATEGIES:
        row = {"strategy": name}
        for budget in BUDGETS:
            row[f"budget={budget}"] = result.mean(f"{name}@{budget}")
        rows.append(row)
    report.table(rows, title="F1: labeling accuracy vs answer budget (3 trials)")
    report.series(
        list(BUDGETS),
        [result.mean(f"qasca@{b}") - result.mean(f"round_robin@{b}") for b in BUDGETS],
        title="QASCA advantage over round-robin",
        x_label="budget",
        y_label="accuracy delta",
    )

    # Shape: QASCA never loses to round-robin by a meaningful margin, and
    # wins at the mid budgets where adaptivity matters most.
    for budget in BUDGETS:
        assert result.mean(f"qasca@{budget}") >= result.mean(f"round_robin@{budget}") - 0.03
    assert any(
        result.mean(f"qasca@{b}") > result.mean(f"round_robin@{b}") for b in BUDGETS
    )
