"""Columnar substrate benchmarks.

B3 — scan/filter/join sweep over the columnar store: times the legacy
row-at-a-time path (Row views + per-row ``Expression.evaluate``) against
the vectorized column path on a 1M-row table (reduced under ``--quick``),
asserts the two paths produce bit-identical results — same rowids, same
order, same materialized values, same CNULL cells — and emits the
measurements as ``BENCH_columnar.json`` for the CI artifact. The scan
speedup is gated: >=20x full, >=5x quick.
"""

import json
import os
import time

import numpy as np
from conftest import bench_artifact, run_once

from repro.data.database import Database
from repro.data.expressions import (
    And,
    ColumnRef,
    Comparison,
    InList,
    IsCNull,
    Like,
    Literal,
    Or,
)
from repro.data.schema import CNULL, SchemaBuilder, is_cnull
from repro.data.table import Table
from repro.experiments.harness import quick_mode
from repro.lang.executor import Executor
from repro.lang.planner import JoinNode, LogicalPlan, ScanNode
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool

CITIES = ("oslo", "paris", "rome", "berlin", "athens", "ünïted")


def _build_items(name: str, n: int, seed: int, database: Database | None = None) -> Table:
    rng = np.random.default_rng(seed)
    schema = (
        SchemaBuilder()
        .integer("uid")
        .float("score")
        .string("city")
        .boolean("active")
        .crowd_string("label")
        .integer("grp")
        .build()
    )
    score = np.round(rng.normal(50.0, 20.0, n), 3).tolist()
    score_null = (rng.random(n) < 0.05).tolist()
    label_draw = rng.random(n).tolist()
    table = database.create_table(name, schema) if database is not None else Table(name, schema)
    table.insert_columns(
        {
            "uid": np.arange(n, dtype=np.int64).tolist(),
            "score": [None if m else v for v, m in zip(score, score_null)],
            "city": rng.choice(np.array(CITIES, dtype=object), n).tolist(),
            "active": (rng.random(n) < 0.5).tolist(),
            "label": [
                CNULL if d < 0.10 else None if d < 0.15 else ("hot" if d < 0.60 else "cold")
                for d in label_draw
            ],
            "grp": rng.integers(0, max(1, n // 50), n).tolist(),
        }
    )
    return table


def _build_dim(name: str, n_groups: int, seed: int, database: Database | None = None) -> Table:
    rng = np.random.default_rng(seed)
    schema = SchemaBuilder().integer("k").string("tag").build()
    table = database.create_table(name, schema) if database is not None else Table(name, schema)
    table.insert_columns(
        {
            "k": np.arange(n_groups, dtype=np.int64).tolist(),
            "tag": rng.choice(np.array(("x", "y", "z"), dtype=object), n_groups).tolist(),
        }
    )
    return table


def _predicates(n: int):
    c = ColumnRef
    lit = Literal
    return [
        ("compare", Comparison(">", c("score"), lit(60.0))),
        (
            "compound",
            And(
                Comparison(">=", c("score"), lit(30.0)),
                Or(Comparison("=", c("city"), lit("oslo")), Comparison("<", c("uid"), lit(n // 2))),
            ),
        ),
        ("like", Like(c("city"), "%r%")),
        ("inlist", InList(c("city"), ("rome", "berlin"))),
        ("iscnull", IsCNull(c("label"))),
        ("bool", Comparison("=", c("active"), lit(True))),
    ]


def _row_scan(table: Table, expr) -> list[int]:
    """The legacy tuple-at-a-time scan: per-row views, per-row evaluate."""
    return [row.rowid for row in table if expr.evaluate(row) is True]


def test_b3_columnar_scan_filter_join(benchmark, report):
    n = 120_000 if quick_mode() else 1_000_000
    floor = 5.0 if quick_mode() else 20.0
    join_n = 2_000 if quick_mode() else 8_000

    items = _build_items("items", n, seed=7)
    store = items.store

    def sweep():
        out = {"scan_filter": {}, "join": {}, "cnull": {}}

        # -- scan/filter: row path vs vectorized path, bit-identical -- #
        row_total = vec_total = 0.0
        for label, expr in _predicates(n):
            start = time.perf_counter()
            row_ids = _row_scan(items, expr)
            row_s = time.perf_counter() - start
            start = time.perf_counter()
            vec_ids = items.filter_rowids(expr)
            vec_s = time.perf_counter() - start
            assert vec_ids.tolist() == row_ids, f"{label}: rowid/order mismatch"
            row_total += row_s
            vec_total += vec_s
            out["scan_filter"][label] = {
                "rows_kept": len(row_ids),
                "row_s": row_s,
                "vec_s": vec_s,
                "speedup": row_s / vec_s,
            }
        out["scan_speedup"] = row_total / vec_total

        # Value-level identity on one predicate: materialized dicts match.
        expr = _predicates(n)[1][1]
        sample = items.filter_rowids(expr)[:2_000]
        for rid in sample.tolist():
            assert store.row_dict(rid) == items.row(rid).as_dict()

        # -- CNULL cells: mask popcount path vs full-table walk -- #
        start = time.perf_counter()
        walked = [
            (row.rowid, col.name)
            for row in items
            for col in items.schema.crowd_columns
            if is_cnull(row[col.name])
        ]
        walk_s = time.perf_counter() - start
        start = time.perf_counter()
        cells = items.cnull_cells()
        mask_s = time.perf_counter() - start
        assert cells == walked, "cnull_cells diverges from the row walk"
        assert items.cnull_count() == len(walked)
        out["cnull"] = {"cells": len(cells), "walk_s": walk_s, "mask_s": mask_s}

        # -- join: nested-loop row path vs columnar hash build/probe -- #
        db = Database()
        _build_items("items_small", join_n, seed=11, database=db)
        _build_dim("dim", max(1, join_n // 50), seed=13, database=db)
        platform = SimulatedPlatform(WorkerPool.uniform(3, seed=1), seed=2)
        plan = LogicalPlan(
            JoinNode(
                ScanNode("items_small"),
                ScanNode("dim"),
                And(
                    Comparison("=", ColumnRef("grp"), ColumnRef("k")),
                    Comparison("!=", ColumnRef("tag"), Literal("y")),
                ),
            )
        )
        hash_ex = Executor(db, platform)
        nested_ex = Executor(db, platform)
        nested_ex._columnar_join = lambda node: None
        nested_ex._equi_split = lambda *args: None
        start = time.perf_counter()
        hashed = hash_ex.execute(plan)
        hash_s = time.perf_counter() - start
        start = time.perf_counter()
        nested = nested_ex.execute(plan)
        nested_s = time.perf_counter() - start
        assert hashed.rows == nested.rows, "hash join diverges from nested loop"
        out["join"] = {
            "left": join_n,
            "right": max(1, join_n // 50),
            "matched": len(hashed.rows),
            "nested_s": nested_s,
            "hash_s": hash_s,
            "speedup": nested_s / hash_s,
        }
        return out

    result = run_once(benchmark, sweep)

    report.table(
        [{"predicate": k, **v} for k, v in result["scan_filter"].items()],
        title=f"B3: columnar scan/filter vs row path ({n} rows)",
        float_format="{:.4f}",
    )
    report.table(
        [result["join"]],
        title="B3: columnar hash join vs nested loop",
        float_format="{:.4f}",
    )
    report.note(
        f"aggregate scan speedup {result['scan_speedup']:.1f}x "
        f"(floor {floor}x); cnull popcount {result['cnull']['mask_s'] * 1e3:.2f}ms "
        f"vs walk {result['cnull']['walk_s'] * 1e3:.0f}ms"
    )

    out_path = bench_artifact("BENCH_columnar.json")
    with open(out_path, "w") as fh:
        json.dump(
            {
                "workload": {"rows": n, "join_rows": join_n, "quick": quick_mode()},
                "scan_speedup_floor": floor,
                **result,
            },
            fh,
            indent=2,
        )
    report.note(f"wrote {out_path}")

    assert result["scan_speedup"] >= floor, (
        f"columnar scan only {result['scan_speedup']:.1f}x faster than the "
        f"row path (floor {floor}x)"
    )
