"""T6 — Latency control: mitigation strategies and the pricing lever.

Heavy-tailed worker service times on a 500-task job. Expected shape:
hedged replication and straggler rescue both cut tail latency (p95 /
makespan) versus the baseline — replication at ~r x cost, rescue at a
fraction of that; raising pay compresses the whole timeline per the
log-linear supply response.
"""

from conftest import run_once

from repro.experiments.harness import run_trials
from repro.latency.mitigation import (
    run_baseline,
    run_with_replication,
    run_with_straggler_rescue,
)
from repro.platform.platform import SimulatedPlatform
from repro.platform.pricing import PriceResponseModel
from repro.platform.task import single_choice
from repro.workers.models import OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import LatencyModel, Worker

N_TASKS = 500


def _pool(seed: int) -> WorkerPool:
    workers = [
        Worker(
            model=OneCoinModel(0.9),
            latency=LatencyModel(mean_seconds=25.0, sigma=1.4, arrival_rate=1 / 20),
        )
        for _ in range(60)
    ]
    return WorkerPool(workers, seed=seed)


def _tasks(prefix: str):
    return [single_choice(f"{prefix}{i}", ("a", "b"), truth="a") for i in range(N_TASKS)]


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}

    platform = SimulatedPlatform(_pool(seed), seed=seed + 1)
    base = run_baseline(platform, _tasks("base"))
    values["base_p95"] = base.p95
    values["base_makespan"] = base.makespan
    values["base_cost"] = base.cost

    platform = SimulatedPlatform(_pool(seed), seed=seed + 1)
    repl = run_with_replication(platform, _tasks("repl"), replication=2)
    values["repl_p95"] = repl.p95
    values["repl_makespan"] = repl.makespan
    values["repl_cost"] = repl.cost

    platform = SimulatedPlatform(_pool(seed), seed=seed + 1)
    rescue = run_with_straggler_rescue(platform, _tasks("resc"), percentile=0.8)
    values["rescue_p95"] = rescue.p95
    values["rescue_makespan"] = rescue.makespan
    values["rescue_cost"] = rescue.cost

    # Pricing lever: simulate the same job at 3x reward.
    response = PriceResponseModel(reference_reward=0.01)
    platform = SimulatedPlatform(_pool(seed), seed=seed + 1)
    tasks = _tasks("paid")
    for task in tasks:
        task.reward = 0.03
    platform.pricing.by_type = {}
    platform.pricing.default = 0.03
    timeline = platform.simulate_timeline(tasks, redundancy=1, price_response=response)
    values["paid_makespan"] = timeline.makespan

    # Pool attrition: 20% of workers quit after each completed assignment.
    platform = SimulatedPlatform(_pool(seed), seed=seed + 1)
    churn = platform.simulate_timeline(
        _tasks("churn"), redundancy=1, departure_probability=0.2
    )
    values["churn_makespan"] = churn.makespan
    values["churn_completed"] = len(churn.completion_times)
    return values


def test_t6_latency_mitigation(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T6", _trial, n_trials=3))

    rows = [
        {
            "strategy": name,
            "p95_seconds": result.mean(f"{key}_p95"),
            "makespan": result.mean(f"{key}_makespan"),
            "cost": result.mean(f"{key}_cost"),
        }
        for name, key in (
            ("baseline", "base"),
            ("replication x2", "repl"),
            ("straggler rescue", "rescue"),
        )
    ]
    rows.append(
        {
            "strategy": "3x pay (supply response)",
            "p95_seconds": float("nan"),
            "makespan": result.mean("paid_makespan"),
            "cost": N_TASKS * 0.03,
        }
    )
    rows.append(
        {
            "strategy": "20% attrition (no mitigation)",
            "p95_seconds": float("nan"),
            "makespan": result.mean("churn_makespan"),
            "cost": result.mean("churn_completed") * 0.01,
        }
    )
    report.table(rows, title="T6: latency mitigation on 500 tasks (3 trials)",
                 float_format="{:.1f}")
    report.note(
        f"attrition completed {result.mean('churn_completed'):.0f}/{N_TASKS} tasks"
    )

    # Shapes: both mitigations cut p95; replication roughly doubles cost;
    # rescue is cheaper than replication; higher pay shortens the makespan;
    # attrition slows the job or leaves tasks unfinished.
    assert result.mean("repl_p95") < result.mean("base_p95")
    assert result.mean("rescue_makespan") <= result.mean("base_makespan") * 1.02
    assert result.mean("repl_cost") == pytest_approx(2 * result.mean("base_cost"))
    assert result.mean("rescue_cost") < result.mean("repl_cost")
    assert result.mean("paid_makespan") < result.mean("base_makespan")
    assert (
        result.mean("churn_completed") < N_TASKS
        or result.mean("churn_makespan") > result.mean("base_makespan")
    )


def pytest_approx(value: float, rel: float = 0.05):
    import pytest

    return pytest.approx(value, rel=rel)
