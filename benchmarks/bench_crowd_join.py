"""T3 — Crowd join / entity resolution: the CrowdER cost ladder.

crowd-all-pairs vs machine-pruning vs pruning+transitivity, sweeping the
pruning threshold tau. Expected shape: pruning cuts questions by an order
of magnitude with minor F1 loss; transitivity cuts further; looser tau
buys recall with more questions.
"""

from conftest import run_once

from repro.cost.pruning import SimilarityPruner
from repro.experiments.datasets import er_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.operators.join import CrowdJoin

POOL = PoolSpec(kind="uniform", size=25, accuracy=0.93)
TAUS = (0.3, 0.5, 0.7)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    dataset = er_dataset(n_entities=30, records_per_entity=(2, 3), seed=seed + 71)

    def run(pruner, transitivity, label):
        platform = make_platform(POOL, seed=seed)
        join = CrowdJoin(
            platform, dataset.truth_fn, pruner=pruner,
            use_transitivity=transitivity, redundancy=3,
        )
        result = join.run(dataset.records)
        _p, recall, f1 = result.precision_recall_f1(dataset.true_pairs)
        values[f"{label}_questions"] = result.questions_asked
        values[f"{label}_f1"] = f1
        values[f"{label}_recall"] = recall

    run(None, False, "allpairs")
    for tau in TAUS:
        run(SimilarityPruner(tau), False, f"prune{tau}")
        run(SimilarityPruner(tau), True, f"trans{tau}")
    return values


def test_t3_crowd_join_ladder(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T3", _trial, n_trials=3))

    rows = [
        {
            "pipeline": "crowd all-pairs",
            "questions": result.mean("allpairs_questions"),
            "f1": result.mean("allpairs_f1"),
            "recall": result.mean("allpairs_recall"),
        }
    ]
    for tau in TAUS:
        rows.append(
            {
                "pipeline": f"pruning tau={tau}",
                "questions": result.mean(f"prune{tau}_questions"),
                "f1": result.mean(f"prune{tau}_f1"),
                "recall": result.mean(f"prune{tau}_recall"),
            }
        )
        rows.append(
            {
                "pipeline": f"pruning+trans tau={tau}",
                "questions": result.mean(f"trans{tau}_questions"),
                "f1": result.mean(f"trans{tau}_f1"),
                "recall": result.mean(f"trans{tau}_recall"),
            }
        )
    report.table(rows, title="T3: ER pipelines — questions vs quality (3 trials)",
                 float_format="{:.2f}")

    # Shapes: pruning slashes question count by >=5x at tau=0.3 with F1
    # within 0.15 of all-pairs' best achievable; transitivity asks fewer
    # still; recall falls as tau tightens.
    assert result.mean("prune0.3_questions") * 5 <= result.mean("allpairs_questions")
    for tau in TAUS:
        assert result.mean(f"trans{tau}_questions") <= result.mean(f"prune{tau}_questions")
    assert result.mean("prune0.3_recall") >= result.mean("prune0.7_recall")
    assert result.mean("prune0.3_f1") >= 0.7
