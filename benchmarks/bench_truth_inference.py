"""Truth-inference benchmarks.

T1 — Accuracy vs redundancy k: reproduces the survey's canonical
comparison (MV / WMV / ZC / DS / GLAD / Bayes) on a heterogeneous worker
pool. Expected shape: inference-based methods (EM family) match MV at k=1
(no signal to exploit) and pull ahead as k grows, because per-worker
evidence lets them learn who to trust.

B2 — EM kernel scaling sweep: times each EM method's vectorized
``kernel`` backend against the per-answer ``legacy`` backend on a single
large workload, asserts the two backends infer identical truths with the
same iteration count, asserts the wall-clock speedup floor, and emits the
measurements as ``BENCH_truth_inference.json`` for the CI artifact.
"""

import json
import os
import time

from conftest import bench_artifact, run_once

from repro.experiments.calibration import expected_calibration_error
from repro.experiments.harness import PoolSpec, make_platform, quick_mode, run_trials
from repro.experiments.datasets import labeling_dataset
from repro.quality.truth import (
    CATEGORICAL_METHODS,
    DawidSkene,
    Glad,
    Mace,
    ZenCrowd,
)

METHODS = ("mv", "wmv", "zc", "ds", "glad", "bayes")
REDUNDANCIES = (1, 3, 5, 7)
POOL = PoolSpec(kind="heterogeneous", size=30, accuracy_low=0.5, accuracy_high=0.95)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for k in REDUNDANCIES:
        platform = make_platform(POOL, seed=seed)
        dataset = labeling_dataset(250, seed=seed + 100)
        answers = platform.collect(dataset.tasks, redundancy=k)
        for name in METHODS:
            result = CATEGORICAL_METHODS[name]().infer(answers)
            values[f"{name}@k{k}"] = result.accuracy_against(dataset.truth)
            if k == 5:
                values[f"{name}_ece"] = expected_calibration_error(
                    result, dataset.truth
                )
    return values


def test_t1_truth_inference_accuracy_vs_redundancy(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T1", _trial, n_trials=3))

    rows = []
    for name in METHODS:
        row = {"method": name}
        for k in REDUNDANCIES:
            row[f"k={k}"] = result.mean(f"{name}@k{k}")
        row["ece@k5"] = result.mean(f"{name}_ece")
        rows.append(row)
    report.table(rows, title="T1: truth-inference accuracy vs redundancy (3 trials)")

    # Shape checks (who wins): at k>=5 the EM family beats plain MV.
    mv_k5 = result.mean("mv@k5")
    best_em_k5 = max(result.mean(f"{m}@k5") for m in ("zc", "ds", "bayes"))
    assert best_em_k5 >= mv_k5
    # Accuracy grows with redundancy for every method.
    for name in METHODS:
        assert result.mean(f"{name}@k7") >= result.mean(f"{name}@k1") - 0.02


# --------------------------------------------------------------------- #
# B2 — kernel vs legacy backend scaling sweep
# --------------------------------------------------------------------- #

#: EM configs for the sweep. Iteration caps are pinned so both backends do
#: exactly the same amount of model work; GLAD is additionally capped low
#: because its gradient-ascent dynamics amplify float summation-order noise
#: at high iteration counts (see tests/test_truth_kernels.py).
SWEEP_METHODS = {
    "zc": lambda backend: ZenCrowd(max_iterations=25, backend=backend),
    "mace": lambda backend: Mace(max_iterations=25, backend=backend),
    "glad": lambda backend: Glad(max_iterations=8, gradient_steps=10, backend=backend),
    "ds": lambda backend: DawidSkene(max_iterations=50, backend=backend),
}

#: Methods whose legacy backend is pure-Python per-answer loops; these must
#: clear the speedup floor. DS's legacy path is already numpy (dense repeat
#: temporaries), so its win is smaller and only reported.
SPEEDUP_GATED = ("zc", "mace", "glad")


def _sweep_workload():
    if quick_mode():
        pool, n_tasks, redundancy = PoolSpec(kind="heterogeneous", size=20), 300, 3
    else:
        pool, n_tasks, redundancy = PoolSpec(kind="heterogeneous", size=50), 2000, 5
    platform = make_platform(pool, seed=11)
    dataset = labeling_dataset(n_tasks, labels=("a", "b", "c", "d", "e"), seed=13)
    answers = platform.collect(dataset.tasks, redundancy=redundancy)
    n_answers = sum(len(a) for a in answers.values())
    meta = {
        "n_tasks": n_tasks,
        "n_workers": pool.size,
        "n_labels": 5,
        "redundancy": redundancy,
        "n_answers": n_answers,
        "quick": quick_mode(),
    }
    return answers, meta


def _time_backend(factory, backend, answers):
    algo = factory(backend)
    start = time.perf_counter()
    result = algo.infer(answers)
    return time.perf_counter() - start, result


def test_b2_kernel_scaling_sweep(benchmark, report):
    answers, meta = _sweep_workload()
    floor = 2.0 if quick_mode() else 5.0

    def sweep():
        rows = {}
        for name, factory in SWEEP_METHODS.items():
            legacy_s, legacy = _time_backend(factory, "legacy", answers)
            kernel_s, kernel = _time_backend(factory, "kernel", answers)
            # Equivalence gate: same truths, same amount of EM work.
            assert kernel.truths == legacy.truths, f"{name}: backends disagree"
            assert kernel.iterations == legacy.iterations
            assert kernel.converged == legacy.converged
            rows[name] = {
                "legacy_s": legacy_s,
                "kernel_s": kernel_s,
                "speedup": legacy_s / kernel_s,
                "iterations": kernel.iterations,
            }
        return rows

    rows = run_once(benchmark, sweep)

    report.table(
        [
            {"method": name, **vals}
            for name, vals in rows.items()
        ],
        title=f"B2: EM kernel vs legacy backend ({meta['n_answers']} answers)",
    )

    out_path = bench_artifact("BENCH_truth_inference.json")
    with open(out_path, "w") as fh:
        json.dump({"workload": meta, "speedup_floor": floor, "methods": rows}, fh, indent=2)
    report.note(f"wrote {out_path}")

    for name in SPEEDUP_GATED:
        assert rows[name]["speedup"] >= floor, (
            f"{name}: kernel backend only {rows[name]['speedup']:.1f}x faster "
            f"than legacy (floor {floor}x)"
        )
