"""T1 — Truth-inference comparison: accuracy vs redundancy k.

Reproduces the survey's canonical comparison (MV / WMV / ZC / DS / GLAD /
Bayes) on a heterogeneous worker pool. Expected shape: inference-based
methods (EM family) match MV at k=1 (no signal to exploit) and pull ahead
as k grows, because per-worker evidence lets them learn who to trust.
"""

from conftest import run_once

from repro.experiments.calibration import expected_calibration_error
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.experiments.datasets import labeling_dataset
from repro.quality.truth import CATEGORICAL_METHODS

METHODS = ("mv", "wmv", "zc", "ds", "glad", "bayes")
REDUNDANCIES = (1, 3, 5, 7)
POOL = PoolSpec(kind="heterogeneous", size=30, accuracy_low=0.5, accuracy_high=0.95)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for k in REDUNDANCIES:
        platform = make_platform(POOL, seed=seed)
        dataset = labeling_dataset(250, seed=seed + 100)
        answers = platform.collect(dataset.tasks, redundancy=k)
        for name in METHODS:
            result = CATEGORICAL_METHODS[name]().infer(answers)
            values[f"{name}@k{k}"] = result.accuracy_against(dataset.truth)
            if k == 5:
                values[f"{name}_ece"] = expected_calibration_error(
                    result, dataset.truth
                )
    return values


def test_t1_truth_inference_accuracy_vs_redundancy(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T1", _trial, n_trials=3))

    rows = []
    for name in METHODS:
        row = {"method": name}
        for k in REDUNDANCIES:
            row[f"k={k}"] = result.mean(f"{name}@k{k}")
        row["ece@k5"] = result.mean(f"{name}_ece")
        rows.append(row)
    report.table(rows, title="T1: truth-inference accuracy vs redundancy (3 trials)")

    # Shape checks (who wins): at k>=5 the EM family beats plain MV.
    mv_k5 = result.mean("mv@k5")
    best_em_k5 = max(result.mean(f"{m}@k5") for m in ("zc", "ds", "bayes"))
    assert best_em_k5 >= mv_k5
    # Accuracy grows with redundancy for every method.
    for name in METHODS:
        assert result.mean(f"{name}@k7") >= result.mean(f"{name}@k1") - 0.02
