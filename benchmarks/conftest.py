"""Shared benchmark fixtures.

Each benchmark runs its experiment exactly once via ``benchmark.pedantic``
(the experiments are statistical, not microbenchmarks) and prints the
paper-style table/series through the ``report`` fixture, which bypasses
pytest's output capture so rows land in the benchmark log.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.report import format_series, format_table

#: Repo root — the one documented home for BENCH_*.json artifacts, so CI
#: upload paths never depend on pytest's working directory.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_artifact(filename: str) -> str:
    """Path a benchmark artifact is written to.

    All suites emit their ``BENCH_*.json`` at the repo root (override with
    ``CROWDDM_BENCH_DIR``); ``test_repo_consistency.py`` asserts every
    bench routes through this helper.
    """
    return os.path.join(os.environ.get("CROWDDM_BENCH_DIR") or REPO_ROOT, filename)


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="CI smoke mode: single-trial, reduced workloads (exports CROWDDM_BENCH_QUICK=1)",
    )


def pytest_configure(config):
    if config.getoption("--quick", default=False):
        os.environ["CROWDDM_BENCH_QUICK"] = "1"


@pytest.fixture
def report(capsys):
    """Print tables/series to the real terminal despite capture."""

    class Reporter:
        def table(self, rows, title="", columns=None, float_format="{:.3f}"):
            with capsys.disabled():
                print()
                print(format_table(rows, columns=columns, title=title, float_format=float_format))

        def series(self, xs, ys, title="", x_label="x", y_label="y"):
            with capsys.disabled():
                print()
                print(format_series(xs, ys, title=title, x_label=x_label, y_label=y_label))

        def note(self, text):
            with capsys.disabled():
                print(text)

    return Reporter()


def run_once(benchmark, fn):
    """Run the experiment body exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
