"""F2 — CDAS-style early termination: answers saved vs accuracy kept.

Sweeps the confidence threshold. Expected shape: cost (answers per task)
rises with the threshold while accuracy saturates — the knee is where the
requester should operate; fixed redundancy k=7 is the ceiling comparison.
"""

from conftest import run_once

from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.quality.assignment import Cdas, RoundRobinAssignment, run_assignment

N_TASKS = 120
THRESHOLDS = (0.8, 0.9, 0.95, 0.99)
POOL = PoolSpec(kind="uniform", size=25, accuracy=0.85)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    dataset_seed = seed + 53

    platform = make_platform(POOL, seed=seed)
    dataset = labeling_dataset(N_TASKS, labels=("yes", "no"), seed=dataset_seed)
    fixed = RoundRobinAssignment(redundancy=7)
    outcome = run_assignment(platform, fixed, dataset.tasks, max_answers=10_000)
    from repro.quality.truth import MajorityVote

    inferred = MajorityVote().infer(outcome.answers_by_task).truths
    values["fixed7_answers"] = outcome.answers_used / N_TASKS
    values["fixed7_accuracy"] = sum(
        1 for t in dataset.truth if inferred[t] == dataset.truth[t]
    ) / N_TASKS

    for threshold in THRESHOLDS:
        platform = make_platform(POOL, seed=seed)
        dataset = labeling_dataset(N_TASKS, labels=("yes", "no"), seed=dataset_seed)
        strategy = Cdas(
            confidence=threshold, min_answers=2, max_answers_per_task=7,
            assumed_accuracy=0.8,
        )
        outcome = run_assignment(platform, strategy, dataset.tasks, max_answers=10_000)
        inferred = strategy.inferred_truths()
        values[f"answers@{threshold}"] = outcome.answers_used / N_TASKS
        values[f"accuracy@{threshold}"] = sum(
            1 for t in dataset.truth if inferred[t] == dataset.truth[t]
        ) / N_TASKS
    return values


def test_f2_early_termination_frontier(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F2", _trial, n_trials=3))

    rows = [
        {
            "policy": f"cdas@{threshold}",
            "answers_per_task": result.mean(f"answers@{threshold}"),
            "accuracy": result.mean(f"accuracy@{threshold}"),
        }
        for threshold in THRESHOLDS
    ]
    rows.append(
        {
            "policy": "fixed k=7",
            "answers_per_task": result.mean("fixed7_answers"),
            "accuracy": result.mean("fixed7_accuracy"),
        }
    )
    report.table(rows, title="F2: early termination cost/accuracy frontier (3 trials)")

    # Shape: every CDAS point is cheaper than fixed-7; accuracy at the
    # highest threshold is within 3 points of fixed-7; answers increase
    # monotonically with threshold.
    for threshold in THRESHOLDS:
        assert result.mean(f"answers@{threshold}") < result.mean("fixed7_answers")
    assert result.mean("accuracy@0.99") >= result.mean("fixed7_accuracy") - 0.03
    answers = [result.mean(f"answers@{t}") for t in THRESHOLDS]
    assert answers == sorted(answers)
