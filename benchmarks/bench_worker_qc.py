"""T10 — Worker quality control: how much budget to spend on gold?

Total answer budget fixed; a fraction goes to hidden gold tasks that score
workers, spammers below chance are eliminated, and the remainder buys real
labels from the cleaned pool (majority vote). Expected shape: a little
gold pays for itself by purging spammers; too much gold starves the real
job — accuracy peaks at a small-to-moderate gold fraction (and spending
zero on gold is dominated when the pool is contaminated).
"""

from conftest import run_once

from repro.experiments.datasets import labeling_dataset
from repro.experiments.harness import run_trials
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.quality.truth import MajorityVote
from repro.quality.workerqc import GoldInjector, eliminate_spammers
from repro.workers.pool import WorkerPool

GOLD_FRACTIONS = (0.0, 0.1, 0.2, 0.4)
TOTAL_BUDGET = 900       # answers
N_TASKS = 200
SPAM = 0.3


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for fraction in GOLD_FRACTIONS:
        pool = WorkerPool.with_spammers(
            30, spammer_fraction=SPAM, good_accuracy=0.85, seed=seed
        )
        platform = SimulatedPlatform(pool, seed=seed + 1)
        gold_budget = int(TOTAL_BUDGET * fraction)

        if gold_budget > 0:
            # Spread the gold budget as redundancy over a fixed gold set.
            gold = [
                single_choice(f"gold{i}", ("yes", "no"), truth="yes")
                for i in range(15)
            ]
            redundancy = max(1, min(len(pool), gold_budget // len(gold)))
            injector = GoldInjector(gold_tasks=gold, seed=seed + 2)
            tasks_by_id = {g.task_id: g for g in gold}
            answers = platform.collect(gold, redundancy=redundancy)
            for task_answers in answers.values():
                injector.score(task_answers, tasks_by_id)
            eliminate_spammers(
                pool,
                injector.worker_accuracy(),
                injector.gold_counts(),
                chance_level=0.5,
                min_observations=3,
            )

        # Real job with whatever budget remains, on the (possibly) cleaned pool.
        remaining = TOTAL_BUDGET - gold_budget
        redundancy = max(1, remaining // N_TASKS)
        dataset = labeling_dataset(N_TASKS, labels=("yes", "no"), seed=seed + 3)
        answers = platform.collect(dataset.tasks, redundancy=redundancy)
        accuracy = MajorityVote().infer(answers).accuracy_against(dataset.truth)
        values[f"accuracy@{fraction}"] = accuracy
        values[f"redundancy@{fraction}"] = redundancy
        values[f"eliminated@{fraction}"] = 30 - len(pool.active_workers)
    return values


def test_t10_gold_budget_frontier(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T10", _trial, n_trials=4))

    rows = [
        {
            "gold_fraction": fraction,
            "real_redundancy": result.mean(f"redundancy@{fraction}"),
            "workers_eliminated": result.mean(f"eliminated@{fraction}"),
            "final_accuracy": result.mean(f"accuracy@{fraction}"),
        }
        for fraction in GOLD_FRACTIONS
    ]
    report.table(
        rows, title="T10: gold screening budget vs final accuracy (30% spam, 4 trials)"
    )

    # Shapes: some gold beats none; the heaviest gold spend is not the
    # optimum (it eats too much real redundancy); elimination grows with
    # gold budget.
    accuracies = {f: result.mean(f"accuracy@{f}") for f in GOLD_FRACTIONS}
    best = max(GOLD_FRACTIONS, key=lambda f: accuracies[f])
    assert best != 0.0
    assert accuracies[best] > accuracies[0.0]
    eliminated = [result.mean(f"eliminated@{f}") for f in GOLD_FRACTIONS]
    assert eliminated[0] == 0.0
    assert eliminated[-1] >= eliminated[1] - 1.0
