"""B8 — Hedged execution under straggler spikes: p95 makespan vs cost.

A sequence of statements (one ``scheduler.run`` each) executes on a
persistent platform under a pure straggler-spike fault plan (25% of
assignments run 20x their sampled service time; no churn, outages, or
delivery noise, so every delta is attributable to hedging). The hedged
platform fits per-task-type completion models online and speculatively
re-issues in-flight stragglers, first answer wins, losing copy cancelled
and refunded.

Gates (the ISSUE 8 acceptance bar):

* p95 of per-statement makespans drops by >= 2x with hedging on;
* hedged spend stays within 1.3x of the unhedged run (it is in fact
  equal here: losing copies are cancelled before payment);
* a hedged replay under the same seed is bit-identical.

Statement 1 is a warmup for both strategies — the completion model only
becomes decision-grade after the first statement's observations — and is
excluded from the p95 (reported separately).
"""

import json
import os

import numpy as np
from conftest import bench_artifact, run_once

from repro.experiments.harness import quick_mode
from repro.faults import straggler_spike_plan
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import single_choice
from repro.workers.pool import WorkerPool

N_STATEMENTS = 8 if quick_mode() else 20
TASKS_PER_STATEMENT = 12 if quick_mode() else 24
REDUNDANCY = 3
POOL_SIZE = 32
SEED = 17
SPIKE_RATE = 0.25
SPIKE_MULTIPLIER = 20.0


def _tasks(statement: int) -> list:
    return [
        single_choice(
            f"s{statement} item {i}: keep?",
            ("yes", "no"),
            truth="yes" if i % 2 else "no",
        )
        for i in range(TASKS_PER_STATEMENT)
    ]


def _run_strategy(hedge: bool) -> dict:
    """All statements under one strategy; per-statement makespans + totals."""
    pool = WorkerPool.heterogeneous(
        POOL_SIZE, accuracy_low=0.7, accuracy_high=0.95, seed=SEED
    )
    platform = SimulatedPlatform(
        pool,
        seed=SEED + 1,
        batch=BatchConfig(
            batch_size=TASKS_PER_STATEMENT,
            max_parallel=8,
            seed=SEED + 2,
            hedge_enabled=hedge,
            hedge_min_samples=20,
            hedge_percentile=0.9,
        ),
    )
    platform.attach_faults(
        straggler_spike_plan(SEED, rate=SPIKE_RATE, multiplier=SPIKE_MULTIPLIER)
    )
    makespans = []
    for statement in range(N_STATEMENTS):
        run = platform.scheduler.run(_tasks(statement), redundancy=REDUNDANCY)
        makespans.append(run.makespan)
    stats = platform.stats
    return {
        "makespans": makespans,
        "warmup_makespan": makespans[0],
        "p95": float(np.percentile(makespans[1:], 95)),
        "median": float(np.percentile(makespans[1:], 50)),
        "total_makespan": float(sum(makespans)),
        "cost": stats.cost_spent,
        "hedges": stats.hedges_launched,
        "hedges_won": stats.hedges_won,
        "hedges_lost": stats.hedges_lost,
        "hedges_cancelled": stats.hedges_cancelled,
        "refunded": stats.hedge_cost_refunded,
        "stragglers": int(platform.metrics.counter("faults.stragglers").value)
        if platform.metrics.enabled
        else -1,
    }


def test_b8_hedging_tail_latency(benchmark, report):
    def measure() -> dict:
        baseline = _run_strategy(hedge=False)
        hedged = _run_strategy(hedge=True)
        replay = _run_strategy(hedge=True)
        return {"baseline": baseline, "hedged": hedged, "replay": replay}

    values = run_once(benchmark, measure)
    baseline, hedged, replay = values["baseline"], values["hedged"], values["replay"]
    p95_speedup = baseline["p95"] / hedged["p95"]
    cost_ratio = hedged["cost"] / baseline["cost"]

    report.table(
        [
            {
                "strategy": name,
                "p95_makespan_s": r["p95"],
                "median_makespan_s": r["median"],
                "total_makespan_s": r["total_makespan"],
                "cost": r["cost"],
                "hedges": r["hedges"],
                "won": r["hedges_won"],
            }
            for name, r in (("none", baseline), ("hedge", hedged))
        ],
        title=(
            f"B8: hedging under straggler spikes ({N_STATEMENTS} statements x "
            f"{TASKS_PER_STATEMENT} tasks, redundancy {REDUNDANCY}, "
            f"{SPIKE_RATE:.0%} spiked {SPIKE_MULTIPLIER:.0f}x)"
        ),
    )
    report.note(
        f"p95 speedup {p95_speedup:.2f}x at {cost_ratio:.2f}x cost; "
        f"warmup statement {hedged['warmup_makespan']:.0f}s hedged vs "
        f"{baseline['warmup_makespan']:.0f}s baseline (excluded from p95); "
        f"refunded {hedged['refunded']:.4f} on "
        f"{hedged['hedges_won'] + hedged['hedges_lost']} cancelled copies"
    )

    out_path = bench_artifact("BENCH_hedging.json")
    with open(out_path, "w") as fh:
        json.dump(
            {
                "workload": {
                    "statements": N_STATEMENTS,
                    "tasks_per_statement": TASKS_PER_STATEMENT,
                    "redundancy": REDUNDANCY,
                    "pool": POOL_SIZE,
                    "spike_rate": SPIKE_RATE,
                    "spike_multiplier": SPIKE_MULTIPLIER,
                    "quick": quick_mode(),
                },
                "baseline": {k: v for k, v in baseline.items() if k != "makespans"},
                "hedged": {k: v for k, v in hedged.items() if k != "makespans"},
                "p95_speedup": p95_speedup,
                "cost_ratio": cost_ratio,
                "replay_identical": replay == hedged,
                "gates": {
                    "p95_speedup >= 2.0": p95_speedup >= 2.0,
                    "cost_ratio <= 1.3": cost_ratio <= 1.3,
                },
            },
            fh,
            indent=2,
        )

    # Hedging must actually fire, and the replay must be bit-identical.
    assert hedged["hedges"] > 0
    assert replay == hedged
    # Acceptance gates: >= 2x p95 improvement at <= 1.3x cost.
    assert p95_speedup >= 2.0, f"p95 speedup {p95_speedup:.2f}x < 2.0x"
    assert cost_ratio <= 1.3, f"cost ratio {cost_ratio:.2f}x > 1.3x"
