"""F5 — Open-world collection: discovery curve and Chao92 richness tracking.

Expected shape: distinct-item discovery shows diminishing returns under
Zipf-skewed worker knowledge, while the Chao92 estimate approaches the true
universe size well before enumeration completes — the requester's stopping
signal.
"""

from conftest import run_once

from repro.experiments.harness import run_trials
from repro.operators.collect import CrowdCollect, bind_zipf_knowledge
from repro.platform.platform import SimulatedPlatform
from repro.workers.models import CollectorModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

UNIVERSE = 200
QUERIES = 800
CHECKPOINTS = (100, 200, 400, 800)


def _trial(seed: int) -> dict[str, float]:
    universe = [f"species-{i:03d}" for i in range(UNIVERSE)]
    pool = WorkerPool([Worker(model=CollectorModel()) for _ in range(25)], seed=seed)
    bind_zipf_knowledge(pool, universe, knowledge_size=60, zipf_s=1.1, seed=seed + 1)
    platform = SimulatedPlatform(pool, seed=seed + 2)
    collector = CrowdCollect(platform, "name a species", checkpoint_every=100)
    result = collector.run(max_queries=QUERIES)

    values: dict[str, float] = {}
    for queries, distinct, chao in result.richness_trajectory:
        if queries in CHECKPOINTS:
            values[f"distinct@{queries}"] = distinct
            values[f"chao@{queries}"] = chao
    values["final_recall"] = result.recall_against(universe)
    return values


def test_f5_collection_curve(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F5", _trial, n_trials=3))

    rows = [
        {
            "queries": q,
            "distinct_seen": result.mean(f"distinct@{q}"),
            "chao92_estimate": result.mean(f"chao@{q}"),
            "true_universe": UNIVERSE,
        }
        for q in CHECKPOINTS
    ]
    report.table(rows, title="F5: discovery curve + Chao92 (3 trials)",
                 float_format="{:.1f}")
    report.series(
        list(CHECKPOINTS),
        [result.mean(f"distinct@{q}") for q in CHECKPOINTS],
        title="distinct items discovered",
        x_label="queries", y_label="distinct",
    )

    # Shapes: diminishing returns (second-half gain smaller than first-half);
    # Chao92 is sandwiched between observed and ~1.5x truth at the end.
    first_gain = result.mean("distinct@200") - result.mean("distinct@100")
    last_gain = result.mean("distinct@800") - result.mean("distinct@400")
    assert last_gain < first_gain * 2  # flattening (per-100 basis it's much less)
    assert result.mean("chao@800") >= result.mean("distinct@800")
    assert result.mean("chao@800") <= UNIVERSE * 1.6
    # Later estimates should track truth more closely than early ones.
    early_gap = abs(result.mean("chao@100") - UNIVERSE)
    late_gap = abs(result.mean("chao@800") - UNIVERSE)
    assert late_gap <= early_gap + 10
