"""F4 — Crowd MAX: tournament fan-in sweep over 64 items.

Expected shape: rounds fall like ceil(log_f n) as fan-in grows while
comparison count rises (each group plays round-robin) — the latency/cost
dial the round-model section describes. Winner accuracy stays high at
every fan-in because the comparison pool is sharp.
"""

from conftest import run_once

from repro.experiments.datasets import ranking_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.operators.sort import CrowdComparator
from repro.operators.topk import expected_tournament_cost, tournament_max

POOL = PoolSpec(kind="comparison", size=30, sharpness=40.0)
FAN_INS = (2, 4, 8)
N_ITEMS = 64


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    dataset = ranking_dataset(N_ITEMS, seed=seed + 13)
    best = dataset.true_order[0]
    for fan_in in FAN_INS:
        platform = make_platform(POOL, seed=seed)
        comparator = CrowdComparator(
            platform, dataset.items, dataset.score_fn, redundancy=5
        )
        result = tournament_max(comparator, fan_in=fan_in)
        values[f"rounds@{fan_in}"] = result.rounds
        values[f"comparisons@{fan_in}"] = result.comparisons_asked
        values[f"correct@{fan_in}"] = 1.0 if result.winners[0] == best else 0.0
    return values


def test_f4_tournament_fan_in(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F4", _trial, n_trials=3))

    rows = []
    for fan_in in FAN_INS:
        predicted_comparisons, predicted_rounds = expected_tournament_cost(N_ITEMS, fan_in)
        rows.append(
            {
                "fan_in": fan_in,
                "rounds": result.mean(f"rounds@{fan_in}"),
                "rounds_predicted": predicted_rounds,
                "comparisons": result.mean(f"comparisons@{fan_in}"),
                "comparisons_predicted": predicted_comparisons,
                "winner_correct": result.mean(f"correct@{fan_in}"),
            }
        )
    report.table(rows, title="F4: MAX tournament fan-in sweep (n=64, 3 trials)",
                 float_format="{:.2f}")

    # Shapes: measured rounds match the analytic bound exactly; rounds
    # fall and comparisons rise with fan-in; the winner is usually right.
    for fan_in in FAN_INS:
        _pred_c, pred_r = expected_tournament_cost(N_ITEMS, fan_in)
        assert result.mean(f"rounds@{fan_in}") == pred_r
    assert result.mean("rounds@8") < result.mean("rounds@2")
    assert result.mean("comparisons@8") > result.mean("comparisons@2")
    assert sum(result.mean(f"correct@{f}") for f in FAN_INS) >= 2.0
