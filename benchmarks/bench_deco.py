"""T8 — Deco query semantics: pull-based fetching vs resolve-everything.

Deco's pitch: a MinTuples(n) query should only pay for the crowd data it
needs. This bench compares `min_tuples(n, predicate)` against the
resolve-the-whole-relation baseline on the same marketplace. Expected
shape: pull-based cost grows with n (roughly linearly until the selective
predicate forces extra enumeration) and undercuts resolve-all whenever
n is well below the relation size.
"""

from conftest import run_once

from repro.deco import (
    AnchorFetchRule,
    ConceptualRelation,
    DecoQueryEngine,
    DependentFetchRule,
    FetchRuleSet,
    single_column_group,
)
from repro.experiments.harness import run_trials
from repro.operators.collect import bind_zipf_knowledge
from repro.platform.platform import SimulatedPlatform
from repro.workers.models import CollectorModel, OneCoinModel
from repro.workers.pool import WorkerPool
from repro.workers.worker import Worker

UNIVERSE = [f"restaurant-{i:02d}" for i in range(40)]
# Half the universe is thai so even the Zipf-limited crowd can reach the
# largest MinTuples target.
CUISINE = {r: ("thai", "sushi")[i % 2] for i, r in enumerate(UNIVERSE)}
TARGETS = (2, 5, 10)


def _engine(seed: int) -> DecoQueryEngine:
    workers = [Worker(model=CollectorModel()) for _ in range(10)]
    workers += [Worker(model=OneCoinModel(0.95)) for _ in range(15)]
    pool = WorkerPool(workers, seed=seed)
    bind_zipf_knowledge(pool, UNIVERSE, knowledge_size=25, seed=seed + 1)
    platform = SimulatedPlatform(pool, seed=seed + 2)
    relation = ConceptualRelation(
        "restaurants", ("name",), [single_column_group("cuisine", min_raw=2)]
    )
    rules = FetchRuleSet(
        anchor_rule=AnchorFetchRule("Name a restaurant."),
        dependent_rules={
            "cuisine": DependentFetchRule(
                "cuisine", truth_fn=lambda anchor, col: CUISINE.get(anchor["name"], "unknown")
            )
        },
    )
    return DecoQueryEngine(relation, rules, platform)


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for n in TARGETS:
        engine = _engine(seed)
        result = engine.min_tuples(
            n, predicate=lambda row: row["cuisine"] == "thai", anchor_batch=5
        )
        values[f"cost@{n}"] = result.cost
        values[f"satisfied@{n}"] = 1.0 if result.satisfied else 0.0

    # Baseline: enumerate aggressively then resolve everything.
    engine = _engine(seed)
    engine.rules.anchor_rule.fetch(engine.relation, engine.platform, attempts=150)
    baseline = engine.resolve_all()
    values["resolve_all_cost"] = (
        baseline.cost + 150 * 0.01  # enumeration spend is part of the baseline
    )
    thai_rows = [r for r in baseline.rows if r["cuisine"] == "thai"]
    values["resolve_all_thai"] = len(thai_rows)
    return values


def test_t8_deco_pull_fetching(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T8", _trial, n_trials=3))

    rows = [
        {
            "query": f"MinTuples({n}, cuisine='thai')",
            "cost": result.mean(f"cost@{n}"),
            "satisfied": result.mean(f"satisfied@{n}"),
        }
        for n in TARGETS
    ]
    rows.append(
        {
            "query": "resolve ALL (150 fetch attempts)",
            "cost": result.mean("resolve_all_cost"),
            "satisfied": 1.0,
        }
    )
    report.table(rows, title="T8: Deco pull-based fetching vs resolve-all (3 trials)")

    # Shapes: cost is monotone in n; every pull query is cheaper than the
    # resolve-all baseline; all targets were satisfiable.
    costs = [result.mean(f"cost@{n}") for n in TARGETS]
    assert costs == sorted(costs)
    assert costs[-1] < result.mean("resolve_all_cost")
    for n in TARGETS:
        assert result.mean(f"satisfied@{n}") == 1.0
