"""F8 — Crowd skyline: deduction ablation and skyline-size scaling.

Expected shapes: (a) per-dimension transitivity deduction cuts purchased
comparisons without changing the result; (b) comparisons scale with both
item count and skyline density (anti-correlated dimensions maximize the
skyline and hence the work).
"""

from conftest import run_once

import numpy as np

from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.operators.skyline import CrowdSkyline, true_skyline

POOL = PoolSpec(kind="comparison", size=25, sharpness=60.0)
N_ITEMS = 16


def _scores(seed: int, correlation: float) -> list[tuple[float, float]]:
    """Two-dimensional utilities with controllable correlation."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=N_ITEMS)
    noise = rng.uniform(0, 1, size=N_ITEMS)
    y = correlation * x + (1 - correlation) * (1 - x) * 0 + (1 - abs(correlation)) * noise
    if correlation < 0:
        y = -correlation * (1 - x) + (1 - abs(correlation)) * noise
    return list(zip(x.tolist(), y.tolist()))


def _run(seed: int, correlation: float, use_deduction: bool):
    scores = _scores(seed + 7, correlation)
    items = [f"i{k}" for k in range(N_ITEMS)]
    platform = make_platform(POOL, seed=seed)
    op = CrowdSkyline(
        platform,
        items,
        [
            lambda it: scores[int(it[1:])][0],
            lambda it: scores[int(it[1:])][1],
        ],
        redundancy=3,
        use_deduction=use_deduction,
    )
    result = op.run()
    expected = true_skyline(scores)
    jaccard = len(set(result.skyline) & set(expected)) / max(
        1, len(set(result.skyline) | set(expected))
    )
    return result, jaccard


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for label, correlation in (("correlated", 0.9), ("anti", -0.9)):
        with_result, with_jaccard = _run(seed, correlation, use_deduction=True)
        without_result, without_jaccard = _run(seed, correlation, use_deduction=False)
        values[f"{label}_comparisons_dedup"] = with_result.comparisons_asked
        values[f"{label}_comparisons_plain"] = without_result.comparisons_asked
        values[f"{label}_quality_dedup"] = with_jaccard
        values[f"{label}_quality_plain"] = without_jaccard
        values[f"{label}_skyline_size"] = len(with_result.skyline)
    return values


def test_f8_skyline_deduction_and_density(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F8", _trial, n_trials=3))

    rows = []
    for label in ("correlated", "anti"):
        rows.append(
            {
                "dimensions": label,
                "skyline_size": result.mean(f"{label}_skyline_size"),
                "comparisons (dedup)": result.mean(f"{label}_comparisons_dedup"),
                "comparisons (plain)": result.mean(f"{label}_comparisons_plain"),
                "quality (dedup)": result.mean(f"{label}_quality_dedup"),
            }
        )
    report.table(rows, title="F8: crowd skyline — deduction & density (n=16, 3 trials)",
                 float_format="{:.2f}")

    # Shapes: deduction never buys more comparisons and keeps quality;
    # anti-correlated dimensions yield a bigger skyline.
    for label in ("correlated", "anti"):
        assert result.mean(f"{label}_comparisons_dedup") <= result.mean(
            f"{label}_comparisons_plain"
        ) + 1e-9
        assert result.mean(f"{label}_quality_dedup") >= result.mean(
            f"{label}_quality_plain"
        ) - 0.15
    assert result.mean("anti_skyline_size") > result.mean("correlated_skyline_size")
