"""F3 — Transitivity deduction savings: asked fraction vs cluster size.

With a perfect oracle, measures what fraction of candidate pairs actually
needs a crowd question once transitivity deduces the rest. Expected shape:
savings grow with cluster size (dense clusters give positive transitivity
the most leverage; within a k-cluster only k-1 of k(k-1)/2 pairs need
asking).
"""

from conftest import run_once

from repro.cost.deduction import resolve_pairs
from repro.experiments.harness import run_trials

import numpy as np

CLUSTER_SIZES = (2, 3, 5, 8)
N_ITEMS = 48


def _trial(seed: int) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    values: dict[str, float] = {}
    for size in CLUSTER_SIZES:
        n_clusters = N_ITEMS // size
        cluster_of = {}
        idx = 0
        for cluster in range(n_clusters):
            for _ in range(size):
                cluster_of[idx] = cluster
                idx += 1
        items = list(range(idx))
        pairs = [(a, b) for a in items for b in items if a < b]
        # Similarity-descending proxy: same-cluster pairs first (what a
        # machine-similarity sort achieves in expectation), with noise.
        rng.shuffle(pairs)
        pairs.sort(key=lambda p: (cluster_of[p[0]] != cluster_of[p[1]], rng.random()))
        labels, asked = resolve_pairs(
            pairs, lambda a, b: cluster_of[a] == cluster_of[b]
        )
        assert all(
            labels[(a, b)] == (cluster_of[a] == cluster_of[b]) for a, b in pairs
        )
        values[f"asked_fraction@{size}"] = asked / len(pairs)
    return values


def test_f3_transitivity_savings(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F3", _trial, n_trials=5))

    xs = list(CLUSTER_SIZES)
    ys = [result.mean(f"asked_fraction@{size}") for size in xs]
    report.series(
        xs, ys,
        title="F3: fraction of pairs requiring a crowd question",
        x_label="cluster size", y_label="asked fraction",
    )
    report.table(
        [
            {"cluster_size": size, "asked_fraction": y, "saved": 1 - y}
            for size, y in zip(xs, ys)
        ],
        title="F3: deduction savings by cluster size (5 trials)",
    )

    # Shape: larger clusters -> smaller asked fraction, and always < 1.
    assert ys == sorted(ys, reverse=True)
    assert all(y < 1.0 for y in ys)
    # The dense case saves dramatically.
    assert ys[-1] < 0.75
