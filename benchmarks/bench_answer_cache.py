"""C1 — Answer cache: duplicate-heavy workloads publish far fewer HITs.

Two workloads exercise the cache the way Qurk and Reprowd motivate it:

* A crowd-all-pairs join over a record set containing each entity several
  times. Identical record pairs render identical questions, so the cache
  coalesces them in flight and replays across chunks — the off/on published
  HIT counts differ by well over the 30% acceptance floor.
* A fixed-k filter whose predicate runs twice over the same items (a
  repeated trial). With a warm cache the second pass publishes nothing.

Expected shape: cache-on publishes a fraction of the HITs, spends a
fraction of the budget, and finishes in less wall-clock time, while a
duplicate-free cold run stays answer-for-answer identical to cache-off.
"""

import time

from conftest import run_once

from repro.experiments.harness import PoolSpec, make_platform, quick_mode, run_trials
from repro.operators.filter import FixedKFilter
from repro.operators.join import CrowdJoin
from repro.platform.batch import BatchConfig
from repro.platform.cache import AnswerCache

POOL = PoolSpec(kind="uniform", size=30, accuracy=0.9)
REDUNDANCY = 3
N_ENTITIES = 6 if quick_mode() else 10   # distinct records in the join
N_COPIES = 3 if quick_mode() else 4      # times each record repeats
N_ITEMS = 40 if quick_mode() else 120    # items per filter pass
TIMING_REPEATS = 2 if quick_mode() else 3


def _records() -> list[str]:
    return [f"entity record {i}" for i in range(N_ENTITIES)] * N_COPIES


def _join_platform(seed: int, cached: bool):
    # The batch runtime posts whole chunks at once, so duplicate pairs in a
    # chunk exercise in-flight coalescing as well as cross-chunk replay.
    platform = make_platform(POOL, seed=seed)
    platform.attach_scheduler(
        BatchConfig(batch_size=50, max_parallel=4, seed=seed + 2)
    )
    if cached:
        platform.attach_cache(AnswerCache())
    return platform


def _run_join(seed: int, cached: bool):
    platform = _join_platform(seed, cached)
    join = CrowdJoin(
        platform, lambda a, b: a == b, use_transitivity=False, redundancy=REDUNDANCY
    )
    start = time.perf_counter()
    join.run(_records())
    elapsed = time.perf_counter() - start
    return platform, elapsed


def _best_join_time(seed: int, cached: bool) -> float:
    return min(_run_join(seed, cached)[1] for _ in range(TIMING_REPEATS))


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}

    # Duplicate-heavy all-pairs join, cache off vs on.
    off, _ = _run_join(seed, cached=False)
    on, _ = _run_join(seed, cached=True)
    values["join_published_off"] = off.stats.tasks_published
    values["join_published_on"] = on.stats.tasks_published
    values["join_cost_off"] = off.stats.cost_spent
    values["join_cost_on"] = on.stats.cost_spent
    values["join_hits"] = on.cache.hits
    values["join_coalesced"] = on.cache.coalesced
    values["join_saved"] = on.stats.cache_cost_saved

    # Repeated filter predicate: the second pass replays the first.
    items = [f"item {i}" for i in range(N_ITEMS)]
    for label, cached in (("off", False), ("on", True)):
        platform = _join_platform(seed + 7, cached)
        crowd_filter = FixedKFilter(
            platform, "Is this item relevant?",
            truth_fn=lambda item: int(item.split()[-1]) % 2 == 0,
            redundancy=REDUNDANCY,
        )
        crowd_filter.run(items)
        first_published = platform.stats.tasks_published
        crowd_filter.run(items)
        values[f"filter_first_{label}"] = first_published
        values[f"filter_second_{label}"] = (
            platform.stats.tasks_published - first_published
        )
    return values


def test_c1_answer_cache_dedup(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("C1", _trial, n_trials=3))

    n_pairs = result.mean("join_published_off")
    rows = [
        {
            "workload": f"all-pairs join ({N_ENTITIES}x{N_COPIES} records)",
            "HITs off": n_pairs,
            "HITs on": result.mean("join_published_on"),
            "cost off": result.mean("join_cost_off"),
            "cost on": result.mean("join_cost_on"),
        },
        {
            "workload": f"repeated filter ({N_ITEMS} items, 2 passes)",
            "HITs off": result.mean("filter_first_off")
            + result.mean("filter_second_off"),
            "HITs on": result.mean("filter_first_on")
            + result.mean("filter_second_on"),
            "cost off": float("nan"),
            "cost on": float("nan"),
        },
    ]
    report.table(rows, title="C1: answer cache — published HITs and spend",
                 float_format="{:.2f}")
    report.note(
        f"join reuse: {result.mean('join_hits'):.0f} hits, "
        f"{result.mean('join_coalesced'):.0f} coalesced in flight, "
        f"saved {result.mean('join_saved'):.2f} per trial"
    )

    # Acceptance: >=30% fewer published HITs on the duplicate-heavy join.
    assert result.mean("join_published_on") <= 0.7 * n_pairs
    assert result.mean("join_cost_on") < result.mean("join_cost_off")
    # A warm cache answers the repeated predicate pass entirely for free.
    assert result.mean("filter_second_on") == 0.0
    assert result.mean("filter_second_off") == result.mean("filter_first_off")


def test_c1_answer_cache_wall_clock(benchmark, report):
    """Fewer simulated assignments is also less real work: cache-on wins."""

    def measure() -> dict[str, float]:
        return {
            "off_s": _best_join_time(seed=31, cached=False),
            "on_s": _best_join_time(seed=31, cached=True),
        }

    values = run_once(benchmark, measure)
    report.note(
        f"C1 wall-clock (best of {TIMING_REPEATS}): "
        f"off {values['off_s'] * 1e3:.1f} ms, on {values['on_s'] * 1e3:.1f} ms, "
        f"speedup {values['off_s'] / values['on_s']:.2f}x"
    )
    assert values["on_s"] < values["off_s"]
