"""T4 — Crowd sort: all-pairs vs merge sort vs rating vs hybrid.

Expected shape (the Qurk result): comparisons are accurate but expensive —
all-pairs buys the best Kendall tau at quadratic cost, merge sort nearly
matches it at n log n, rating-only is the cheapest and coarsest, and the
hybrid recovers most of the comparison quality at near-rating cost.
"""

from conftest import run_once

from repro.experiments.datasets import ranking_dataset
from repro.experiments.harness import PoolSpec, make_platform, run_trials
from repro.operators.sort import (
    CrowdComparator,
    all_pairs_sort,
    hybrid_sort,
    merge_sort_crowd,
    rating_sort,
)

POOL = PoolSpec(kind="comparison", size=25, sharpness=10.0)
N_ITEMS = 24


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    dataset = ranking_dataset(N_ITEMS, seed=seed + 97)
    true_order = dataset.true_order

    def comparator(platform):
        return CrowdComparator(
            platform, dataset.items, dataset.score_fn, redundancy=3
        )

    platform = make_platform(POOL, seed=seed)
    result = all_pairs_sort(comparator(platform))
    values["allpairs_tau"] = result.kendall_tau(true_order)
    values["allpairs_answers"] = result.answers_bought

    platform = make_platform(POOL, seed=seed)
    result = merge_sort_crowd(comparator(platform))
    values["merge_tau"] = result.kendall_tau(true_order)
    values["merge_answers"] = result.answers_bought

    platform = make_platform(POOL, seed=seed)
    result = rating_sort(platform, dataset.items, dataset.score_fn, redundancy=3)
    values["rating_tau"] = result.kendall_tau(true_order)
    values["rating_answers"] = result.answers_bought

    platform = make_platform(POOL, seed=seed)
    result = hybrid_sort(
        platform, dataset.items, dataset.score_fn, redundancy=3, close_threshold=1.5
    )
    values["hybrid_tau"] = result.kendall_tau(true_order)
    values["hybrid_answers"] = result.answers_bought
    return values


def test_t4_sort_strategy_space(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T4", _trial, n_trials=3))

    rows = [
        {
            "strategy": name,
            "kendall_tau": result.mean(f"{key}_tau"),
            "answers": result.mean(f"{key}_answers"),
        }
        for name, key in (
            ("all-pairs", "allpairs"),
            ("merge sort", "merge"),
            ("rating only", "rating"),
            ("hybrid", "hybrid"),
        )
    ]
    report.table(rows, title="T4: crowd sort strategies (n=24, 3 trials)",
                 float_format="{:.2f}")

    # Shapes: all-pairs is the most accurate and most expensive; merge is
    # cheaper than all-pairs; rating is cheapest; hybrid improves on rating
    # at a fraction of all-pairs' cost.
    assert result.mean("allpairs_answers") > result.mean("merge_answers")
    assert result.mean("rating_answers") <= result.mean("merge_answers")
    assert result.mean("allpairs_tau") >= result.mean("rating_tau") - 0.05
    assert result.mean("hybrid_tau") >= result.mean("rating_tau") - 0.02
    assert result.mean("hybrid_answers") < result.mean("allpairs_answers")
