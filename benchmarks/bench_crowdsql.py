"""T7 — Declarative optimizer ablation: CrowdSQL with and without rules.

Three mixed machine/crowd queries run twice — optimizer on vs off. The
unoptimized plan evaluates predicates in syntactic order (crowd predicate
written first), the optimized plan runs machine predicates first and
prunes crowd fills to referenced columns. Expected shape: identical rows,
strictly fewer crowd questions and lower spend with the optimizer — the
CrowdDB/Deco/CrowdOP argument for declarative crowdsourcing.
"""

from conftest import run_once

from repro.experiments.harness import run_trials
from repro.lang.executor import CrowdOracle
from repro.lang.interpreter import CrowdSQLSession
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool

SETUP = """
CREATE TABLE listings (
    label STRING NOT NULL,
    price INTEGER,
    region STRING,
    quality STRING CROWD,
    PRIMARY KEY (label)
);
"""

QUERIES = {
    "crowd_filter_mixed": (
        "SELECT label FROM listings "
        "WHERE CROWDFILTER(label, 'is this listing legit?') AND price < 30"
    ),
    "two_crowd_predicates": (
        "SELECT label FROM listings "
        "WHERE CROWDFILTER(label, 'legit?') AND CROWDEQUAL(region, 'north') "
        "AND price < 50"
    ),
    "fill_with_filter": (
        "SELECT label, quality FROM listings WHERE price < 20"
    ),
}


def _expected_labels(query_name: str) -> set[str]:
    """Ground-truth result sets, from the oracle's closed forms."""
    labels = set()
    for i in range(60):
        price = (i * 7) % 100
        legit = i % 2 == 0
        north = i % 3 == 0
        if query_name == "crowd_filter_mixed" and legit and price < 30:
            labels.add(f"item-{i}")
        elif query_name == "two_crowd_predicates" and legit and north and price < 50:
            labels.add(f"item-{i}")
        elif query_name == "fill_with_filter" and price < 20:
            labels.add(f"item-{i}")
    return labels


def _session(seed: int, optimize: bool) -> CrowdSQLSession:
    platform = SimulatedPlatform(WorkerPool.uniform(25, 0.95, seed=seed), seed=seed + 1)
    oracle = CrowdOracle(
        filter_fn=lambda value, q: int(str(value).split("-")[1]) % 2 == 0,
        fill_fn=lambda row, col: "good" if row["price"] < 50 else "poor",
    )
    session = CrowdSQLSession(platform=platform, oracle=oracle, redundancy=5, optimize=optimize)
    session.execute(SETUP)
    table = session.database.table("listings")
    for i in range(60):
        table.insert(
            {
                "label": f"item-{i}",
                "price": (i * 7) % 100,
                "region": "north" if i % 3 == 0 else "south",
            }
        )
    return session


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    for name, sql in QUERIES.items():
        expected = _expected_labels(name)
        for optimize in (False, True):
            session = _session(seed, optimize)
            result = session.query(sql)
            mode = "opt" if optimize else "raw"
            values[f"{name}_{mode}_questions"] = result.stats.crowd_questions
            values[f"{name}_{mode}_cost"] = result.stats.crowd_cost + 0.0
            got = {r["label"] for r in result.rows}
            union = got | expected
            jaccard = len(got & expected) / len(union) if union else 1.0
            values[f"{name}_{mode}_agreement"] = jaccard
    return values


def test_t7_optimizer_ablation(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("T7", _trial, n_trials=3))

    rows = []
    for name in QUERIES:
        raw_q = result.mean(f"{name}_raw_questions")
        opt_q = result.mean(f"{name}_opt_questions")
        rows.append(
            {
                "query": name,
                "questions_raw": raw_q,
                "questions_optimized": opt_q,
                "saving": 1.0 - (opt_q / raw_q if raw_q else 1.0),
            }
        )
    report.table(rows, title="T7: optimizer ablation — crowd questions (3 trials)",
                 float_format="{:.2f}")

    # Shape: the optimizer never asks more questions, saves on the mixed
    # machine/crowd queries, and both modes agree with ground truth.
    for name in QUERIES:
        assert result.mean(f"{name}_opt_questions") <= result.mean(
            f"{name}_raw_questions"
        ) + 1e-9
        assert result.mean(f"{name}_opt_agreement") >= 0.85
        assert result.mean(f"{name}_raw_agreement") >= 0.85
    assert result.mean("crowd_filter_mixed_opt_questions") < result.mean(
        "crowd_filter_mixed_raw_questions"
    )
