"""F10 — Crowd planning: greedy vs beam regret under vote noise.

Human-guided graph search over a layered itinerary DAG with hidden edge
utilities. Expected shapes: with accurate voters both strategies approach
the DP optimum; as voter accuracy falls, regret grows, and the beam
(which votes on whole partial plans) degrades more gracefully than the
myopic greedy walk at a matching question budget.
"""

from conftest import run_once

import numpy as np

from repro.experiments.harness import run_trials
from repro.operators.plan import CrowdPlanner, optimal_path, path_score
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool

LAYERS = 6
WIDTH = 4
ACCURACIES = (0.7, 0.85, 0.97)


def _graph():
    graph = {}
    for layer in range(LAYERS):
        for i in range(WIDTH):
            graph[(layer, i)] = [(layer + 1, j) for j in range(WIDTH)]
    return graph


def _edge_score_fn(seed: int):
    cache: dict = {}

    def edge_score(u, v):
        key = (u, v)
        if key not in cache:
            rng = np.random.default_rng((hash(key) + seed * 7919) % (2**32))
            cache[key] = float(rng.uniform(0, 1))
        return cache[key]

    return edge_score


def _trial(seed: int) -> dict[str, float]:
    values: dict[str, float] = {}
    graph = _graph()
    edge_score = _edge_score_fn(seed)
    start = (0, 0)
    best = path_score(optimal_path(graph, start, LAYERS, edge_score), edge_score)
    values["optimal"] = best

    for accuracy in ACCURACIES:
        for label, runner in (
            ("greedy", lambda p: p.greedy(start, LAYERS)),
            ("beam", lambda p: p.beam(start, LAYERS, width=3)),
        ):
            platform = SimulatedPlatform(
                WorkerPool.uniform(15, accuracy, seed=seed), seed=seed + 1
            )
            planner = CrowdPlanner(platform, graph, edge_score, redundancy=3)
            result = runner(planner)
            values[f"{label}_regret@{accuracy}"] = best - result.score(edge_score)
            values[f"{label}_questions@{accuracy}"] = result.questions_asked
    return values


def test_f10_crowd_planning(benchmark, report):
    result = run_once(benchmark, lambda: run_trials("F10", _trial, n_trials=5))

    rows = []
    for accuracy in ACCURACIES:
        rows.append(
            {
                "worker_accuracy": accuracy,
                "greedy_regret": result.mean(f"greedy_regret@{accuracy}"),
                "beam_regret": result.mean(f"beam_regret@{accuracy}"),
                "greedy_questions": result.mean(f"greedy_questions@{accuracy}"),
                "beam_questions": result.mean(f"beam_questions@{accuracy}"),
            }
        )
    report.table(
        rows,
        title=f"F10: crowd planning regret vs voter accuracy ({LAYERS}-step plans, 5 trials)",
    )

    # Shapes: regret shrinks as accuracy rises for both strategies; at the
    # top accuracy both are close to optimal; the question budgets match.
    greedy = [result.mean(f"greedy_regret@{a}") for a in ACCURACIES]
    beam = [result.mean(f"beam_regret@{a}") for a in ACCURACIES]
    assert greedy[-1] <= greedy[0] + 1e-9
    assert beam[-1] <= beam[0] + 1e-9
    assert greedy[-1] < 0.8 and beam[-1] < 0.8
    for accuracy in ACCURACIES:
        assert result.mean(f"beam_questions@{accuracy}") == result.mean(
            f"greedy_questions@{accuracy}"
        )
