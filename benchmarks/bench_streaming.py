"""B9 — Streaming pipelined execution: makespan vs the barrier path.

Two plans over a listings table (>= 10k rows in full mode):

* **filter -> join**: a crowd filter's survivors probe a machine-built
  hash join while the filter's own batches are still in flight. The
  barrier path resolves each crowd predicate through its own one-task
  scheduler run, so its simulated makespan is the sum of per-row
  makespans; the pipelined path saturates all 8 lanes with the
  statement's full question set. Planning order equals row order, so the
  pipelined votes — and hence rows *and* stats — are bit-identical to
  the barrier's at the same seed, heterogeneous pool included.
* **filter -> topk**: ORDER BY ... LIMIT K above the crowd filter. The
  pipelined executor streams candidates in final order and, once K rows
  have been emitted, cancels every still-pending HIT upstream through
  the scheduler's cancel seam — publishing a fraction of the barrier's
  HITs and reporting the avoided spend. (This path pre-sorts its
  planning order, so a perfect-accuracy pool pins row equality.)

Gates (the ISSUE 9 acceptance bar):

* pipelined simulated statement makespan improves >= 1.5x at 8 lanes;
* pipelined rows identical to barrier rows at the same seed (both plans);
* TOP-K publishes measurably fewer HITs (<= half), with cancellations
  and avoided spend reported;
* a pipelined replay under the same seed is bit-identical.
"""

import json

from conftest import bench_artifact, run_once

from repro.data.database import Database
from repro.data.expressions import And, Comparison, CrowdPredicate, col, lit
from repro.data.schema import SchemaBuilder
from repro.experiments.harness import quick_mode
from repro.lang.executor import CrowdOracle, Executor
from repro.lang.planner import (
    CrowdFilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderNode,
    ScanNode,
)
from repro.lang.streaming import StreamingExecutor
from repro.platform.batch import BatchConfig
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool

N_ROWS = 1500 if quick_mode() else 10000
N_CATALOG = 40 if quick_mode() else 200
TOP_K = 20
REDUNDANCY = 3
POOL_SIZE = 24
MAX_PARALLEL = 8
SEED = 23
MAKESPAN_FLOOR = 1.5


def _database() -> Database:
    database = Database()
    listings = (
        SchemaBuilder()
        .integer("listing_id")
        .string("item")
        .integer("cat")
        .integer("price")
        .build()
    )
    database.create_table(
        "listings",
        listings,
        rows=[
            {
                "listing_id": i,
                "item": f"item {i}",
                "cat": i % N_CATALOG,
                "price": (i * 37) % 1000,
            }
            for i in range(N_ROWS)
        ],
    )
    catalog = SchemaBuilder().integer("ref").string("label").build()
    database.create_table(
        "catalog",
        catalog,
        rows=[{"ref": i, "label": f"category {i}"} for i in range(N_CATALOG)],
    )
    return database


def _oracle() -> CrowdOracle:
    return CrowdOracle(
        filter_fn=lambda value, _q: int(str(value).split()[-1]) % 7 == 0
    )


def _crowd_filter() -> CrowdPredicate:
    return CrowdPredicate("filter", (col("item"),), question="Is this item in stock?")


def _join_plan() -> LogicalPlan:
    # Machine prefix prunes ~half the rows vectorized; the crowd filter's
    # survivors stream into the probe side of the machine hash join.
    predicate = And(Comparison(">", col("price"), lit(499)), _crowd_filter())
    root = JoinNode(
        CrowdFilterNode(ScanNode("listings"), predicate),
        ScanNode("catalog"),
        Comparison("=", col("cat"), col("ref")),
    )
    return LogicalPlan(root=root)


def _topk_plan() -> LogicalPlan:
    root = LimitNode(
        OrderNode(
            CrowdFilterNode(ScanNode("listings"), _crowd_filter()),
            (("price", False), ("listing_id", True)),
        ),
        TOP_K,
    )
    return LogicalPlan(root=root)


def _run(plan: LogicalPlan, pipelined: bool, accuracy: float | None = None) -> dict:
    """One fresh platform + database per strategy; returns rows + accounting."""
    if accuracy is None:
        pool = WorkerPool.heterogeneous(
            POOL_SIZE, accuracy_low=0.75, accuracy_high=0.97, seed=SEED
        )
    else:
        pool = WorkerPool.uniform(POOL_SIZE, accuracy, seed=SEED)
    platform = SimulatedPlatform(
        pool,
        seed=SEED + 1,
        batch=BatchConfig(batch_size=32, max_parallel=MAX_PARALLEL, seed=SEED + 2),
    )
    executor_cls = StreamingExecutor if pipelined else Executor
    executor = executor_cls(
        _database(), platform, redundancy=REDUNDANCY, oracle=_oracle()
    )
    result = executor.execute(plan)
    return {
        "rows": result.rows,
        "makespan": platform.scheduler.simulated_clock,
        "published": platform.stats.tasks_published,
        "cost": platform.stats.cost_spent,
        "questions": result.stats.crowd_questions,
        "answers": result.stats.crowd_answers,
        "cancelled": result.stats.tasks_cancelled,
        "cost_avoided": result.stats.cost_avoided,
    }


def test_b9_streaming_pipeline(benchmark, report):
    def measure() -> dict:
        join_barrier = _run(_join_plan(), pipelined=False)
        join_pipelined = _run(_join_plan(), pipelined=True)
        join_replay = _run(_join_plan(), pipelined=True)
        topk_barrier = _run(_topk_plan(), pipelined=False, accuracy=1.0)
        topk_pipelined = _run(_topk_plan(), pipelined=True, accuracy=1.0)
        return {
            "join_barrier": join_barrier,
            "join_pipelined": join_pipelined,
            "join_replay": join_replay,
            "topk_barrier": topk_barrier,
            "topk_pipelined": topk_pipelined,
        }

    values = run_once(benchmark, measure)
    join_barrier = values["join_barrier"]
    join_pipelined = values["join_pipelined"]
    topk_barrier = values["topk_barrier"]
    topk_pipelined = values["topk_pipelined"]
    join_speedup = join_barrier["makespan"] / join_pipelined["makespan"]
    hits_saved = topk_barrier["published"] - topk_pipelined["published"]

    report.table(
        [
            {
                "plan": plan,
                "mode": mode,
                "makespan_s": r["makespan"],
                "hits": r["published"],
                "cost": r["cost"],
                "cancelled": r["cancelled"],
                "rows": len(r["rows"]),
            }
            for plan, mode, r in (
                ("filter->join", "barrier", join_barrier),
                ("filter->join", "pipelined", join_pipelined),
                ("filter->topk", "barrier", topk_barrier),
                ("filter->topk", "pipelined", topk_pipelined),
            )
        ],
        title=(
            f"B9: streaming pipeline vs barrier ({N_ROWS} rows, "
            f"{MAX_PARALLEL} lanes, redundancy {REDUNDANCY})"
        ),
    )
    report.note(
        f"join makespan speedup {join_speedup:.2f}x (bit-identical rows + stats); "
        f"top-{TOP_K} saved {hits_saved} HITs "
        f"({topk_pipelined['cancelled']} cancelled, "
        f"spend avoided {topk_pipelined['cost_avoided']:.4f})"
    )

    out_path = bench_artifact("BENCH_streaming.json")
    with open(out_path, "w") as fh:
        json.dump(
            {
                "workload": {
                    "rows": N_ROWS,
                    "catalog": N_CATALOG,
                    "top_k": TOP_K,
                    "redundancy": REDUNDANCY,
                    "pool": POOL_SIZE,
                    "max_parallel": MAX_PARALLEL,
                    "quick": quick_mode(),
                },
                "join": {
                    "barrier": {k: v for k, v in join_barrier.items() if k != "rows"},
                    "pipelined": {
                        k: v for k, v in join_pipelined.items() if k != "rows"
                    },
                    "speedup": join_speedup,
                    "rows_identical": join_barrier["rows"] == join_pipelined["rows"],
                },
                "topk": {
                    "barrier": {k: v for k, v in topk_barrier.items() if k != "rows"},
                    "pipelined": {
                        k: v for k, v in topk_pipelined.items() if k != "rows"
                    },
                    "hits_saved": hits_saved,
                    "rows_identical": topk_barrier["rows"] == topk_pipelined["rows"],
                },
                "replay_identical": values["join_replay"] == join_pipelined,
                "gates": {
                    f"join_speedup >= {MAKESPAN_FLOOR}": join_speedup >= MAKESPAN_FLOOR,
                    "rows_identical": (
                        join_barrier["rows"] == join_pipelined["rows"]
                        and topk_barrier["rows"] == topk_pipelined["rows"]
                    ),
                    "topk_published <= half": (
                        topk_pipelined["published"] <= topk_barrier["published"] / 2
                    ),
                },
            },
            fh,
            indent=2,
        )

    # Result equality: pipelined output matches barrier output exactly.
    assert join_pipelined["rows"] == join_barrier["rows"]
    assert topk_pipelined["rows"] == topk_barrier["rows"]
    # The no-termination plan is bit-identical beyond rows: same votes,
    # spend, and question count (planning order == row order).
    assert join_pipelined["cost"] == join_barrier["cost"]
    assert join_pipelined["questions"] == join_barrier["questions"]
    assert join_pipelined["answers"] == join_barrier["answers"]
    # Seed replay of the pipelined path is bit-identical.
    assert values["join_replay"] == join_pipelined
    # Acceptance gates: >= 1.5x makespan cut; TOP-K cancels real work.
    assert join_speedup >= MAKESPAN_FLOOR, f"speedup {join_speedup:.2f}x < {MAKESPAN_FLOOR}x"
    assert topk_pipelined["published"] <= topk_barrier["published"] / 2
    assert topk_pipelined["cancelled"] > 0
    assert topk_pipelined["cost_avoided"] > 0
