"""Advanced workflows: crowd-in-the-loop learning and Find-Fix-Verify.

Two patterns from the tutorial's task-design and hybrid-computation
discussions:

1. **Active learning** — a naive-Bayes model trained on crowd labels
   routes its *uncertain* documents back to the crowd, labeling 300
   documents with an 80-label budget at near-complete accuracy.
2. **Find-Fix-Verify** — the Soylent pattern: independent agreement gates
   each stage of open-ended text correction.

Run:  python examples/hybrid_workflows.py
"""

from repro.experiments.datasets import text_classification_dataset
from repro.experiments.report import format_series, format_table
from repro.hybrid import ActiveLearner
from repro.operators.findfixverify import FindFixVerify, proofreading_dataset
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool


def active_learning_demo() -> None:
    print("=" * 64)
    print("1. Crowd-in-the-loop active learning")
    print("=" * 64)
    dataset = text_classification_dataset(300, signal_strength=0.35, seed=11)
    truth = dict(zip(dataset.documents, dataset.labels))

    rows = []
    for selection in ("random", "uncertainty"):
        platform = SimulatedPlatform(WorkerPool.uniform(15, 0.92, seed=1), seed=2)
        learner = ActiveLearner(
            platform, dataset.classes, truth_fn=truth.get,
            selection=selection, batch_size=10, seed=3,
        )
        result = learner.run(
            dataset.documents, label_budget=60,
            heldout=(dataset.heldout_documents, dataset.heldout_labels),
        )
        rows.append(
            {
                "routing": selection,
                "crowd_labels": len(result.crowd_labels),
                "questions": result.crowd_questions,
                "final_accuracy": result.accuracy_against(dataset.labels),
                "model_heldout": result.model.accuracy(
                    dataset.heldout_documents, dataset.heldout_labels
                ),
            }
        )
        if selection == "uncertainty":
            trajectory = result.trajectory
    print(format_table(rows, title="300 documents, 60 crowd labels"))
    print()
    print(
        format_series(
            [n for n, _ in trajectory],
            [acc for _, acc in trajectory],
            x_label="crowd labels",
            y_label="heldout accuracy",
            title="Uncertainty-routed learning curve",
        )
    )


def ffv_demo() -> None:
    print()
    print("=" * 64)
    print("2. Find-Fix-Verify text correction")
    print("=" * 64)
    documents = proofreading_dataset(10, words_per_document=12,
                                     errors_per_document=2, seed=21)
    platform = SimulatedPlatform(WorkerPool.uniform(15, 0.93, seed=22), seed=23)
    ffv = FindFixVerify(platform, find_redundancy=3, fix_candidates=3,
                        verify_redundancy=3)
    result = ffv.run(documents)
    planted = sum(len(d.corrections) for d in documents)
    print(f"documents: 10, planted errors: {planted}")
    print(f"residual errors after FFV: {result.residual_errors(documents)}")
    print(
        f"questions: find={result.find_questions}, fix={result.fix_questions}, "
        f"verify={result.verify_questions} (total {result.total_questions}, "
        f"cost {result.cost:.2f})"
    )
    sample = documents[0]
    print("\nexample correction:")
    print("   before:", sample.text)
    print("   after: ", " ".join(result.corrected[0]))


if __name__ == "__main__":
    active_learning_demo()
    ffv_demo()
