"""A full CrowdSQL session: CROWD tables, crowd predicates, crowd joins.

Builds a small movie database where runtime facts are machine-known but
subjective facts (is the poster family-friendly? which of two titles refer
to the same film?) come from the crowd — and shows how the optimizer keeps
the crowd bill down (EXPLAIN before/after machine-first reordering).

Run:  python examples/crowdsql_session.py
"""

from repro.lang import CrowdOracle, CrowdSQLSession
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool

POSTER_FRIENDLY = {
    "The Iron Giant": True,
    "Alien Dawn": False,
    "Paper Planes": True,
    "Night Harvest": False,
    "Sunny Side Up": True,
}

DIRECTOR_OF = {
    "The Iron Giant": "b. anders",
    "Alien Dawn": "r. voss",
    "Paper Planes": "k. ito",
    "Night Harvest": "r. voss",
    "Sunny Side Up": "m. diaz",
}


def main() -> None:
    oracle = CrowdOracle(
        filter_fn=lambda title, question: POSTER_FRIENDLY[str(title)],
        fill_fn=lambda row, column: DIRECTOR_OF[row["title"]],
        # CROWDEQUAL defaults to normalized token equality; also prune
        # obviously-different pairs without paying the crowd.
        equal_similarity_prune=0.2,
    )
    platform = SimulatedPlatform(WorkerPool.uniform(18, 0.93, seed=8), seed=9)
    session = CrowdSQLSession(platform=platform, oracle=oracle, redundancy=3)

    session.execute(
        """
        CREATE TABLE films (
            title STRING NOT NULL,
            minutes INTEGER,
            director STRING CROWD,
            PRIMARY KEY (title)
        );
        INSERT INTO films (title, minutes) VALUES
            ('The Iron Giant', 86), ('Alien Dawn', 122), ('Paper Planes', 96),
            ('Night Harvest', 141), ('Sunny Side Up', 89);
        CREATE TABLE imports (listing STRING NOT NULL, PRIMARY KEY (listing));
        INSERT INTO imports VALUES
            ('iron giant the'), ('dawn alien'), ('unrelated documentary');
        """
    )

    print("EXPLAIN (note: machine filter runs below the crowd filter):")
    print(
        session.explain(
            "SELECT title FROM films "
            "WHERE CROWDFILTER(title, 'family friendly poster?') AND minutes < 100"
        )
    )

    print("\n-- Family-friendly short films (crowd filter + machine filter)")
    result = session.query(
        "SELECT title FROM films "
        "WHERE CROWDFILTER(title, 'family friendly poster?') AND minutes < 100"
    )
    for row in result:
        print("  ", row["title"])
    print(
        f"   crowd questions: {result.stats.crowd_questions} "
        f"(only rows surviving the machine filter were asked)"
    )

    print("\n-- Crowd-filled director column")
    result = session.query("SELECT title, director FROM films ORDER BY title")
    for row in result:
        print(f"   {row['title']:<16s} {row['director']}")
    print(f"   cells filled: {result.stats.cells_filled}")

    print("\n-- Crowd join: which import listings are films we already have?")
    result = session.query(
        "SELECT listing, title FROM imports "
        "CROWDJOIN films ON CROWDEQUAL(listing, title)"
    )
    for row in result:
        print(f"   {row['listing']!r}  ->  {row['title']!r}")
    print(
        f"   questions: {result.stats.crowd_questions}, "
        f"pairs pruned by machine similarity: {result.stats.pairs_pruned}"
    )

    print("\n-- Crowd order by runtime-quality proxy")
    result = session.query(
        "SELECT title FROM films CROWDORDER BY minutes LIMIT 3"
    )
    print("   longest three by crowd comparison:", [r["title"] for r in result])


if __name__ == "__main__":
    main()
