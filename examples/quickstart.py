"""Quickstart: the CrowdEngine in five minutes.

Walks through the three interaction styles crowddm offers:

1. CrowdSQL — declarative queries with CROWD columns and crowd predicates.
2. Imperative operators — filter / sort / count straight from Python.
3. The requester job API — batch labeling with truth inference.

Run:  python examples/quickstart.py
"""

from repro import CrowdEngine, CrowdOracle, EngineConfig, Requester
from repro.platform import single_choice


def declarative_demo() -> None:
    print("=" * 60)
    print("1. CrowdSQL: a table with a crowd-filled column")
    print("=" * 60)

    # The oracle is the simulation's stand-in for worker world knowledge.
    capitals = {"france": "paris", "italy": "rome", "japan": "tokyo"}
    oracle = CrowdOracle(fill_fn=lambda row, col: capitals[row["country"]])

    engine = CrowdEngine(EngineConfig(seed=42, redundancy=3), oracle=oracle)
    engine.sql(
        """
        CREATE TABLE countries (
            country STRING NOT NULL,
            population INTEGER,
            capital STRING CROWD,
            PRIMARY KEY (country)
        );
        INSERT INTO countries (country, population) VALUES
            ('france', 68), ('italy', 59), ('japan', 125);
        """
    )

    print("\nPlan for a query touching the crowd column:")
    print(engine.explain("SELECT country, capital FROM countries WHERE population > 60"))

    result = engine.query(
        "SELECT country, capital FROM countries WHERE population > 60 ORDER BY country"
    )
    print("\nRows:")
    for row in result:
        print("  ", row)
    print(
        f"\ncrowd questions: {result.stats.crowd_questions}, "
        f"cells filled: {result.stats.cells_filled}, "
        f"spend: {result.stats.crowd_cost:.3f}"
    )


def operator_demo() -> None:
    print()
    print("=" * 60)
    print("2. Imperative operators: filter and sort")
    print("=" * 60)

    engine = CrowdEngine(EngineConfig(seed=7, redundancy=3))

    photos = [f"photo-{i}" for i in range(12)]
    has_cat = lambda p: int(p.split("-")[1]) % 3 == 0
    kept = engine.filter(photos, "Does this photo show a cat?", has_cat)
    print(f"\ncat photos: {[photos[i] for i in kept.kept]}")
    print(f"questions asked: {kept.questions_asked} (adaptive early-stopping)")

    films = [f"film-{i}" for i in range(8)]
    quality = lambda f: float(f.split("-")[1])
    ranking = engine.sort(films, quality, strategy="merge")
    print(f"\ncrowd-sorted films (best first): {[films[i] for i in ranking.order]}")
    print(f"comparisons bought: {ranking.comparisons_asked}")
    print(f"total engine spend: {engine.spent:.3f}")


def requester_demo() -> None:
    print()
    print("=" * 60)
    print("3. Requester jobs: batch labeling with truth inference")
    print("=" * 60)

    from repro.quality.truth import DawidSkene
    from repro.workers import WorkerPool
    from repro.platform import SimulatedPlatform

    pool = WorkerPool.heterogeneous(20, seed=1)
    requester = Requester(SimulatedPlatform(pool, seed=2), inference=DawidSkene())

    tasks = [
        single_choice(
            f"Sentiment of review #{i}?",
            ("positive", "negative", "neutral"),
            truth=("positive", "negative", "neutral")[i % 3],
        )
        for i in range(30)
    ]
    report = requester.submit("sentiment", tasks, redundancy=5)
    correct = sum(1 for t in tasks if report.truths[t.task_id] == t.truth)
    print(f"\nlabeled {report.tasks} reviews for {report.cost:.2f} credits")
    print(f"accuracy vs hidden truth: {correct / len(tasks):.1%}")
    print(f"mean confidence: {report.mean_confidence:.2f}")


if __name__ == "__main__":
    declarative_demo()
    operator_demo()
    requester_demo()
