"""Quality-control lab: truth inference and assignment under bad workers.

Simulates a labeling job on a pool contaminated with spammers and walks the
full quality-control toolbox:

1. Compare six truth-inference algorithms on identical evidence.
2. Screen the pool with gold tasks and eliminate spammers.
3. Re-run inference on the cleaned pool.
4. Show QASCA online assignment beating round-robin at the same budget.

Run:  python examples/quality_control_lab.py
"""

import numpy as np

from repro.experiments.report import format_table
from repro.platform import SimulatedPlatform, single_choice
from repro.quality.assignment import Qasca, RoundRobinAssignment, run_assignment
from repro.quality.truth import CATEGORICAL_METHODS, MajorityVote
from repro.quality.workerqc import GoldInjector, eliminate_spammers
from repro.workers import WorkerPool

LABELS = ("cat", "dog", "bird")


def make_tasks(n, seed):
    rng = np.random.default_rng(seed)
    return [
        single_choice(f"animal in image #{i}?", LABELS, truth=LABELS[int(rng.integers(3))])
        for i in range(n)
    ]


def inference_shootout(platform, tasks):
    answers = platform.collect(tasks, redundancy=5)
    truth = {t.task_id: t.truth for t in tasks}
    rows = []
    for name in ("mv", "wmv", "zc", "ds", "glad", "bayes"):
        result = CATEGORICAL_METHODS[name]().infer(answers)
        rows.append(
            {
                "method": name,
                "accuracy": result.accuracy_against(truth),
                "iterations": result.iterations,
            }
        )
    return rows


def main() -> None:
    print("pool: 30 workers, 30% uniform spammers, labels =", LABELS)
    pool = WorkerPool.with_spammers(30, spammer_fraction=0.3, good_accuracy=0.85, seed=1)
    platform = SimulatedPlatform(pool, seed=2)

    print()
    rows = inference_shootout(platform, make_tasks(200, seed=3))
    print(format_table(rows, title="1. Truth inference on the dirty pool (k=5)"))

    # ---- gold screening ----
    gold = make_tasks(30, seed=4)
    injector = GoldInjector(gold_tasks=gold, seed=5)
    gold_answers = platform.collect(gold, redundancy=10)
    tasks_by_id = {g.task_id: g for g in gold}
    for answers in gold_answers.values():
        injector.score(answers, tasks_by_id)
    eliminated = eliminate_spammers(
        pool, injector.worker_accuracy(), injector.gold_counts(), chance_level=1 / 3,
        min_observations=6,
    )
    print(f"\n2. gold screening eliminated {len(eliminated)} workers: {sorted(eliminated)}")
    print(f"   active pool: {len(pool.active_workers)} / {len(pool)}")

    rows = inference_shootout(platform, make_tasks(200, seed=6))
    print()
    print(format_table(rows, title="3. Same shootout on the cleaned pool"))

    # ---- online assignment ----
    print()
    budget = 450
    results = []
    for label, factory in (
        ("round-robin k=3", lambda: RoundRobinAssignment(redundancy=3)),
        ("QASCA", lambda: Qasca(redundancy_cap=7, confidence_target=0.93)),
    ):
        fresh_pool = WorkerPool.heterogeneous(25, seed=7)
        fresh_platform = SimulatedPlatform(fresh_pool, seed=8)
        tasks = make_tasks(150, seed=9)
        truth = {t.task_id: t.truth for t in tasks}
        strategy = factory()
        outcome = run_assignment(fresh_platform, strategy, tasks, max_answers=budget)
        inferred = (
            strategy.inferred_truths()
            if hasattr(strategy, "inferred_truths")
            else MajorityVote().infer(outcome.answers_by_task).truths
        )
        accuracy = sum(1 for t in truth if inferred.get(t) == truth[t]) / len(truth)
        results.append(
            {"strategy": label, "answers": outcome.answers_used, "accuracy": accuracy}
        )
    print(format_table(results, title=f"4. Online assignment at a budget of {budget} answers"))


if __name__ == "__main__":
    main()
