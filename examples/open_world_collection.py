"""Open-world collection: enumerate an unknown universe and know when to stop.

A requester wants a list of all local coffee shops. No machine knows the
full list; workers each know a popularity-skewed subset. The example runs
the CrowdDB-style enumeration loop, tracks Good-Turing coverage, and shows
the Chao92 richness estimate converging on the true universe size — the
signal that tells the requester further spending buys only duplicates.

Run:  python examples/open_world_collection.py
"""

from repro.experiments.report import format_series, format_table
from repro.operators.collect import CrowdCollect, bind_zipf_knowledge
from repro.platform import SimulatedPlatform
from repro.workers import CollectorModel, Worker, WorkerPool

UNIVERSE_SIZE = 120


def main() -> None:
    universe = [f"coffee-shop-{i:03d}" for i in range(UNIVERSE_SIZE)]
    pool = WorkerPool([Worker(model=CollectorModel()) for _ in range(20)], seed=1)
    # Every worker knows the famous places; few know the hole-in-the-wall ones.
    bind_zipf_knowledge(pool, universe, knowledge_size=35, zipf_s=1.1, seed=2)
    platform = SimulatedPlatform(pool, seed=3)

    collector = CrowdCollect(platform, "Name a coffee shop in town.", checkpoint_every=25)
    result = collector.run(max_queries=600, stop_at_coverage=0.97)

    print(f"true universe size: {UNIVERSE_SIZE}")
    print(f"queries issued:     {result.queries_issued}")
    print(f"distinct collected: {result.distinct_count}")
    print(f"recall:             {result.recall_against(universe):.1%}")
    print(f"coverage (G-T):     {result.coverage:.3f}")
    print(f"Chao92 estimate:    {result.estimated_richness:.0f}")

    checkpoints = result.richness_trajectory
    print()
    print(
        format_table(
            [
                {"queries": q, "distinct": d, "chao92": est}
                for q, d, est in checkpoints
            ],
            title="Richness estimate converging as evidence accumulates",
            float_format="{:.1f}",
        )
    )
    print()
    print(
        format_series(
            [q for q, _d, _e in checkpoints],
            [d for _q, d, _e in checkpoints],
            x_label="queries",
            y_label="distinct items",
            title="Discovery curve (diminishing returns)",
        )
    )


if __name__ == "__main__":
    main()
