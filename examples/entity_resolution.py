"""Entity resolution with the crowd: the CrowdER-style hybrid pipeline.

A product catalog contains duplicate listings written by different sellers.
This example resolves them three ways and prints the cost/quality ledger:

* crowd-all-pairs (the naive quadratic baseline),
* machine pruning + crowd verification,
* pruning + transitivity deduction (the full hybrid).

Run:  python examples/entity_resolution.py
"""

from repro.cost.pruning import SimilarityPruner
from repro.experiments.datasets import er_dataset
from repro.experiments.report import format_table
from repro.operators.join import CrowdJoin
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool


def resolve(records, truth_fn, true_pairs, pruner, transitivity, label, seed=3):
    platform = SimulatedPlatform(WorkerPool.uniform(25, 0.93, seed=seed), seed=seed + 1)
    join = CrowdJoin(
        platform,
        truth_fn,
        pruner=pruner,
        use_transitivity=transitivity,
        redundancy=3,
    )
    result = join.run(records)
    precision, recall, f1 = result.precision_recall_f1(true_pairs)
    return {
        "pipeline": label,
        "pairs": result.pairs_considered,
        "asked": result.questions_asked,
        "deduced": result.deduced_pairs,
        "cost": result.cost,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


def main() -> None:
    dataset = er_dataset(n_entities=30, records_per_entity=(2, 3), seed=1)
    print(f"catalog: {len(dataset.records)} listings, 30 true entities")
    print("sample listings:")
    for record in dataset.records[:6]:
        print("   ", record)

    rows = [
        resolve(
            dataset.records, dataset.truth_fn, dataset.true_pairs,
            pruner=None, transitivity=False, label="crowd all-pairs",
        ),
        resolve(
            dataset.records, dataset.truth_fn, dataset.true_pairs,
            pruner=SimilarityPruner(0.4), transitivity=False, label="machine pruning",
        ),
        resolve(
            dataset.records, dataset.truth_fn, dataset.true_pairs,
            pruner=SimilarityPruner(0.4), transitivity=True, label="pruning + transitivity",
        ),
    ]
    print()
    print(format_table(rows, title="Crowd entity resolution: who pays what"))
    baseline, _, hybrid = rows
    print(
        f"\nhybrid asks {hybrid['asked']} questions vs {baseline['asked']} "
        f"({baseline['asked'] / max(1, hybrid['asked']):.0f}x fewer) at comparable F1."
    )


if __name__ == "__main__":
    main()
