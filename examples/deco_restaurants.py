"""Deco-style declarative crowdsourcing: pay only for the data you query.

Builds a Deco conceptual relation ``restaurants(name | cuisine, rating)``
whose *anchors* (restaurant names) are enumerated by the crowd and whose
dependent groups are fetched on demand with per-group resolution rules
(2-vote majority for cuisine, mean of ratings). Then runs MinTuples
queries and shows the signature Deco property: the query only triggers
the fetches it needs, so "find me 3 thai places" costs a fraction of
resolving the whole relation.

Run:  python examples/deco_restaurants.py
"""

from repro.deco import (
    AnchorFetchRule,
    ConceptualRelation,
    DecoQueryEngine,
    DependentFetchRule,
    FetchRuleSet,
    mean_resolution,
    single_column_group,
)
from repro.operators.collect import bind_zipf_knowledge
from repro.platform import SimulatedPlatform
from repro.workers import CollectorModel, OneCoinModel, Worker, WorkerPool

# Hidden world state (what the crowd collectively knows).
UNIVERSE = [f"restaurant-{i:02d}" for i in range(30)]
CUISINE = {r: ("thai", "sushi", "pizza")[i % 3] for i, r in enumerate(UNIVERSE)}
RATING = {r: 2.0 + (i * 7 % 30) / 10.0 for i, r in enumerate(UNIVERSE)}


def build_engine(seed: int = 9) -> DecoQueryEngine:
    # A mixed pool: some workers enumerate, others answer fill questions.
    workers = [Worker(model=CollectorModel()) for _ in range(10)]
    workers += [Worker(model=OneCoinModel(0.93)) for _ in range(12)]
    pool = WorkerPool(workers, seed=seed)
    bind_zipf_knowledge(pool, UNIVERSE, knowledge_size=14, seed=seed + 1)
    platform = SimulatedPlatform(pool, seed=seed + 2)

    relation = ConceptualRelation(
        "restaurants",
        anchors=("name",),
        groups=[
            single_column_group("cuisine", min_raw=2),            # 2-vote majority
            single_column_group("rating", mean_resolution, min_raw=3),  # mean of 3
        ],
    )
    rules = FetchRuleSet(
        anchor_rule=AnchorFetchRule("Name a restaurant in the district."),
        dependent_rules={
            "cuisine": DependentFetchRule(
                "cuisine",
                question_fn=lambda a: f"What cuisine does {a['name']} serve?",
                truth_fn=lambda a, col: CUISINE.get(a["name"], "unknown"),
            ),
            "rating": DependentFetchRule(
                "rating",
                question_fn=lambda a: f"Rate {a['name']} from 1-5.",
                truth_fn=lambda a, col: RATING.get(a["name"], 3.0),
            ),
        },
    )
    return DecoQueryEngine(relation, rules, platform)


def main() -> None:
    print("Deco conceptual relation: restaurants(name | cuisine, rating)")
    print("resolution: cuisine = majority of 2, rating = mean of 3\n")

    engine = build_engine()
    result = engine.min_tuples(
        3, predicate=lambda row: row["cuisine"] == "thai", anchor_batch=5
    )
    print("MinTuples(3, cuisine='thai'):")
    for row in result.rows[:3]:
        print(f"   {row['name']:<16s} {row['cuisine']:<6s} rating={row['rating']:.1f}")
    print(
        f"   -> {result.anchors_fetched} anchors enumerated, "
        f"{result.dependent_fetches} dependent fetches, cost {result.cost:.2f}\n"
    )

    # The expensive alternative: enumerate hard, resolve everything.
    full = build_engine(seed=21)
    full.rules.anchor_rule.fetch(full.relation, full.platform, attempts=120)
    everything = full.resolve_all()
    print(
        f"resolve-ALL baseline: {len(everything.rows)} tuples fully resolved, "
        f"{everything.dependent_fetches} dependent fetches, "
        f"cost {everything.cost + 1.2:.2f} (incl. enumeration)"
    )
    print(
        f"\npull-based query cost was "
        f"{result.cost / (everything.cost + 1.2):.0%} of resolve-all."
    )

    # Queries over already-fetched data are free.
    again = engine.min_tuples(2, predicate=lambda row: row["rating"] > 3.0)
    print(
        f"\nfollow-up MinTuples(2, rating>3): cost {again.cost:.2f} "
        f"({'reused existing raw data' if again.cost < 0.2 else 'needed new fetches'})"
    )


if __name__ == "__main__":
    main()
