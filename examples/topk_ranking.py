"""Crowd-powered ranking: find the best conference demo by pairwise votes.

Compares the sort/top-k strategy space on one workload:

* all-pairs comparisons (robust, quadratic),
* merge sort (n log n),
* rating-only (linear, coarse),
* hybrid rating + targeted comparisons (the Qurk recipe),
* tournament MAX / top-3 at different fan-ins (latency vs cost).

Run:  python examples/topk_ranking.py
"""

from repro.experiments.datasets import ranking_dataset
from repro.experiments.report import format_table
from repro.operators.sort import (
    CrowdComparator,
    all_pairs_sort,
    hybrid_sort,
    merge_sort_crowd,
    rating_sort,
)
from repro.operators.topk import topk_tournament, tournament_max
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool


def _platform(seed):
    # Bradley-Terry comparison workers: sharp on far-apart pairs, noisy
    # ratings — the empirical regime Qurk reported.
    return SimulatedPlatform(
        WorkerPool.comparison_pool(25, sharpness=12.0, seed=seed), seed=seed + 1
    )


def main() -> None:
    dataset = ranking_dataset(n_items=20, seed=5)
    true_order = dataset.true_order
    print(f"ranking {len(dataset.items)} demo submissions (hidden jury scores)")

    rows = []
    for label, runner in (
        ("all-pairs", lambda c: all_pairs_sort(c)),
        ("merge sort", lambda c: merge_sort_crowd(c)),
    ):
        comparator = CrowdComparator(
            _platform(11), dataset.items, dataset.score_fn, redundancy=3
        )
        result = runner(comparator)
        rows.append(
            {
                "strategy": label,
                "comparisons": result.comparisons_asked,
                "answers": result.answers_bought,
                "kendall_tau": result.kendall_tau(true_order),
            }
        )

    rating = rating_sort(_platform(13), dataset.items, dataset.score_fn, redundancy=3)
    rows.append(
        {
            "strategy": "rating only",
            "comparisons": 0,
            "answers": rating.answers_bought,
            "kendall_tau": rating.kendall_tau(true_order),
        }
    )
    hybrid = hybrid_sort(
        _platform(13), dataset.items, dataset.score_fn, redundancy=3, close_threshold=1.5
    )
    rows.append(
        {
            "strategy": "hybrid (Qurk)",
            "comparisons": hybrid.comparisons_asked,
            "answers": hybrid.answers_bought,
            "kendall_tau": hybrid.kendall_tau(true_order),
        }
    )
    print()
    print(format_table(rows, title="Full ranking: cost vs quality"))

    print()
    top_rows = []
    for fan_in in (2, 4, 8):
        comparator = CrowdComparator(
            _platform(17), dataset.items, dataset.score_fn, redundancy=3
        )
        result = tournament_max(comparator, fan_in=fan_in)
        top_rows.append(
            {
                "fan_in": fan_in,
                "winner": dataset.items[result.winners[0]],
                "correct": result.winners[0] == true_order[0],
                "comparisons": result.comparisons_asked,
                "rounds": result.rounds,
            }
        )
    print(format_table(top_rows, title="Tournament MAX: fan-in trades rounds for cost"))

    comparator = CrowdComparator(
        _platform(19), dataset.items, dataset.score_fn, redundancy=3
    )
    top3 = topk_tournament(comparator, k=3)
    print(
        f"\ntop-3 via repeated tournaments: "
        f"{[dataset.items[i] for i in top3.winners]} "
        f"({top3.comparisons_asked} comparisons, cache-reused)"
    )
    print(f"true top-3: {[dataset.items[i] for i in true_order[:3]]}")


if __name__ == "__main__":
    main()
