"""Deco-style conceptual relations: raw vs resolved data.

Deco (Parameswaran et al.) is the declarative crowdsourcing design the
tutorial profiles alongside CrowdDB and Qurk. Its data model splits a
logical ("conceptual") relation into:

* **anchor attributes** — the entity identity (e.g. ``restaurant``), whose
  instances can be *fetched* from the crowd (open world);
* **dependent attribute groups** — facts about an anchor (e.g.
  ``(cuisine)``, ``(rating)``), each fetched independently and possibly
  multiple times, yielding conflicting *raw* values;
* **resolution rules** — per-group functions that collapse raw values into
  the single *resolved* value queries see (dedup for anchors,
  majority/mean for dependents).

This module implements the storage side: raw anchor instances, raw
dependent values, and the resolved view. The fetch side (crowd
procedures) lives in :mod:`repro.deco.fetch`; query semantics
("fetch until the result is good enough") in :mod:`repro.deco.query`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, SchemaError

ResolutionFn = Callable[[Sequence[Any]], Any]


def majority_resolution(raw_values: Sequence[Any]) -> Any:
    """Resolve to the most frequent raw value (ties: smallest repr)."""
    if not raw_values:
        return None
    counts = Counter(raw_values)
    peak = max(counts.values())
    tied = [value for value, count in counts.items() if count == peak]
    return min(tied, key=repr)


def mean_resolution(raw_values: Sequence[Any]) -> Any:
    """Resolve numeric raw values to their mean (non-numeric junk skipped)."""
    numeric = []
    for value in raw_values:
        try:
            numeric.append(float(value))
        except (TypeError, ValueError):
            continue
    if not numeric:
        return None
    return sum(numeric) / len(numeric)


def first_resolution(raw_values: Sequence[Any]) -> Any:
    """Resolve to the earliest raw value (trust the first fetch)."""
    return raw_values[0] if raw_values else None


def dedup_exact(values: Iterable[Any]) -> list[Any]:
    """Anchor dedup: exact-match, order-preserving."""
    seen: set[Any] = set()
    out = []
    for value in values:
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out


@dataclass(frozen=True)
class DependentGroup:
    """One dependent attribute group of a conceptual relation.

    Attributes:
        name: Group name; also the resolved column name for 1-column groups.
        columns: The group's attribute names (most groups have one).
        resolution: Collapses the group's raw value dicts into one resolved
            dict. Receives a list of per-fetch dicts {column: value}.
        min_raw: Raw fetches required before the group counts as resolved
            (Deco's per-group resolution arity, e.g. 2 agreeing answers).
    """

    name: str
    columns: tuple[str, ...]
    resolution: Callable[[Sequence[dict[str, Any]]], dict[str, Any] | None] | None = None
    min_raw: int = 1

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"dependent group {self.name!r} needs columns")
        if self.min_raw < 1:
            raise SchemaError("min_raw must be >= 1")

    def resolve(self, raw: Sequence[dict[str, Any]]) -> dict[str, Any] | None:
        """Resolved values for this group, or None if insufficient raw data."""
        if len(raw) < self.min_raw:
            return None
        if self.resolution is not None:
            return self.resolution(raw)
        # Default: per-column majority.
        resolved = {}
        for column in self.columns:
            resolved[column] = majority_resolution([r[column] for r in raw if column in r])
        return resolved


def single_column_group(
    name: str,
    resolution: ResolutionFn = majority_resolution,
    min_raw: int = 1,
) -> DependentGroup:
    """Convenience: a one-column group resolved by a value-level function."""

    def resolve(raw: Sequence[dict[str, Any]]) -> dict[str, Any]:
        return {name: resolution([r[name] for r in raw if name in r])}

    return DependentGroup(name=name, columns=(name,), resolution=resolve, min_raw=min_raw)


class ConceptualRelation:
    """A Deco conceptual relation: anchors + dependent groups + raw store.

    Args:
        name: Relation name.
        anchors: Anchor attribute names (entity identity).
        groups: Dependent attribute groups.
    """

    def __init__(self, name: str, anchors: Sequence[str], groups: Sequence[DependentGroup]):
        if not anchors:
            raise SchemaError("a conceptual relation needs at least one anchor")
        self.name = name
        self.anchors = tuple(anchors)
        self.groups = list(groups)
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate dependent group names")
        column_sets = [set(g.columns) for g in self.groups]
        for i, columns in enumerate(column_sets):
            if columns & set(self.anchors):
                raise SchemaError("dependent columns cannot repeat anchor names")
            for other in column_sets[i + 1 :]:
                if columns & other:
                    raise SchemaError("dependent groups must have disjoint columns")
        # anchor key -> group name -> list of raw value dicts
        self._raw: dict[tuple[Any, ...], dict[str, list[dict[str, Any]]]] = {}
        self._anchor_order: list[tuple[Any, ...]] = []

    # ------------------------------------------------------------------ #
    # Raw-side mutation
    # ------------------------------------------------------------------ #

    def _key(self, anchor_values: dict[str, Any]) -> tuple[Any, ...]:
        missing = [a for a in self.anchors if a not in anchor_values]
        if missing:
            raise ConfigurationError(f"anchor values missing {missing}")
        return tuple(anchor_values[a] for a in self.anchors)

    def add_anchor(self, **anchor_values: Any) -> bool:
        """Insert a raw anchor instance (deduped exactly). Returns True if new."""
        key = self._key(anchor_values)
        if key in self._raw:
            return False
        self._raw[key] = {g.name: [] for g in self.groups}
        self._anchor_order.append(key)
        return True

    def add_raw_value(self, anchor_values: dict[str, Any], group: str, **values: Any) -> None:
        """Record one raw fetch result for a dependent group."""
        key = self._key(anchor_values)
        if key not in self._raw:
            raise ConfigurationError(f"unknown anchor {key!r}; add_anchor first")
        store = self._raw[key]
        if group not in store:
            raise ConfigurationError(f"unknown dependent group {group!r}")
        group_def = self.group(group)
        unexpected = set(values) - set(group_def.columns)
        if unexpected:
            raise ConfigurationError(
                f"values {sorted(unexpected)} not in group {group!r} columns"
            )
        store[group].append(dict(values))

    def group(self, name: str) -> DependentGroup:
        """Look up a dependent group definition by name."""
        for group in self.groups:
            if group.name == name:
                return group
        raise ConfigurationError(f"unknown dependent group {name!r}")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def anchor_keys(self) -> list[tuple[Any, ...]]:
        return list(self._anchor_order)

    def raw_values(self, anchor_values: dict[str, Any], group: str) -> list[dict[str, Any]]:
        """Raw fetch results recorded for one anchor's group."""
        key = self._key(anchor_values)
        return list(self._raw.get(key, {}).get(group, []))

    def raw_count(self, anchor_values: dict[str, Any], group: str) -> int:
        """Number of raw fetches recorded for one anchor's group."""
        return len(self.raw_values(anchor_values, group))

    def unresolved_groups(self, anchor_values: dict[str, Any]) -> list[str]:
        """Groups of this anchor still lacking min_raw raw fetches."""
        key = self._key(anchor_values)
        store = self._raw.get(key, {})
        return [
            g.name for g in self.groups if len(store.get(g.name, [])) < g.min_raw
        ]

    # ------------------------------------------------------------------ #
    # Resolved view
    # ------------------------------------------------------------------ #

    def resolved_row(self, key: tuple[Any, ...]) -> dict[str, Any] | None:
        """The resolved tuple for one anchor, or None if any group lacks data."""
        store = self._raw[key]
        row = dict(zip(self.anchors, key))
        for group in self.groups:
            resolved = group.resolve(store[group.name])
            if resolved is None:
                return None
            row.update(resolved)
        return row

    def resolved_rows(self, include_partial: bool = False) -> list[dict[str, Any]]:
        """The resolved relation (complete tuples only, unless asked)."""
        rows = []
        for key in self._anchor_order:
            row = self.resolved_row(key)
            if row is not None:
                rows.append(row)
            elif include_partial:
                partial = dict(zip(self.anchors, key))
                store = self._raw[key]
                for group in self.groups:
                    resolved = group.resolve(store[group.name])
                    if resolved:
                        partial.update(resolved)
                rows.append(partial)
        return rows

    def __len__(self) -> int:
        return len(self._anchor_order)

    def __repr__(self) -> str:
        groups = ", ".join(g.name for g in self.groups)
        return (
            f"ConceptualRelation<{self.name}({', '.join(self.anchors)} | {groups}), "
            f"{len(self)} anchors>"
        )
