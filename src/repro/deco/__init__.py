"""Deco-style declarative crowdsourcing: conceptual relations, fetch rules,
resolution rules, and fetch-until-satisfied query semantics."""

from repro.deco.fetch import AnchorFetchRule, DependentFetchRule, FetchRuleSet
from repro.deco.model import (
    ConceptualRelation,
    DependentGroup,
    dedup_exact,
    first_resolution,
    majority_resolution,
    mean_resolution,
    single_column_group,
)
from repro.deco.query import DecoQueryEngine, DecoQueryResult

__all__ = [
    "AnchorFetchRule",
    "ConceptualRelation",
    "DecoQueryEngine",
    "DecoQueryResult",
    "DependentFetchRule",
    "DependentGroup",
    "FetchRuleSet",
    "dedup_exact",
    "first_resolution",
    "majority_resolution",
    "mean_resolution",
    "single_column_group",
]
