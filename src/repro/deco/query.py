"""Deco query semantics: fetch raw data until the result is good enough.

Deco's signature behaviour — and the reason the tutorial presents it as
the most principled of the declarative designs — is *pull-based fetching*:
a query over the resolved relation triggers exactly the crowd fetches
needed to satisfy it. The canonical constraint is ``MinTuples(n)``:
"return at least n resolved tuples matching the predicate", fetching new
anchors and missing dependent values on demand, within a budget.

:class:`DecoQueryEngine` implements that loop:

1. resolve; count matching tuples;
2. if short: fetch dependent groups for anchors that are *partially*
   resolved (cheapest way to finish a tuple);
3. still short: fetch new anchors, then their groups;
4. stop when satisfied, out of budget, or fetches stop producing progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.deco.fetch import FetchRuleSet
from repro.deco.model import ConceptualRelation
from repro.errors import BudgetExceededError, ConfigurationError
from repro.platform.platform import SimulatedPlatform

Predicate = Callable[[dict[str, Any]], bool]


@dataclass
class DecoQueryResult:
    """Outcome of a fetch-until-satisfied query."""

    rows: list[dict[str, Any]]
    satisfied: bool
    anchors_fetched: int
    dependent_fetches: int
    cost: float
    stop_reason: str = ""

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class DecoQueryEngine:
    """Runs MinTuples queries over a conceptual relation.

    Args:
        relation: The conceptual relation (raw store).
        rules: Its fetch rules (anchor + per-group).
        platform: Marketplace fetches run against.
        max_fetch_rounds: Safety cap on fetch iterations.
    """

    relation: ConceptualRelation
    rules: FetchRuleSet
    platform: SimulatedPlatform
    max_fetch_rounds: int = 200
    patience: int = 10  # consecutive no-progress fetch rounds before giving up

    def _matching_rows(self, predicate: Predicate | None) -> list[dict[str, Any]]:
        rows = self.relation.resolved_rows()
        if predicate is None:
            return rows
        return [row for row in rows if predicate(row)]

    def _complete_anchor(self, key: tuple[Any, ...]) -> int:
        """Fetch every lacking group of one anchor; returns fetches made."""
        anchor_values = dict(zip(self.relation.anchors, key))
        fetches = 0
        for group_name in self.relation.unresolved_groups(anchor_values):
            group = self.relation.group(group_name)
            rule = self.rules.dependent_rule(group_name)
            needed = group.min_raw - self.relation.raw_count(anchor_values, group_name)
            fetches += rule.fetch(self.relation, self.platform, anchor_values, times=needed)
        return fetches

    def min_tuples(
        self,
        n: int,
        predicate: Predicate | None = None,
        anchor_batch: int = 3,
    ) -> DecoQueryResult:
        """Fetch until at least *n* resolved tuples satisfy *predicate*.

        Args:
            n: Required matching-tuple count.
            predicate: Filter over resolved rows (None = all rows count).
            anchor_batch: COLLECT attempts per anchor-fetch round.

        Returns a result even on failure (``satisfied`` False, with the
        stop reason: budget, no anchor rule, or fetch exhaustion).
        """
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if not self.rules.covers(self.relation):
            raise ConfigurationError("every dependent group needs a fetch rule")

        before_cost = self.platform.stats.cost_spent
        anchors_fetched = 0
        dependent_fetches = 0
        stop_reason = "satisfied"
        stale_rounds = 0

        for _round in range(self.max_fetch_rounds):
            matching = self._matching_rows(predicate)
            if len(matching) >= n:
                break

            progressed = False
            try:
                # Step 1: finish partially-resolved anchors (cheapest tuples).
                for key in self.relation.anchor_keys:
                    anchor_values = dict(zip(self.relation.anchors, key))
                    if self.relation.unresolved_groups(anchor_values):
                        made = self._complete_anchor(key)
                        dependent_fetches += made
                        progressed = progressed or made > 0
                if progressed:
                    continue

                # Step 2: no partial anchors left — enumerate new ones.
                if self.rules.anchor_rule is None:
                    stop_reason = "no_anchor_fetch_rule"
                    break
                added = self.rules.anchor_rule.fetch(
                    self.relation, self.platform, attempts=anchor_batch
                )
                anchors_fetched += added
                progressed = added > 0
            except BudgetExceededError:
                stop_reason = "budget_exhausted"
                break

            if not progressed:
                stale_rounds += 1
                if stale_rounds >= self.patience:
                    stop_reason = "fetch_exhausted"
                    break
            else:
                stale_rounds = 0
        else:
            stop_reason = "round_cap"

        matching = self._matching_rows(predicate)
        return DecoQueryResult(
            rows=matching[: max(n, len(matching))],
            satisfied=len(matching) >= n,
            anchors_fetched=anchors_fetched,
            dependent_fetches=dependent_fetches,
            cost=self.platform.stats.cost_spent - before_cost,
            stop_reason=stop_reason if len(matching) < n else "satisfied",
        )

    def resolve_all(self) -> DecoQueryResult:
        """Fetch every known anchor to full resolution (no enumeration)."""
        before_cost = self.platform.stats.cost_spent
        dependent_fetches = 0
        stop_reason = "satisfied"
        try:
            for key in self.relation.anchor_keys:
                dependent_fetches += self._complete_anchor(key)
        except BudgetExceededError:
            stop_reason = "budget_exhausted"
        rows = self.relation.resolved_rows()
        return DecoQueryResult(
            rows=rows,
            satisfied=stop_reason == "satisfied",
            anchors_fetched=0,
            dependent_fetches=dependent_fetches,
            cost=self.platform.stats.cost_spent - before_cost,
            stop_reason=stop_reason,
        )
