"""Deco fetch rules: crowd procedures that add raw data.

A fetch rule is ``lhs => rhs``: given values for the attributes on the
left, obtain values for the attributes on the right from the crowd.
Two forms matter in practice (and are what Deco's paper exercises):

* **anchor fetch** (``∅ => anchors``): enumerate new entity instances —
  implemented as COLLECT tasks against collector workers.
* **dependent fetch** (``anchors => group``): fill a dependent group for a
  known anchor — implemented as FILL tasks with per-fetch redundancy 1
  (resolution happens later, on the raw values, per Deco's design).

Every fetch charges the platform budget like any other crowd work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.deco.model import ConceptualRelation
from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType


@dataclass
class AnchorFetchRule:
    """``∅ => anchors``: ask the crowd for a (possibly new) entity.

    Args:
        question: The enumeration prompt.
        parse: Maps a raw worker contribution to anchor values
            ({anchor: value}) or None to discard. Defaults to binding a
            single-anchor relation's anchor to the contribution.
    """

    question: str
    parse: Callable[[Any], dict[str, Any] | None] | None = None

    def fetch(
        self,
        relation: ConceptualRelation,
        platform: SimulatedPlatform,
        attempts: int = 1,
    ) -> int:
        """Issue *attempts* COLLECT tasks; returns how many NEW anchors landed."""
        if attempts < 1:
            raise ConfigurationError("attempts must be >= 1")
        if self.parse is None and len(relation.anchors) != 1:
            raise ConfigurationError(
                "multi-anchor relations need an explicit parse function"
            )
        added = 0
        for _ in range(attempts):
            task = Task(TaskType.COLLECT, question=self.question)
            answer = platform.ask(task)
            task.complete()
            if answer.value is None:
                continue
            if self.parse is not None:
                anchor_values = self.parse(answer.value)
                if anchor_values is None:
                    continue
            else:
                if len(relation.anchors) != 1:
                    raise ConfigurationError(
                        "multi-anchor relations need an explicit parse function"
                    )
                anchor_values = {relation.anchors[0]: answer.value}
            if relation.add_anchor(**anchor_values):
                added += 1
        return added


@dataclass
class DependentFetchRule:
    """``anchors => group``: ask the crowd for one raw value of a group.

    Args:
        group: The dependent group this rule feeds.
        question_fn: Renders the task prompt from the anchor values.
        truth_fn: Simulation ground truth: (anchor values, column) -> value.
    """

    group: str
    question_fn: Callable[[dict[str, Any]], str] | None = None
    truth_fn: Callable[[dict[str, Any], str], Any] | None = None

    def fetch(
        self,
        relation: ConceptualRelation,
        platform: SimulatedPlatform,
        anchor_values: dict[str, Any],
        times: int = 1,
    ) -> int:
        """Issue *times* FILL fetches for this anchor+group; returns count."""
        if times < 1:
            raise ConfigurationError("times must be >= 1")
        group = relation.group(self.group)
        fetched = 0
        for _ in range(times):
            raw: dict[str, Any] = {}
            for column in group.columns:
                question = (
                    self.question_fn(anchor_values)
                    if self.question_fn is not None
                    else f"Provide {column!r} for {anchor_values!r}."
                )
                truth = (
                    self.truth_fn(anchor_values, column)
                    if self.truth_fn is not None
                    else None
                )
                # Numeric facts go out as NUMERIC estimation tasks (workers
                # produce noisy numbers); everything else as free-text FILL.
                numeric = isinstance(truth, (int, float)) and not isinstance(truth, bool)
                task = Task(
                    TaskType.NUMERIC if numeric else TaskType.FILL,
                    question=question,
                    truth=truth,
                )
                answer = platform.ask(task)
                task.complete()
                raw[column] = answer.value
            relation.add_raw_value(anchor_values, self.group, **raw)
            fetched += 1
        return fetched


@dataclass
class FetchRuleSet:
    """All fetch rules of one conceptual relation, indexed for the planner."""

    anchor_rule: AnchorFetchRule | None = None
    dependent_rules: dict[str, DependentFetchRule] = field(default_factory=dict)

    def dependent_rule(self, group: str) -> DependentFetchRule:
        """The fetch rule feeding dependent group *group* (raises if absent)."""
        try:
            return self.dependent_rules[group]
        except KeyError:
            raise ConfigurationError(
                f"no fetch rule for dependent group {group!r}"
            ) from None

    def covers(self, relation: ConceptualRelation) -> bool:
        """True if every dependent group has a fetch rule."""
        return all(g.name in self.dependent_rules for g in relation.groups)
