"""Batched concurrent task runtime for the simulated platform.

Real crowd platforms do not hand out one microtask at a time: requesters
post *batches* of HITs, many assignments are in flight at once, workers
abandon or time out on some of them, and the platform re-posts those until
a retry limit is hit (the Reprowd / human-powered-sorts-and-joins regime).
:class:`BatchScheduler` brings that execution model to the simulation:

* pending tasks are grouped into batches of ``batch_size``;
* each batch's assignments are dispatched through a bounded
  ``ThreadPoolExecutor`` (``max_parallel`` lanes) and stamped onto a
  simulated clock with the same number of concurrent lanes, so *simulated*
  makespan shrinks as parallelism grows;
* per-assignment faults — worker abandonment (``abandon_rate``) and
  service times exceeding ``assignment_timeout`` — trigger bounded
  retry-with-exponential-backoff on a fresh worker, and exhausting the
  retry budget raises :class:`~repro.errors.RetryExhaustedError`.

Determinism: planning (worker sampling) always happens on the caller's
thread in task order, so the pool's RNG stream is consumed identically at
any parallelism. With ``max_parallel=1`` attempts also draw from the
platform RNG in the legacy order, making the sequential path bit-identical
to :meth:`SimulatedPlatform.collect`. With ``max_parallel>1`` every
assignment gets its own RNG derived from ``(seed, assignment index)``, so
results are reproducible regardless of thread interleaving — just a
different (equally valid) random stream than the sequential one.

Tail-latency control (``hedge_enabled``): the scheduler fits per-task-type
lognormal completion-time models online (:class:`HedgeState`, built on
:mod:`repro.latency.statistical`) and, when a completed attempt ran past
the fitted straggler threshold, speculatively re-issues the task on a
fresh worker ("hedging"). First answer wins — the losing copy is
*cancelled* (its cost refunded, counted separately from abandonment).
Hedge decisions are derived purely from the deterministic observation
stream and the pool RNG, so a seed replay — or a kill-and-resume whose
checkpoint carries :meth:`HedgeState.export_state` — reproduces the exact
same hedges, winners, and stats. With ``hedge_enabled=False`` (default)
every code path and RNG draw is bit-identical to the pre-hedging runtime.
"""

from __future__ import annotations

import itertools
import math
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    NoWorkersAvailableError,
    RetryExhaustedError,
)
from repro.platform.task import Answer, Task
from repro.recovery.degrade import FailureInfo, FailurePolicy

if TYPE_CHECKING:  # avoid import cycles with platform/workers
    from repro.platform.platform import SimulatedPlatform
    from repro.recovery.breakers import CircuitBreaker
    from repro.workers.worker import Worker


@dataclass(frozen=True)
class BatchConfig:
    """Knobs of the batch execution runtime.

    Attributes:
        batch_size: Tasks grouped into one dispatch wave.
        max_parallel: Concurrent assignment lanes (threads and simulated
            clock lanes). 1 reproduces the sequential path bit-for-bit.
        retry_limit: Retries per assignment after the first attempt.
        assignment_timeout: Simulated seconds after which an in-flight
            assignment is reclaimed and retried; None disables timeouts.
        abandon_rate: Probability a worker silently abandons an assignment
            (fault injection; 0 disables it).
        retry_backoff: Base simulated delay before retry r, growing as
            ``retry_backoff * 2**(r-1)``.
        seed: Entropy for the per-assignment RNG streams used when
            ``max_parallel > 1``; None derives nothing extra (stream 0).
        failure_policy: What happens when a task cannot be completed
            (retries exhausted, budget gone, breaker open): ``"fail"``
            raises, ``"skip"`` drops the task from the answers,
            ``"degrade"`` keeps partial answers and records failures (see
            :class:`~repro.recovery.degrade.FailurePolicy`).
        hedge_enabled: Speculatively re-issue in-flight stragglers once a
            per-task-type completion model is warm (see module docstring).
        hedge_percentile: Completion-time quantile beyond which a running
            attempt counts as a straggler and gets hedged.
        hedge_min_samples: Observations per task type required before the
            model is trusted; colder types never hedge.
    """

    batch_size: int = 32
    max_parallel: int = 1
    retry_limit: int = 2
    assignment_timeout: float | None = None
    abandon_rate: float = 0.0
    retry_backoff: float = 1.0
    seed: int | None = None
    failure_policy: str = "fail"
    hedge_enabled: bool = False
    hedge_percentile: float = 0.9
    hedge_min_samples: int = 20

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_parallel < 1:
            raise ConfigurationError(f"max_parallel must be >= 1, got {self.max_parallel}")
        if self.retry_limit < 0:
            raise ConfigurationError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if self.assignment_timeout is not None and self.assignment_timeout <= 0:
            raise ConfigurationError(
                f"assignment_timeout must be positive or None, got {self.assignment_timeout}"
            )
        if not 0.0 <= self.abandon_rate <= 1.0:
            raise ConfigurationError(f"abandon_rate must be in [0, 1], got {self.abandon_rate}")
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if not 0.0 < self.hedge_percentile < 1.0:
            raise ConfigurationError(
                f"hedge_percentile must be in (0, 1), got {self.hedge_percentile}"
            )
        if self.hedge_min_samples < 2:
            raise ConfigurationError(
                f"hedge_min_samples must be >= 2, got {self.hedge_min_samples}"
            )
        FailurePolicy.parse(self.failure_policy)  # raises ConfigurationError if unknown

    @property
    def faults_enabled(self) -> bool:
        return self.abandon_rate > 0.0 or self.assignment_timeout is not None


# Process-unique batch ids: PlatformStats folds each batch exactly once,
# keyed by this id, even when a record is handed back twice (re-dispatch).
_BATCH_IDS = itertools.count()


@dataclass
class BatchRecord:
    """Counters for one dispatched batch."""

    index: int
    tasks: int
    dispatched: int = 0       # assignment attempts sent out
    retried: int = 0          # attempts that were retries
    timed_out: int = 0
    abandoned: int = 0
    makespan: float = 0.0     # simulated seconds (lane model)
    wall_clock: float = 0.0   # real seconds spent dispatching
    outage_wait: float = 0.0  # simulated seconds stalled by a platform outage
    hedged: int = 0           # speculative hedge copies launched
    hedges_won: int = 0       # hedge copy answered first (primary cancelled)
    hedges_lost: int = 0      # primary answered first (hedge copy cancelled)
    hedges_cancelled: int = 0  # hedge copy faulted in flight; primary kept
    hedge_refund: float = 0.0  # cost refunded by cancelling losing copies
    batch_id: int = field(default_factory=_BATCH_IDS.__next__)


@dataclass
class BatchRunResult:
    """Outcome of one :meth:`BatchScheduler.run` call."""

    answers: dict[str, list[Answer]] = field(default_factory=dict)
    records: list[BatchRecord] = field(default_factory=list)
    makespan: float = 0.0
    completion_times: dict[str, float] = field(default_factory=dict)
    failures: dict[str, FailureInfo] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one task could not be fully completed."""
        return bool(self.failures)

    @property
    def throughput(self) -> float:
        """Completed tasks per simulated second."""
        if self.makespan <= 0.0:
            return 0.0
        return len(self.completion_times) / self.makespan


@dataclass
class _Assignment:
    """One (task, worker) attempt tracked through execution."""

    task: Task
    worker: "Worker"
    order: int                # stable dispatch order within the wave
    stream: int               # global per-assignment RNG stream id
    attempt: int = 0          # 0 = first try
    # filled by execution:
    fault: str | None = None  # None | "timeout" | "abandoned"
    duration: float = 0.0     # simulated seconds the lane was occupied
    value: object = None
    straggled: bool = False   # duration inflated by an injected straggler spike
    # outcome history of this retry chain, shared across its assignments
    outcomes: list[str] = field(default_factory=list)
    # speculative hedge copy racing this attempt, if any
    hedge: "_Assignment | None" = None
    hedge_detect: float = 0.0  # simulated offset at which the hedge launched


class HedgeState:
    """Online per-task-type completion models driving hedge decisions.

    Effective task durations are recorded in commit order (deterministic at
    any parallelism); thresholds come from a *robust* lognormal fit
    (:func:`repro.latency.statistical.fit_completion_model` with
    ``robust=True``) so an already-contaminated observation window still
    recognizes stragglers instead of chasing them. Under deadline pressure
    the escalation ladder lowers the detection percentile via
    :meth:`set_pressure`; pressure is *not* part of the exported state — it
    is recomputed from the simulated clock on every batch, which keeps
    kill-and-resume runs bit-identical.
    """

    def __init__(
        self,
        percentile: float = 0.9,
        min_samples: int = 20,
        window: int = 256,
    ):
        # Imported lazily: repro.latency's package __init__ pulls in the
        # offline mitigation module, which imports the platform package —
        # a module-level import here would complete that cycle.
        from repro.latency.statistical import fit_completion_model, straggler_threshold

        self._fit = fit_completion_model
        self._quantile = straggler_threshold
        self.percentile = percentile
        self.min_samples = min_samples
        self.window = window
        self._observations: dict[str, deque[float]] = {}
        self._pressure: float | None = None
        self._version = 0
        self._cache: dict[str, tuple[int, float]] = {}

    @property
    def effective_percentile(self) -> float:
        """The detection percentile currently in force (pressure-aware)."""
        return self._pressure if self._pressure is not None else self.percentile

    def set_pressure(self, active: bool, percentile: float) -> None:
        """Lower (or restore) the detection percentile under deadline pressure."""
        pressure = percentile if active else None
        if pressure != self._pressure:
            self._pressure = pressure
            self._version += 1

    def observe(self, task_type: str, duration: float) -> None:
        """Record one effective task duration for *task_type*."""
        if not math.isfinite(duration) or duration <= 0.0:
            return
        window = self._observations.get(task_type)
        if window is None:
            window = deque(maxlen=self.window)
            self._observations[task_type] = window
        window.append(float(duration))
        self._version += 1

    def threshold(self, task_type: str) -> float | None:
        """Straggler cutoff for *task_type*, or None while the model is cold."""
        window = self._observations.get(task_type)
        if window is None or len(window) < self.min_samples:
            return None
        cached = self._cache.get(task_type)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        model = self._fit(list(window), robust=True)
        value = self._quantile(model, percentile=self.effective_percentile)
        self._cache[task_type] = (self._version, value)
        return value

    def export_state(self) -> dict:
        """JSON-serializable snapshot of the observation windows."""
        return {
            "observations": {
                kind: list(window) for kind, window in self._observations.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore observation windows captured by :meth:`export_state`."""
        self._observations = {
            kind: deque((float(d) for d in window), maxlen=self.window)
            for kind, window in state.get("observations", {}).items()
        }
        self._cache.clear()
        self._version += 1


class BatchScheduler:
    """Dispatch task batches concurrently against a simulated platform.

    Args:
        platform: The marketplace supplying workers and bookkeeping.
        config: Runtime knobs; defaults are the sequential degenerate case.
    """

    def __init__(self, platform: "SimulatedPlatform", config: BatchConfig | None = None):
        self.platform = platform
        self.config = config or BatchConfig()
        self.records: list[BatchRecord] = []
        self.breakers: list["CircuitBreaker"] = []
        self.batches_run = 0  # lifetime batch count; survives checkpoint/resume
        self._clock = 0.0     # simulated time already consumed by past batches
        self._run_base = 0.0  # clock value when the current run() started
        self._streams = 0     # per-assignment RNG stream counter
        self._budget_exhausted = False
        self.hedge_state: HedgeState | None = (
            HedgeState(
                percentile=self.config.hedge_percentile,
                min_samples=self.config.hedge_min_samples,
            )
            if self.config.hedge_enabled
            else None
        )
        self._shrink_redundancy = False
        self._deadline_stage = "normal"  # advanced by AdaptiveDeadlineBreaker

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def parallel(self) -> bool:
        """True when this scheduler actually runs assignments concurrently."""
        return self.config.max_parallel > 1

    @property
    def simulated_clock(self) -> float:
        """Total simulated seconds consumed by every batch dispatched so far."""
        return self._clock

    def apply_deadline_pressure(
        self, *, hedge: bool, shrink: bool, percentile: float
    ) -> None:
        """Escalation hook for adaptive deadline breakers.

        Idempotent, and derived by the caller purely from the simulated
        clock — safe to re-apply every batch, including the first batch
        after a checkpoint resume. ``hedge`` turns hedging on (creating a
        cold :class:`HedgeState` when the config left it off) and lowers
        the detection percentile to *percentile*; ``shrink`` additionally
        halves the effective redundancy of subsequent batches.
        """
        self._shrink_redundancy = shrink
        if hedge and self.hedge_state is None:
            self.hedge_state = HedgeState(
                percentile=self.config.hedge_percentile,
                min_samples=self.config.hedge_min_samples,
            )
        if self.hedge_state is not None:
            self.hedge_state.set_pressure(hedge, percentile)

    def run(
        self,
        tasks: Sequence[Task],
        redundancy: int = 3,
        complete: bool = True,
        *,
        cancel: Callable[[Task], str | None] | None = None,
        on_batch: Callable[[list[Task], BatchRunResult], None] | None = None,
    ) -> BatchRunResult:
        """Gather *redundancy* answers per task, batch by batch.

        Returns a :class:`BatchRunResult` whose ``answers`` mapping has the
        same shape as :meth:`SimulatedPlatform.collect`. Tasks are completed
        afterwards unless *complete* is False (round-structured callers keep
        them open for further answers).

        *cancel*, consulted for every still-pending task at each batch
        boundary, returns a reason string to drop the task before it is
        ever published (its would-be spend is refunded and counted in
        ``stats.tasks_cancelled`` / ``stats.cancel_cost_refunded``) or
        None to keep it queued. *on_batch* is invoked after each
        successfully dispatched batch with the batch's tasks and the
        running result, letting streaming callers consume answers
        wave-by-wave. Neither hook fires when left as None, keeping the
        default path bit-identical to the hook-free runtime.

        Failure behaviour follows ``config.failure_policy``: under
        ``"fail"`` an assignment that cannot be completed raises
        (:class:`RetryExhaustedError`, :class:`BudgetExceededError`, ...);
        under ``"skip"``/``"degrade"`` the run always returns, with
        per-task :class:`~repro.recovery.degrade.FailureInfo` in
        ``result.failures`` — ``degrade`` keeps partial answers (every
        requested task id has a key, possibly an empty list) while
        ``skip`` drops failed tasks from the answers mapping entirely.
        Circuit breakers in :attr:`breakers` are consulted at batch
        boundaries when the policy is not ``"fail"``.
        """
        if redundancy < 1:
            raise ConfigurationError(f"redundancy must be >= 1, got {redundancy}")
        policy = FailurePolicy.parse(self.config.failure_policy)
        active = len(self.platform.pool.active_workers)
        if redundancy > active and policy is FailurePolicy.FAIL:
            raise NoWorkersAvailableError(
                f"redundancy {redundancy} exceeds pool of {active}"
            )
        result = BatchRunResult()
        self._run_base = self._clock  # completion times are relative to run start
        self._budget_exhausted = False
        size = self.config.batch_size
        tracer = self.platform.tracer
        injector = self.platform.faults
        # Answer-cache seam: hits are served without dispatching, in-flight
        # duplicates coalesce onto one canonical task, and only the misses
        # run below. resolution is None when no cache applies (none
        # attached, or a complete=False round-structured caller).
        resolution = self.platform.cache_resolve(tasks, redundancy, complete=complete)
        run_tasks = list(tasks) if resolution is None else resolution.misses
        halted: str | None = None
        pending = deque(run_tasks)
        while pending:
            if cancel is not None:
                kept: list[Task] = []
                for task in pending:
                    reason = cancel(task)
                    if reason is None:
                        kept.append(task)
                    else:
                        self._cancel_task(task, reason, redundancy)
                pending = deque(kept)
                if not pending:
                    break
            batch = [pending.popleft() for _ in range(min(size, len(pending)))]
            if halted is None and self._budget_exhausted:
                halted = "budget_exhausted"
            if halted is None and policy is not FailurePolicy.FAIL:
                halted = self._check_breakers()
            if halted is not None:
                for task in batch:
                    self._record_failure(result, FailureInfo(task.task_id, reason=halted))
                continue
            # Advisory escalation pass (all policies): adaptive breakers may
            # tighten hedging or shrink redundancy *before* tripping. Plain
            # breakers inherit a no-op escalate(), so this is RNG-silent and
            # bit-identical for legacy configurations.
            for breaker in self.breakers:
                stage = breaker.escalate(self.platform, self)
                if stage is not None:
                    self.platform.metrics.inc("recovery.deadline_escalations")
                    if tracer.enabled:
                        tracer.annotate(
                            "breaker.escalate", breaker=breaker.name, stage=stage
                        )
            eff_redundancy = (
                max(1, -(-redundancy // 2)) if self._shrink_redundancy else redundancy
            )
            if injector is not None:
                for event in injector.on_batch_start(
                    self.batches_run, self.platform, eff_redundancy
                ):
                    if tracer.enabled:
                        tracer.annotate("fault.injected", batch=self.batches_run, event=event)
            record = BatchRecord(index=len(self.records), tasks=len(batch))
            with tracer.span(
                "batch",
                sim_start=self._clock,
                index=record.index,
                batch_id=record.batch_id,
                tasks=len(batch),
            ) as span:
                self._run_batch(batch, eff_redundancy, record, result, complete, policy)
                span.set_tag("dispatched", record.dispatched)
                span.set_tag("retried", record.retried)
                span.set_tag("timed_out", record.timed_out)
                span.set_tag("abandoned", record.abandoned)
                if record.hedged:
                    span.set_tag("hedged", record.hedged)
                span.set_tag("makespan", record.makespan)
                if record.outage_wait:
                    span.set_tag("outage_wait", record.outage_wait)
                span.sim_end = self._clock + record.makespan
            self.records.append(record)
            self.batches_run += 1
            self.platform.stats.record_batch(record)
            self._clock += record.makespan
            if on_batch is not None:
                on_batch(batch, result)
        result.makespan = sum(r.makespan for r in result.records)
        if resolution is not None:
            self.platform.cache_finish(resolution, result.answers, complete=complete)
            for task in resolution.hit_tasks:
                result.completion_times[task.task_id] = 0.0
            for canonical_id, dups in resolution.duplicates.items():
                landed = result.completion_times.get(canonical_id)
                failure = result.failures.get(canonical_id)
                for dup in dups:
                    if landed is not None:
                        # A coalesced duplicate lands when its canonical does.
                        result.completion_times[dup.task_id] = landed
                    if failure is not None:
                        self._record_failure(
                            result,
                            FailureInfo(
                                dup.task_id,
                                reason=failure.reason,
                                attempts=failure.attempts,
                                outcomes=list(failure.outcomes),
                            ),
                        )
        if policy is FailurePolicy.DEGRADE:
            for task in tasks:
                result.answers.setdefault(task.task_id, [])
        elif policy is FailurePolicy.SKIP:
            for task_id in result.failures:
                result.answers.pop(task_id, None)
        return result

    def _check_breakers(self) -> str | None:
        """The name of the first open breaker, or None to keep dispatching."""
        tracer = self.platform.tracer
        for breaker in self.breakers:
            reason = breaker.check(self.platform, self)
            if reason is not None:
                self.platform.metrics.inc("recovery.breaker_trips")
                if tracer.enabled:
                    tracer.annotate("breaker.open", breaker=breaker.name, reason=reason)
                return breaker.name
        return None

    def _record_failure(self, result: BatchRunResult, info: FailureInfo) -> None:
        """File *info* unless the task already has a recorded failure."""
        if info.task_id in result.failures:
            return
        result.failures[info.task_id] = info
        self.platform.metrics.inc("recovery.tasks_failed")
        if self.platform.tracer.enabled:
            self.platform.tracer.annotate(
                "task.failed", task_id=info.task_id, reason=info.reason
            )

    def _cancel_task(self, task: Task, reason: str, redundancy: int) -> None:
        """Drop a still-pending *task* before publication and book the saving.

        The task was never published, priced, or charged, so the "refund" is
        spend *avoided*: the price the task would have cost at the requested
        redundancy. Counted in stats/metrics so early termination shows up
        in batch summaries, the profiler, and Prometheus scrapes.
        """
        platform = self.platform
        refund = platform.pricing.price(task) * redundancy
        platform.stats.tasks_cancelled += 1
        platform.stats.cancel_cost_refunded += refund
        platform.metrics.inc("batch.cancellations", labels={"reason": reason})
        if platform.tracer.enabled:
            platform.tracer.annotate(
                "batch.cancel", task_id=task.task_id, reason=reason
            )

    # ------------------------------------------------------------------ #
    # One batch
    # ------------------------------------------------------------------ #

    def _run_batch(
        self,
        batch: list[Task],
        redundancy: int,
        record: BatchRecord,
        result: BatchRunResult,
        complete: bool,
        policy: FailurePolicy = FailurePolicy.FAIL,
    ) -> None:
        started = time.perf_counter()
        platform = self.platform
        platform.publish([t for t in batch if t.task_id not in platform._tasks])
        result.records.append(record)

        # A platform outage stalls the whole batch until the window ends:
        # every lane starts at the delay instead of zero.
        outage = 0.0
        if platform.faults is not None:
            outage = platform.faults.outage_delay(self._clock)
            if outage > 0.0:
                record.outage_wait = outage
                platform.metrics.inc("faults.outage_delays")
                platform.metrics.observe("faults.outage_wait", outage)
                if platform.tracer.enabled:
                    platform.tracer.annotate(
                        "fault.outage", sim_start=self._clock, wait=outage
                    )

        # Plan on the caller's thread: the pool RNG stream is consumed in
        # task order exactly as the sequential path would. Workers who have
        # already answered a task (round-structured callers) are excluded,
        # which is a no-op — hence still bit-identical — for fresh tasks.
        wave: list[_Assignment] = []
        order = 0
        for task in batch:
            answered = {a.worker_id for a in platform._answers_by_task[task.task_id]}
            for worker in self._plan_workers(task, redundancy, answered, policy, result):
                wave.append(self._assignment(task, worker, order))
                order += 1

        attempted: dict[str, set[str]] = {t.task_id: set() for t in batch}
        lanes = [outage] * self.config.max_parallel
        tracer = platform.tracer
        metrics = platform.metrics
        retry_counts: dict[str, int] = {}
        while wave:
            self._execute_wave(wave)
            # Hedge planning happens on the caller's thread in wave order
            # (pool RNG determinism), then the hedge copies run as one
            # mini-wave after their primaries.
            if self.hedge_state is not None:
                hedges = self._plan_hedges(wave, attempted)
                if hedges:
                    self._execute_wave(hedges)
            retries: list[_Assignment] = []
            for a in wave:
                task_id = a.task.task_id
                record.dispatched += 1
                if a.attempt > 0:
                    record.retried += 1
                if a.straggled:
                    metrics.inc("faults.stragglers")
                attempted[task_id].add(a.worker.worker_id)
                backoff = (
                    self.config.retry_backoff * 2 ** (a.attempt - 1) if a.attempt else 0.0
                )
                winner, effective, outcome = a, a.duration, None
                if a.hedge is not None:
                    winner, effective, outcome = self._resolve_hedge(a)
                lane = min(range(len(lanes)), key=lanes.__getitem__)
                finished = lanes[lane] + backoff + effective
                lanes[lane] = finished
                if outcome is not None:
                    self._account_hedge(a, outcome, effective, record, attempted, lanes)
                if a.fault is None:
                    if self._budget_exhausted:
                        self._record_failure(
                            result, FailureInfo(task_id, reason="budget_exhausted")
                        )
                        continue
                    try:
                        self._commit(winner, result, finished)
                    except BudgetExceededError:
                        if policy is FailurePolicy.FAIL:
                            raise
                        self._budget_exhausted = True
                        self._record_failure(
                            result, FailureInfo(task_id, reason="budget_exhausted")
                        )
                        continue
                    if self.hedge_state is not None:
                        self.hedge_state.observe(a.task.task_type.value, effective)
                    metrics.observe("batch.assignment_latency", winner.duration)
                    metrics.inc("batch.assignment_outcomes", labels={"outcome": "ok"})
                else:
                    if a.fault == "timeout":
                        record.timed_out += 1
                    else:
                        record.abandoned += 1
                    metrics.inc(
                        "batch.assignment_outcomes", labels={"outcome": a.fault}
                    )
                    a.outcomes.append(a.fault)
                    retry_counts[task_id] = retry_counts.get(task_id, 0) + 1
                    if tracer.enabled:
                        tracer.annotate(
                            "batch.retry",
                            task_id=task_id,
                            attempt=a.attempt + 1,
                            reason=a.fault,
                        )
                    if self._budget_exhausted:
                        self._record_failure(
                            result, FailureInfo(task_id, reason="budget_exhausted")
                        )
                        continue
                    try:
                        retries.append(self._retry(a, attempted[task_id], order))
                        order += 1
                    except RetryExhaustedError as exc:
                        if policy is FailurePolicy.FAIL:
                            raise
                        self._record_failure(
                            result,
                            FailureInfo(
                                task_id,
                                reason="retries_exhausted",
                                attempts=exc.attempts,
                                outcomes=list(exc.outcomes),
                            ),
                        )
                    except NoWorkersAvailableError:
                        if policy is FailurePolicy.FAIL:
                            raise
                        self._record_failure(
                            result,
                            FailureInfo(
                                task_id,
                                reason="no_workers",
                                attempts=a.attempt + 1,
                                outcomes=list(a.outcomes),
                            ),
                        )
            wave = retries
        if metrics.enabled:
            for task in batch:
                metrics.observe("batch.retries_per_task", retry_counts.get(task.task_id, 0))
        if complete:
            for task in batch:
                if task.is_open:
                    task.complete()
        record.makespan = max(lanes)
        record.wall_clock = time.perf_counter() - started

    def _plan_workers(
        self,
        task: Task,
        redundancy: int,
        answered: set[str],
        policy: FailurePolicy,
        result: BatchRunResult,
    ) -> "list[Worker]":
        """Sample *redundancy* workers; degrade to fewer when the pool is short.

        Under the ``fail`` policy a short pool raises exactly as before;
        otherwise the task proceeds with however many eligible workers
        remain (zero means an immediate ``no_workers`` failure record).
        """
        pool = self.platform.pool
        try:
            return pool.sample(redundancy, exclude=answered)
        except NoWorkersAvailableError:
            if policy is FailurePolicy.FAIL:
                raise
        eligible = [
            w for w in pool.active_workers if w.worker_id not in answered
        ]
        if not eligible:
            self._record_failure(
                result, FailureInfo(task.task_id, reason="no_workers")
            )
            return []
        return pool.sample(len(eligible), exclude=answered)

    # ------------------------------------------------------------------ #
    # Hedging (speculative straggler re-issue)
    # ------------------------------------------------------------------ #

    def _plan_hedges(
        self, wave: list[_Assignment], attempted: dict[str, set[str]]
    ) -> list[_Assignment]:
        """Attach a speculative copy to each straggling successful attempt.

        Runs on the caller's thread in wave order, so the pool RNG stream
        is identical at any parallelism. Faulted attempts are left to the
        retry path; a pool with no spare eligible worker skips the hedge
        without consuming RNG (``pool.sample`` raises before drawing).
        """
        state = self.hedge_state
        wave_workers: dict[str, set[str]] = {}
        for a in wave:
            wave_workers.setdefault(a.task.task_id, set()).add(a.worker.worker_id)
        hedges: list[_Assignment] = []
        for a in wave:
            if a.fault is not None:
                continue
            threshold = state.threshold(a.task.task_type.value)
            if threshold is None or a.duration <= threshold:
                continue
            task_id = a.task.task_id
            answered = {
                ans.worker_id for ans in self.platform._answers_by_task[task_id]
            }
            exclude = attempted[task_id] | wave_workers[task_id] | answered
            try:
                worker = self.platform.pool.sample(1, exclude=exclude)[0]
            except NoWorkersAvailableError:
                continue
            hedge = self._assignment(a.task, worker, a.order, attempt=a.attempt)
            a.hedge = hedge
            a.hedge_detect = threshold
            hedges.append(hedge)
        return hedges

    def _resolve_hedge(
        self, a: _Assignment
    ) -> "tuple[_Assignment, float, str]":
        """First answer wins: pick the surviving copy of a hedged attempt.

        Returns ``(winner, effective_duration, outcome)`` where *outcome*
        labels the fate of the hedge copy: ``"won"`` (hedge answered first,
        primary cancelled), ``"lost"`` (primary answered first, hedge
        cancelled), or ``"cancelled"`` (hedge faulted in flight — never
        counted as a timeout/abandonment, never retried).
        """
        hedge = a.hedge
        if hedge.fault is not None:
            return a, a.duration, "cancelled"
        if a.hedge_detect + hedge.duration < a.duration:
            return hedge, a.hedge_detect + hedge.duration, "won"
        return a, a.duration, "lost"

    def _account_hedge(
        self,
        a: _Assignment,
        outcome: str,
        effective: float,
        record: BatchRecord,
        attempted: dict[str, set[str]],
        lanes: list[float],
    ) -> None:
        """Fold one resolved hedge into counters, metrics, and the lane model."""
        hedge = a.hedge
        metrics = self.platform.metrics
        record.dispatched += 1
        record.hedged += 1
        if outcome == "won":
            record.hedges_won += 1
            record.hedge_refund += a.task.reward  # the cancelled primary
        elif outcome == "lost":
            record.hedges_lost += 1
            record.hedge_refund += a.task.reward  # the cancelled hedge copy
        else:
            record.hedges_cancelled += 1  # faulted copy: nothing to refund
        if hedge.straggled:
            metrics.inc("faults.stragglers")
        attempted[a.task.task_id].add(hedge.worker.worker_id)
        metrics.inc("batch.hedges", labels={"outcome": outcome})
        if self.platform.tracer.enabled:
            self.platform.tracer.annotate(
                "batch.hedge",
                task_id=a.task.task_id,
                outcome=outcome,
                detect=a.hedge_detect,
                primary=a.duration,
                hedge=hedge.duration,
            )
        # The losing copy occupied a lane from detection until it finished
        # or was cancelled at the winner's completion, whichever came first.
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[lane] += min(hedge.duration, max(0.0, effective - a.hedge_detect))

    def _assignment(self, task: Task, worker: "Worker", order: int, attempt: int = 0) -> _Assignment:
        stream = self._streams
        self._streams += 1
        return _Assignment(task=task, worker=worker, order=order, stream=stream, attempt=attempt)

    def _retry(self, failed: _Assignment, attempted: set[str], order: int) -> _Assignment:
        attempt = failed.attempt + 1
        if attempt > self.config.retry_limit:
            raise RetryExhaustedError(
                failed.task.task_id,
                attempts=attempt,
                reason=failed.fault or "fault",
                outcomes=failed.outcomes,
            )
        # Prefer a worker who has not touched this task; fall back to any
        # worker who has not *answered* it when the pool is too small.
        try:
            worker = self.platform.pool.sample(1, exclude=attempted)[0]
        except NoWorkersAvailableError:
            answered = {
                a.worker_id for a in self.platform.answers_for(failed.task.task_id)
            }
            worker = self.platform.pool.sample(1, exclude=answered)[0]
        nxt = self._assignment(failed.task, worker, order, attempt=attempt)
        nxt.outcomes = failed.outcomes  # the chain shares one history list
        return nxt

    # ------------------------------------------------------------------ #
    # Attempt execution
    # ------------------------------------------------------------------ #

    def _execute_wave(self, wave: list[_Assignment]) -> None:
        """Fill in each assignment's (fault, duration, value) in place."""
        if not self.parallel:
            # Sequential: draw from the platform RNG in dispatch order —
            # with faults off this is the legacy collect() stream exactly.
            for a in wave:
                self._attempt(a, self.platform.rng)
            return
        with ThreadPoolExecutor(max_workers=self.config.max_parallel) as pool:
            futures = [pool.submit(self._attempt_isolated, a) for a in wave]
            for future in futures:
                future.result()  # re-raise worker-thread exceptions

    def _attempt_isolated(self, a: _Assignment) -> None:
        entropy = (
            [self.config.seed, a.stream] if self.config.seed is not None else [a.stream]
        )
        self._attempt(a, np.random.default_rng(entropy))

    def _attempt(self, a: _Assignment, rng: np.random.Generator) -> None:
        cfg = self.config
        if cfg.abandon_rate > 0.0 and rng.random() < cfg.abandon_rate:
            a.fault = "abandoned"
            # The slot is lost until the platform reclaims it.
            a.duration = (
                cfg.assignment_timeout
                if cfg.assignment_timeout is not None
                else a.worker.latency.service_time(rng)
            )
            return
        duration = a.worker.latency.service_time(rng)
        faults = self.platform.faults
        if faults is not None:
            # Keyed by the assignment's global stream id — identical at any
            # parallelism; only the flag is set here (worker thread), the
            # metric is counted on the caller thread.
            duration, a.straggled = faults.perturb_duration(a.stream, duration)
        if cfg.assignment_timeout is not None and duration > cfg.assignment_timeout:
            a.fault = "timeout"
            a.duration = cfg.assignment_timeout
            return
        a.fault = None
        a.duration = duration
        a.value = a.worker.model.answer(a.task, rng)

    # ------------------------------------------------------------------ #
    # Commit (always on the caller's thread, in deterministic order)
    # ------------------------------------------------------------------ #

    def _commit(self, a: _Assignment, result: BatchRunResult, finished: float) -> None:
        platform = self.platform
        task, worker = a.task, a.worker
        platform._charge(task.reward)
        answer = Answer(
            task_id=task.task_id,
            worker_id=worker.worker_id,
            value=a.value,
            submitted_at=a.duration,  # matches the sequential collect() stamp
            duration=a.duration,
            reward_paid=task.reward,
        )
        deliveries = [answer]
        if platform.faults is not None:
            answer, duplicates, fault_names = platform.faults.deliver(
                answer, task, a.stream
            )
            deliveries = [answer, *duplicates]
            for name in fault_names:
                platform.metrics.inc(f"faults.{name}")
                if platform.tracer.enabled:
                    platform.tracer.annotate(
                        "fault.delivery",
                        task_id=task.task_id,
                        worker_id=worker.worker_id,
                        kind=name,
                    )
        worker.history.append(answer)
        worker.earned += task.reward
        for delivered in deliveries:
            platform.answers.append(delivered)
            platform._answers_by_task[task.task_id].append(delivered)
            platform.stats.answers_collected += 1
            platform.stats.answers_by_worker[worker.worker_id] += 1
            result.answers.setdefault(task.task_id, []).append(delivered)
        landed = (self._clock - self._run_base) + finished
        previous = result.completion_times.get(task.task_id, 0.0)
        result.completion_times[task.task_id] = max(previous, landed)
