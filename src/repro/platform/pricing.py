"""Pricing policies and the price→latency response model.

The tutorial's latency-control section identifies *reward* as the main lever
a requester has over completion time: higher pay attracts workers faster.
:class:`PricingPolicy` sets per-task rewards; :class:`PriceResponseModel`
maps a reward to a worker arrival-rate multiplier, the standard log-linear
supply response used in the surveyed latency models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.platform.task import Task, TaskType


@dataclass
class PricingPolicy:
    """Per-task-type rewards with a default fallback.

    Example:
        >>> policy = PricingPolicy(default=0.02, by_type={TaskType.COMPARE: 0.01})
        >>> policy.price(Task(TaskType.FILL, question="q"))
        0.02
    """

    default: float = 0.01
    by_type: dict[TaskType, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default < 0 or any(v < 0 for v in self.by_type.values()):
            raise ConfigurationError("rewards must be non-negative")

    def price(self, task: Task) -> float:
        """Reward for one assignment of *task*."""
        return self.by_type.get(task.task_type, self.default)

    def apply(self, tasks: list[Task]) -> None:
        """Stamp rewards onto *tasks* in place."""
        for task in tasks:
            task.reward = self.price(task)

    def total_cost(self, tasks: list[Task], redundancy: int = 1) -> float:
        """Cost of publishing *tasks* with the given answer redundancy."""
        return sum(self.price(t) for t in tasks) * redundancy


@dataclass
class PriceResponseModel:
    """Log-linear supply response: rate multiplier = 1 + elasticity*ln(r/r0).

    *reference_reward* (r0) is the reward at which the pool's nominal
    arrival rates hold. The multiplier is clamped to [floor, ceiling] so
    pathological rewards cannot produce negative or unbounded supply.
    """

    reference_reward: float = 0.01
    elasticity: float = 0.6
    floor: float = 0.1
    ceiling: float = 5.0

    def __post_init__(self) -> None:
        if self.reference_reward <= 0:
            raise ConfigurationError("reference_reward must be positive")
        if self.floor <= 0 or self.ceiling < self.floor:
            raise ConfigurationError("need 0 < floor <= ceiling")

    def rate_multiplier(self, reward: float) -> float:
        """Arrival-rate multiplier for a given per-task reward."""
        if reward <= 0:
            return self.floor
        raw = 1.0 + self.elasticity * math.log(reward / self.reference_reward)
        return min(self.ceiling, max(self.floor, raw))

    def expected_speedup(self, reward: float) -> float:
        """Expected completion-time speedup vs. the reference reward.

        With Poisson arrivals, makespan scales inversely with arrival rate,
        so the speedup equals the rate multiplier.
        """
        return self.rate_multiplier(reward)
