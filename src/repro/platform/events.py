"""Discrete-event simulation clock for latency modelling.

The latency-control section of the tutorial reasons about *when* answers
arrive, not just how many are needed. This module provides a minimal but
exact discrete-event kernel: a priority queue of timestamped events and a
monotonically advancing clock. The platform schedules worker arrivals and
task completions on it; latency metrics (makespan, per-round time, tail
percentiles) fall out of the event log.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import PlatformError


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped simulation event.

    Ordering is (time, sequence) so simultaneous events preserve scheduling
    order deterministically.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


class EventSimulator:
    """A classic event-driven simulation loop.

    Args:
        tracer: When given (and enabled), every processed event is emitted
            as a zero-duration span annotation (``event.<kind>``) so a
            trace can reconstruct the discrete-event timeline.
        max_log: Cap on the in-memory :attr:`log`; events past the cap are
            still processed (and traced) but no longer retained, bounding
            memory on long runs. None keeps everything (historical
            behaviour).
    """

    def __init__(self, tracer=None, max_log: int | None = None) -> None:
        if max_log is not None and max_log < 0:
            raise PlatformError(f"max_log must be >= 0 or None, got {max_log}")
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.log: list[Event] = []
        self.tracer = tracer
        self.max_log = max_log
        self.events_processed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def schedule(self, delay: float, kind: str, **payload: Any) -> Event:
        """Schedule an event *delay* seconds in the future."""
        if delay < 0:
            raise PlatformError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._sequence), kind, payload)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule an event at an absolute time >= now."""
        if time < self.now:
            raise PlatformError(f"cannot schedule at {time} (now={self.now})")
        event = Event(time, next(self._sequence), kind, payload)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> Event | None:
        """Pop and return the next event, advancing the clock."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self.now = event.time
        self.events_processed += 1
        if self.max_log is None or len(self.log) < self.max_log:
            self.log.append(event)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.annotate(f"event.{event.kind}", sim_time=event.time, **event.payload)
        return event

    def run(
        self,
        handler: Callable[[Event, "EventSimulator"], None],
        until: float | None = None,
        max_events: int = 1_000_000,
    ) -> float:
        """Drain the queue through *handler*; returns the final clock.

        *handler* may schedule further events. Stops when the queue empties,
        the clock passes *until*, or *max_events* have been processed (a
        runaway guard, raising PlatformError).
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            event = self.step()
            assert event is not None
            handler(event, self)
            processed += 1
            if processed >= max_events:
                raise PlatformError(f"event budget exhausted after {max_events} events")
        return self.now

    def drain(self, until: float | None = None) -> Iterator[Event]:
        """Yield events in time order without a callback handler."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return
            event = self.step()
            assert event is not None
            yield event
