"""Microtask model.

The SIGMOD'17 tutorial's overview section catalogs the microtask types that
crowdsourced data management builds on. All of them are represented here:

* ``SINGLE_CHOICE`` — pick one label from ``options`` (filtering, labeling).
* ``MULTI_CHOICE``  — pick a subset of ``options``.
* ``FILL``          — free-text fill-in (CNULL resolution, CrowdFill).
* ``COLLECT``       — contribute a new item (open-world CrowdDB collection).
* ``COMPARE``       — which of two items ranks higher (sort / top-k / max)?
* ``RATE``          — numeric rating on a scale (Qurk's rating-based sort).
* ``NUMERIC``       — estimate a number (counting, aggregation).

A :class:`Task` optionally carries ``truth`` — the simulation's ground truth,
used only by simulated workers and by gold-injection quality control. Real
deployments would leave it ``None``; no algorithm in :mod:`repro.quality`
reads it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import TaskStateError


class TaskType(enum.Enum):
    """The microtask kinds crowd operators are built from."""

    SINGLE_CHOICE = "single_choice"
    MULTI_CHOICE = "multi_choice"
    FILL = "fill"
    COLLECT = "collect"
    COMPARE = "compare"
    RATE = "rate"
    NUMERIC = "numeric"


class TaskState(enum.Enum):
    """Task lifecycle states."""

    OPEN = "open"          # published, accepting assignments
    COMPLETED = "completed"  # enough answers gathered / requester closed it
    CANCELLED = "cancelled"


_task_counter = itertools.count(1)


def _next_task_id() -> str:
    return f"t{next(_task_counter)}"


@dataclass
class Task:
    """One unit of crowd work.

    Attributes:
        task_id: Unique id (auto-generated when omitted).
        task_type: The :class:`TaskType`.
        question: Human-readable instruction shown to workers.
        options: Candidate labels for choice tasks; rating scale bounds for
            RATE tasks are carried in ``payload['scale']`` instead.
        payload: Task-specific data (e.g. the two records of a COMPARE task,
            the target (table, rowid, column) of a FILL task).
        truth: Simulation ground truth (never consulted by inference code).
        difficulty: In [0, 1); higher is harder. Consumed by worker models
            with difficulty-sensitive accuracy (GLAD-style).
        reward: Payment per assignment, in abstract currency units.
        is_gold: True for hidden qualification tasks whose truth is known to
            the requester (used by worker quality control).
    """

    task_type: TaskType
    question: str = ""
    options: tuple[Any, ...] = ()
    payload: dict[str, Any] = field(default_factory=dict)
    truth: Any = None
    difficulty: float = 0.0
    reward: float = 0.01
    is_gold: bool = False
    task_id: str = field(default_factory=_next_task_id)
    state: TaskState = TaskState.OPEN

    def __post_init__(self) -> None:
        if self.task_type in (TaskType.SINGLE_CHOICE, TaskType.MULTI_CHOICE) and not self.options:
            raise TaskStateError(
                f"{self.task_type.value} task requires a non-empty options tuple"
            )
        if not 0.0 <= self.difficulty < 1.0:
            raise TaskStateError(f"difficulty must be in [0, 1), got {self.difficulty}")
        if self.reward < 0:
            raise TaskStateError(f"reward must be non-negative, got {self.reward}")

    def complete(self) -> None:
        """Close the task as completed (must currently be open)."""
        if self.state is not TaskState.OPEN:
            raise TaskStateError(f"task {self.task_id} is {self.state.value}, not open")
        self.state = TaskState.COMPLETED

    def cancel(self) -> None:
        """Close the task as cancelled (must currently be open)."""
        if self.state is not TaskState.OPEN:
            raise TaskStateError(f"task {self.task_id} is {self.state.value}, not open")
        self.state = TaskState.CANCELLED

    @property
    def is_open(self) -> bool:
        return self.state is TaskState.OPEN


@dataclass(frozen=True)
class Answer:
    """One worker's response to one task."""

    task_id: str
    worker_id: str
    value: Any
    submitted_at: float = 0.0
    duration: float = 0.0
    reward_paid: float = 0.0


@dataclass
class HIT:
    """A Human Intelligence Task group: several tasks shown as one unit.

    Batching multiple microtasks into a single HIT is the tutorial's
    canonical *task design* cost optimization — one worker context-switch
    amortized over ``len(tasks)`` answers, usually at a small accuracy cost
    modelled by :mod:`repro.cost.taskdesign`.
    """

    tasks: list[Task]
    hit_id: str = field(default_factory=lambda: f"hit{next(_task_counter)}")
    reward: float | None = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise TaskStateError("a HIT requires at least one task")
        if self.reward is None:
            self.reward = sum(t.reward for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)


def single_choice(question: str, options: tuple[Any, ...], truth: Any = None, **kwargs: Any) -> Task:
    """Build a SINGLE_CHOICE task."""
    return Task(TaskType.SINGLE_CHOICE, question=question, options=options, truth=truth, **kwargs)


def multi_choice(
    question: str,
    options: tuple[Any, ...],
    truth: "frozenset[Any] | set[Any] | None" = None,
    **kwargs: Any,
) -> Task:
    """Build a MULTI_CHOICE task; truth is the set of applicable options."""
    normalized = frozenset(truth) if truth is not None else None
    if normalized is not None and not normalized <= set(options):
        raise TaskStateError("multi-choice truth must be a subset of the options")
    return Task(
        TaskType.MULTI_CHOICE,
        question=question,
        options=options,
        truth=normalized,
        **kwargs,
    )


def compare(left: Any, right: Any, truth: Any = None, question: str = "", **kwargs: Any) -> Task:
    """Build a COMPARE task over two items; truth is 'left' or 'right'."""
    payload = kwargs.pop("payload", {})
    payload.update({"left": left, "right": right})
    return Task(
        TaskType.COMPARE,
        question=question or "Which item ranks higher?",
        options=("left", "right"),
        payload=payload,
        truth=truth,
        **kwargs,
    )


def fill(question: str, truth: Any = None, **kwargs: Any) -> Task:
    """Build a FILL task (free text)."""
    return Task(TaskType.FILL, question=question, truth=truth, **kwargs)


def numeric(question: str, truth: float | None = None, **kwargs: Any) -> Task:
    """Build a NUMERIC estimation task."""
    return Task(TaskType.NUMERIC, question=question, truth=truth, **kwargs)


def rate(question: str, scale: tuple[int, int] = (1, 5), truth: Any = None, **kwargs: Any) -> Task:
    """Build a RATE task on an inclusive integer scale."""
    payload = kwargs.pop("payload", {})
    payload["scale"] = scale
    return Task(TaskType.RATE, question=question, payload=payload, truth=truth, **kwargs)


def collect(question: str, **kwargs: Any) -> Task:
    """Build a COLLECT (open-world contribution) task."""
    return Task(TaskType.COLLECT, question=question, **kwargs)
