"""Content-addressed answer cache: never ask the crowd the same question twice.

Qurk reuses comparisons across its human-powered sorts and joins, and
Reprowd makes whole pipelines cheap to re-run by caching every collected
answer. :class:`AnswerCache` brings that regime to the simulated platform:

* **Content addressing.** A task is identified by a *signature* — a hash of
  its type, whitespace-normalized question, options, difficulty, and
  content payload (positional bookkeeping keys like ``item_index`` are
  excluded, so "the same question about the same records" matches no matter
  where it sits in a batch). Two task kinds are deliberately uncacheable:
  ``COLLECT`` tasks, whose open-world semantics *require* re-asking the same
  question, and gold tasks, which probe individual workers.

* **In-flight coalescing.** :meth:`resolve` partitions one request into
  cache hits, canonical misses, and same-signature duplicates of a miss.
  The batch runtime executes only the canonical misses; duplicates get the
  canonical's answers fanned back out without a second publish.

* **Cross-call reuse.** Answers stored from one ``collect``/``collect_batch``
  call (one operator, one CrowdSQL statement, one trial) are replayed for
  any later call that asks an identical question — at $0 cost and zero
  latency, with ``reward_paid=0.0`` on the replayed answers.

* **Persistence.** :meth:`save`/:meth:`load` spill the cache to JSONL (one
  entry per line) through the checkpoint value codec, so repeated
  experiment trials and checkpoint/resume replay answers Reprowd-style
  instead of re-spending budget.

Determinism contract: serving from the cache consumes **no** RNG, and a
miss consumes RNG exactly as the uncached path would — so on a workload
with no duplicate signatures, a cold cache-on run is bit-identical to a
cache-off run at the same seed, while duplicate-heavy workloads get the
savings and remain per-seed deterministic.

Cache-served answers are returned to the caller but are *not* entered in
the platform answer log, worker histories, or ``answers_collected`` — they
represent no new crowd work. Only ``complete=True`` collection paths
participate; round-structured callers (adaptive filter waves) buying
incremental evidence for a still-open task bypass the cache entirely, as
do HIT-grouped ``collect_batched`` (positional fatigue) and online
``ask`` assignment.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import CacheError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.platform.task import Answer, Task, TaskType

CACHE_FORMAT_VERSION = 1

#: Payload keys that are requester bookkeeping (where a task sits in a
#: batch), not question content — excluded from the signature so identical
#: questions match across positions, operators, and statements.
POSITIONAL_PAYLOAD_KEYS = frozenset({"item_index", "left_index", "right_index"})

#: Counter names the cache maintains (mirrored as PlatformStats views).
CACHE_METRICS = (
    "cache.hits",
    "cache.misses",
    "cache.coalesced",
    "cache.evictions",
    "cache.answers_reused",
)


def signature_of(
    task_type: TaskType,
    question: str,
    options: Sequence[Any] = (),
    payload: "dict[str, Any] | None" = None,
    difficulty: float = 0.0,
) -> "str | None":
    """The canonical content signature for a would-be task, or None.

    Computable without constructing a :class:`Task` (the CrowdSQL executor
    consults its verdict memo before building one). ``COLLECT`` questions
    return None: open-world enumeration depends on re-asking. Values go
    through the checkpoint codec, so anything checkpointable is hashable
    here; a genuinely opaque payload value also returns None (the task
    simply does not participate in caching).
    """
    if task_type is TaskType.COLLECT:
        return None
    # Lazy import: recovery.checkpoint imports platform.platform at module
    # level, and this module must stay importable from the platform package.
    from repro.errors import CheckpointError
    from repro.recovery.checkpoint import encode_value

    content_payload = {
        key: value
        for key, value in (payload or {}).items()
        if key not in POSITIONAL_PAYLOAD_KEYS
    }
    try:
        content = {
            "v": CACHE_FORMAT_VERSION,
            "type": task_type.value,
            "question": " ".join(question.split()),
            "options": [encode_value(option) for option in options],
            "payload": [
                [key, encode_value(content_payload[key])]
                for key in sorted(content_payload)
            ],
            "difficulty": difficulty,
        }
    except CheckpointError:
        return None
    blob = json.dumps(content, sort_keys=True, ensure_ascii=False, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def task_signature(task: Task) -> "str | None":
    """Signature of a live task; None for uncacheable tasks.

    Gold tasks are uncacheable by design: they exist to probe individual
    workers, so replaying a stored answer would defeat quality control.
    ``truth`` and ``reward`` are deliberately *not* part of the signature —
    neither is shown to workers, and pricing must not fragment the cache.
    """
    if task.is_gold:
        return None
    return signature_of(
        task.task_type, task.question, task.options, task.payload, task.difficulty
    )


@dataclass(frozen=True)
class CachedAnswer:
    """One stored worker response, stripped of its original task binding."""

    worker_id: str
    value: Any

    @classmethod
    def from_answer(cls, answer: Answer) -> "CachedAnswer":
        return cls(worker_id=answer.worker_id, value=answer.value)

    def replay(self, task_id: str) -> Answer:
        """Materialize as an answer for *task_id*: $0 paid, zero latency."""
        return Answer(
            task_id=task_id,
            worker_id=self.worker_id,
            value=self.value,
            submitted_at=0.0,
            duration=0.0,
            reward_paid=0.0,
        )


@dataclass
class CacheEntry:
    """Everything stored under one signature."""

    signature: str
    task_type: str
    question: str
    answers: list[CachedAnswer]


@dataclass
class CacheResolution:
    """One request partitioned into hits, canonical misses, and duplicates."""

    redundancy: int
    misses: list[Task] = field(default_factory=list)
    hits: dict[str, list[Answer]] = field(default_factory=dict)
    hit_tasks: list[Task] = field(default_factory=list)
    # canonical task_id -> later tasks in the same request with its signature
    duplicates: dict[str, list[Task]] = field(default_factory=dict)
    # canonical task_id -> signature (only for cacheable misses)
    signatures: dict[str, str] = field(default_factory=dict)
    # canonical task_id -> the task itself (store() needs its metadata)
    canonical: dict[str, Task] = field(default_factory=dict)

    @property
    def reused(self) -> bool:
        """True when this request was served at least one stored answer."""
        return bool(self.hits) or bool(self.duplicates)

    @property
    def coalesced_count(self) -> int:
        return sum(len(dups) for dups in self.duplicates.values())


class AnswerCache:
    """LRU content-addressed store of crowd answers, keyed by task signature.

    Args:
        max_entries: LRU capacity (least-recently-used signature evicted
            past it); None (default) means unbounded.
        metrics: Registry the hit/miss/coalesce/eviction counters live in;
            :meth:`rebind_metrics` moves them onto a platform's registry at
            attach time so ``PlatformStats`` views and the cache agree.
    """

    def __init__(
        self,
        max_entries: "int | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"cache max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    # -------------------------------------------------------------- #
    # Counters (always-live handles, like PlatformStats)
    # -------------------------------------------------------------- #

    #: Dotted counter → outcome label on the labeled ``cache.requests``
    #: family the Prometheus exposition groups lookups under.
    _OUTCOME_LABELS = {
        "cache.hits": "hit",
        "cache.misses": "miss",
        "cache.coalesced": "inflight",
    }

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)
        outcome = self._OUTCOME_LABELS.get(name)
        if outcome is not None:
            self.metrics.inc("cache.requests", amount, labels={"outcome": outcome})

    @property
    def hits(self) -> int:
        return self.metrics.counter("cache.hits").value

    @property
    def misses(self) -> int:
        return self.metrics.counter("cache.misses").value

    @property
    def coalesced(self) -> int:
        return self.metrics.counter("cache.coalesced").value

    @property
    def evictions(self) -> int:
        return self.metrics.counter("cache.evictions").value

    @property
    def answers_reused(self) -> int:
        return self.metrics.counter("cache.answers_reused").value

    def rebind_metrics(self, metrics: MetricsRegistry) -> None:
        """Move the cache's counters onto *metrics*, carrying their values."""
        if metrics is self.metrics:
            return
        for name in CACHE_METRICS:
            previous = self.metrics.counters.get(name)
            if previous is not None and previous.value:
                metrics.counter(name).inc(previous.value)
        self.metrics = metrics

    # -------------------------------------------------------------- #
    # Store / lookup
    # -------------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: object) -> bool:
        return signature in self._entries

    def entry(self, signature: str) -> "CacheEntry | None":
        """Peek at one entry without touching counters or LRU order."""
        return self._entries.get(signature)

    def store(self, task: Task, answers: Sequence[Answer]) -> None:
        """File *answers* under the task's signature (no-op if uncacheable).

        An existing entry is only replaced when the new answer list is
        longer (a degraded partial collection never clobbers a full one).
        """
        signature = task_signature(task)
        if signature is None or not answers:
            return
        self.store_signature(signature, task, answers)

    def store_signature(
        self, signature: str, task: Task, answers: Sequence[Answer]
    ) -> None:
        """Like :meth:`store` with the signature already computed."""
        if not answers:
            return
        existing = self._entries.get(signature)
        if existing is not None:
            if len(answers) > len(existing.answers):
                existing.answers = [CachedAnswer.from_answer(a) for a in answers]
            self._entries.move_to_end(signature)
            return
        self._entries[signature] = CacheEntry(
            signature=signature,
            task_type=task.task_type.value,
            question=task.question,
            answers=[CachedAnswer.from_answer(a) for a in answers],
        )
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("cache.evictions")

    def lookup(self, signature: str, redundancy: int) -> "list[CachedAnswer] | None":
        """Stored answers able to satisfy *redundancy*, counting hit/miss.

        An entry with fewer answers than requested does not serve (the
        caller needs more evidence than the cache holds) and counts as a
        miss; a serving entry is refreshed in LRU order and its first
        *redundancy* answers are returned.
        """
        entry = self._entries.get(signature)
        if entry is None or len(entry.answers) < redundancy:
            self._count("cache.misses")
            return None
        self._entries.move_to_end(signature)
        self._count("cache.hits")
        return entry.answers[:redundancy]

    # -------------------------------------------------------------- #
    # Request resolution (the platform/scheduler seam)
    # -------------------------------------------------------------- #

    def resolve(self, tasks: Sequence[Task], redundancy: int) -> CacheResolution:
        """Partition *tasks* into hits, canonical misses, and duplicates.

        Uncacheable tasks pass straight through as misses without touching
        any counter. Task order within each partition is request order, so
        downstream RNG consumption for the misses is deterministic.
        """
        resolution = CacheResolution(redundancy=redundancy)
        canonical_by_signature: dict[str, str] = {}
        for task in tasks:
            signature = task_signature(task)
            if signature is None:
                resolution.misses.append(task)
                continue
            canonical_id = canonical_by_signature.get(signature)
            if canonical_id is not None:
                resolution.duplicates.setdefault(canonical_id, []).append(task)
                self._count("cache.coalesced")
                continue
            cached = self.lookup(signature, redundancy)
            if cached is not None:
                resolution.hits[task.task_id] = [
                    stored.replay(task.task_id) for stored in cached
                ]
                resolution.hit_tasks.append(task)
                self._count("cache.answers_reused", len(cached))
            else:
                resolution.misses.append(task)
                resolution.signatures[task.task_id] = signature
                resolution.canonical[task.task_id] = task
                canonical_by_signature[signature] = task.task_id
        return resolution

    def apply(
        self,
        resolution: CacheResolution,
        answers: "dict[str, list[Answer]]",
        complete: bool = True,
    ) -> int:
        """Finish a resolved request after its misses ran.

        Stores the canonical misses' fresh answers, fans them out to the
        coalesced duplicates (mirroring the canonical's timing but paying
        nothing), merges the hits into *answers*, and completes served
        tasks when *complete*. Returns how many answers were fanned out to
        duplicates (the hit replays were already counted by resolve).
        """
        for task_id, signature in resolution.signatures.items():
            fresh = answers.get(task_id)
            if fresh:
                self.store_signature(signature, resolution.canonical[task_id], fresh)
        fanned_out = 0
        for canonical_id, dups in resolution.duplicates.items():
            source = answers.get(canonical_id, [])
            for dup in dups:
                answers[dup.task_id] = [
                    Answer(
                        task_id=dup.task_id,
                        worker_id=a.worker_id,
                        value=a.value,
                        submitted_at=a.submitted_at,
                        duration=a.duration,
                        reward_paid=0.0,
                    )
                    for a in source
                ]
                fanned_out += len(source)
                if complete and dup.is_open:
                    dup.complete()
        if fanned_out:
            self._count("cache.answers_reused", fanned_out)
        for task_id, served in resolution.hits.items():
            answers[task_id] = served
        if complete:
            for task in resolution.hit_tasks:
                if task.is_open:
                    task.complete()
        return fanned_out

    # -------------------------------------------------------------- #
    # Persistence (JSONL spill / load, Reprowd-style)
    # -------------------------------------------------------------- #

    def export_entries(self) -> list[dict]:
        """All entries as JSON-safe dicts, LRU order (oldest first)."""
        from repro.recovery.checkpoint import encode_value

        return [
            {
                "signature": entry.signature,
                "task_type": entry.task_type,
                "question": entry.question,
                "answers": [
                    {"worker_id": a.worker_id, "value": encode_value(a.value)}
                    for a in entry.answers
                ],
            }
            for entry in self._entries.values()
        ]

    def import_entries(self, entries: Sequence[dict]) -> int:
        """Replace the cache contents with *entries*; returns the count kept.

        Entries beyond ``max_entries`` are dropped oldest-first (without
        counting evictions — nothing was ever cached in this process).
        """
        from repro.recovery.checkpoint import decode_value

        self._entries.clear()
        kept = entries if self.max_entries is None else entries[-self.max_entries :]
        for data in kept:
            try:
                entry = CacheEntry(
                    signature=data["signature"],
                    task_type=data["task_type"],
                    question=data["question"],
                    answers=[
                        CachedAnswer(
                            worker_id=a["worker_id"], value=decode_value(a["value"])
                        )
                        for a in data["answers"]
                    ],
                )
            except (KeyError, TypeError) as exc:
                raise CacheError(f"malformed cache entry: {exc}") from exc
            self._entries[entry.signature] = entry
        return len(self._entries)

    def save(self, path: "Path | str") -> Path:
        """Spill to JSONL atomically (one entry per line; empty cache = empty file)."""
        target = Path(path)
        lines = [
            json.dumps(data, ensure_ascii=False, separators=(",", ":"))
            for data in self.export_entries()
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        tmp = target.with_name(target.name + ".tmp")
        try:
            if target.parent and not target.parent.exists():
                target.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(target)
        except OSError as exc:
            raise CacheError(f"cannot write answer cache to {target}: {exc}") from exc
        return target

    def load(self, path: "Path | str") -> int:
        """Load a JSONL spill written by :meth:`save`; returns entries kept."""
        source = Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as exc:
            raise CacheError(f"cannot read answer cache {source}: {exc}") from exc
        entries = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise CacheError(
                    f"corrupt answer cache {source} at line {lineno}: {exc}"
                ) from exc
        return self.import_entries(entries)
