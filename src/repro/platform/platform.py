"""The simulated crowdsourcing platform (an AMT stand-in).

:class:`SimulatedPlatform` is the single choke point through which every
crowd answer in the library flows. It owns:

* the worker pool and per-task assignment sampling,
* budget accounting (every answer costs its task's reward),
* the answer log used by truth inference and worker quality control,
* an optional discrete-event timeline for latency experiments.

Two usage modes mirror how real requesters interact with platforms:

* **batch** — :meth:`collect`: publish tasks with redundancy *k*; the
  platform gathers *k* answers per task from distinct workers.
* **online** — :meth:`worker_stream` + :meth:`ask`: workers "arrive" one at
  a time and an assignment strategy decides which task each gets (the
  QASCA/CDAS regime in :mod:`repro.quality.assignment`).
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.errors import BudgetExceededError, NoWorkersAvailableError, PlatformError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.platform.events import EventSimulator
from repro.platform.pricing import PriceResponseModel, PricingPolicy
from repro.platform.task import Answer, Task

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle with workers
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.platform.batch import BatchConfig, BatchScheduler
    from repro.platform.cache import AnswerCache, CacheResolution
    from repro.platform.task import HIT
    from repro.workers.pool import WorkerPool
    from repro.workers.worker import Worker

# PlatformStats attribute -> backing metric name. The registry is the one
# source of truth; the attributes below are generated property views.
_STAT_METRICS = {
    "answers_collected": "platform.answers_collected",
    "tasks_published": "platform.tasks_published",
    "cost_spent": "platform.cost_spent",
    "batches_dispatched": "batch.batches_dispatched",
    "assignments_dispatched": "batch.assignments_dispatched",
    "assignments_retried": "batch.assignments_retried",
    "assignments_timed_out": "batch.assignments_timed_out",
    "assignments_abandoned": "batch.assignments_abandoned",
    "batch_makespan": "batch.makespan",
    "batch_wall_clock": "batch.wall_clock",
    "batch_outage_wait": "batch.outage_wait",
    "hedges_launched": "batch.hedges_launched",
    "hedges_won": "batch.hedges_won",
    "hedges_lost": "batch.hedges_lost",
    "hedges_cancelled": "batch.hedges_cancelled",
    "hedge_cost_refunded": "batch.hedge_cost_refunded",
    "tasks_cancelled": "batch.tasks_cancelled",
    "cancel_cost_refunded": "batch.cancel_cost_refunded",
    "cache_hits": "cache.hits",
    "cache_misses": "cache.misses",
    "cache_coalesced": "cache.coalesced",
    "cache_evictions": "cache.evictions",
    "cache_answers_reused": "cache.answers_reused",
    "cache_cost_saved": "cache.cost_saved",
}


class PlatformStats:
    """Running totals the requester can inspect at any time.

    The scalar counters (``answers_collected``, ``cost_spent``, the batch
    counters, ...) live in a :class:`~repro.obs.metrics.MetricsRegistry`;
    the attributes here are property views onto it, so ``engine.stats``
    and ``engine.metrics`` can never disagree.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.answers_by_worker: dict[str, int] = defaultdict(int)
        self._folded_batches: set[int] = set()

    def record_batch(self, record) -> None:
        """Fold one :class:`~repro.platform.batch.BatchRecord` into the totals.

        Idempotent per batch: a record that was already folded (a round
        scheduler re-dispatching after timeout retries hands the same
        record back) is skipped, keyed by ``record.batch_id``.
        """
        batch_id = getattr(record, "batch_id", None)
        if batch_id is not None:
            if batch_id in self._folded_batches:
                return
            self._folded_batches.add(batch_id)
        self.batches_dispatched += 1
        self.assignments_dispatched += record.dispatched
        self.assignments_retried += record.retried
        self.assignments_timed_out += record.timed_out
        self.assignments_abandoned += record.abandoned
        self.batch_makespan += record.makespan
        self.batch_wall_clock += record.wall_clock
        self.batch_outage_wait += getattr(record, "outage_wait", 0.0)
        self.hedges_launched += getattr(record, "hedged", 0)
        self.hedges_won += getattr(record, "hedges_won", 0)
        self.hedges_lost += getattr(record, "hedges_lost", 0)
        self.hedges_cancelled += getattr(record, "hedges_cancelled", 0)
        self.hedge_cost_refunded += getattr(record, "hedge_refund", 0.0)

    def batch_summary(self) -> str:
        """One-line human-readable batch accounting (empty if unused)."""
        if not self.batches_dispatched:
            return ""
        summary = (
            f"{self.batches_dispatched} batches, "
            f"{self.assignments_dispatched} assignments "
            f"({self.assignments_retried} retried, "
            f"{self.assignments_timed_out} timed out, "
            f"{self.assignments_abandoned} abandoned), "
            f"simulated makespan {self.batch_makespan:.1f}s"
        )
        if self.hedges_launched:
            summary += (
                f", {self.hedges_launched} hedges "
                f"({self.hedges_won} won, {self.hedges_lost} lost, "
                f"{self.hedges_cancelled} cancelled, "
                f"refunded {self.hedge_cost_refunded:.4f})"
            )
        if self.tasks_cancelled:
            summary += (
                f", {int(self.tasks_cancelled)} HITs cancelled "
                f"(saved {self.cancel_cost_refunded:.4f})"
            )
        return summary

    def cache_summary(self) -> str:
        """One-line answer-cache accounting (empty when the cache saw no traffic)."""
        if not (self.cache_hits or self.cache_misses or self.cache_coalesced):
            return ""
        return (
            f"{self.cache_hits} hits, {self.cache_misses} misses, "
            f"{self.cache_coalesced} coalesced, "
            f"{self.cache_answers_reused} answers reused, "
            f"saved {self.cache_cost_saved:.4f}, "
            f"{self.tasks_published} tasks published"
        )


def _stat_property(metric_name: str) -> property:
    def fget(self: PlatformStats):
        return self.metrics.counter(metric_name).value

    def fset(self: PlatformStats, value) -> None:
        self.metrics.counter(metric_name).value = value

    return property(fget, fset)


for _attr, _metric in _STAT_METRICS.items():
    setattr(PlatformStats, _attr, _stat_property(_metric))
del _attr, _metric


@dataclass
class TimelineResult:
    """Outcome of a discrete-event latency simulation."""

    makespan: float
    answers: list[Answer]
    completion_times: dict[str, float]
    rounds: int = 1

    def percentile(self, q: float) -> float:
        """q-th percentile of per-task completion times."""
        if not self.completion_times:
            return 0.0
        return float(np.percentile(list(self.completion_times.values()), q))


class SimulatedPlatform:
    """An in-process crowdsourcing marketplace backed by simulated workers.

    Args:
        pool: The worker population.
        budget: Maximum total spend; answers beyond it raise
            :class:`~repro.errors.BudgetExceededError`.
        pricing: Reward policy stamped onto published tasks.
        seed: Seed for the platform's own RNG (assignment sampling and the
            workers' answer randomness both derive from it, so a seeded
            platform is fully reproducible).
        tracer: Span tracer threaded through operators, the batch runtime,
            and the event timeline; the no-op tracer when omitted.
        metrics: Registry backing :class:`PlatformStats` and the extra
            telemetry histograms; a disabled registry when omitted.
        event_log_limit: Cap on the discrete-event simulator's in-memory
            log (None = unbounded, the historical behaviour).
    """

    def __init__(
        self,
        pool: WorkerPool,
        budget: float = math.inf,
        pricing: PricingPolicy | None = None,
        seed: int | None = None,
        batch: "BatchConfig | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        event_log_limit: int | None = None,
    ):
        self.pool = pool
        self.budget = budget
        self.pricing = pricing or PricingPolicy()
        self.rng = np.random.default_rng(seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.event_log_limit = event_log_limit
        self.stats = PlatformStats(metrics=self.metrics)
        self.answers: list[Answer] = []
        self._answers_by_task: dict[str, list[Answer]] = defaultdict(list)
        self._tasks: dict[str, Task] = {}
        self.scheduler: "BatchScheduler | None" = None
        self.faults: "FaultInjector | None" = None
        self.cache: "AnswerCache | None" = None
        # Multi-tenant service seam: when a tenant account is active, every
        # charge is additionally checked and booked against it, atomically
        # with the global budget check (the lock is what makes two tenants
        # unable to jointly overspend a shared platform).
        self._charge_lock = threading.Lock()
        self._active_account: "object | None" = None
        if batch is not None:
            self.attach_scheduler(batch)

    def attach_scheduler(self, config: "BatchConfig") -> "BatchScheduler":
        """Install (or replace) the batch execution runtime on this platform."""
        from repro.platform.batch import BatchScheduler

        self.scheduler = BatchScheduler(self, config)
        return self.scheduler

    def attach_faults(self, plan: "FaultPlan | None") -> "FaultInjector | None":
        """Install (or clear, with None) a fault-injection plan.

        Faults only act on the batch runtime seams, so a plan without an
        attached scheduler is inert by construction.
        """
        from repro.faults.injector import FaultInjector

        self.faults = FaultInjector(plan) if plan is not None else None
        return self.faults

    def attach_cache(self, cache: "AnswerCache | None") -> "AnswerCache | None":
        """Install (or clear, with None) the content-addressed answer cache.

        The cache's counters are rebound onto this platform's registry so
        the ``cache_*`` views on :class:`PlatformStats` and the cache object
        always agree. Only ask-and-close collection paths (``collect`` and
        ``scheduler.run`` with ``complete=True``) consult the cache;
        round-structured callers keeping tasks open for more evidence, HIT
        batches, and online :meth:`ask` assignment never do.
        """
        if cache is not None:
            cache.rebind_metrics(self.metrics)
        self.cache = cache
        return cache

    @property
    def parallel_batching(self) -> bool:
        """True when an attached scheduler runs assignments concurrently."""
        return self.scheduler is not None and self.scheduler.parallel

    # ------------------------------------------------------------------ #
    # Publishing & bookkeeping
    # ------------------------------------------------------------------ #

    def publish(self, tasks: Sequence[Task]) -> None:
        """Register tasks and stamp rewards from the pricing policy."""
        for task in tasks:
            if task.task_id in self._tasks:
                raise PlatformError(f"task {task.task_id} already published")
            task.reward = self.pricing.price(task)
            self._tasks[task.task_id] = task
        self.stats.tasks_published += len(tasks)

    def task(self, task_id: str) -> Task:
        """Look up a published task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise PlatformError(f"unknown task {task_id!r}") from None

    def answers_for(self, task_id: str) -> list[Answer]:
        """All answers gathered so far for one task."""
        return list(self._answers_by_task[task_id])

    @property
    def remaining_budget(self) -> float:
        return self.budget - self.stats.cost_spent

    @contextmanager
    def charging_account(self, account: "object | None") -> Iterator[None]:
        """Attribute every charge in the block to *account* (a tenant).

        *account* duck-types two methods: ``check(amount)`` (raise
        :class:`~repro.errors.BudgetExceededError` without mutating when
        the tenant budget cannot cover *amount*) and ``add(amount)``
        (book the spend). The multi-tenant service wraps each work unit
        in this; single-requester callers never enter it, so the plain
        path is untouched.
        """
        previous = self._active_account
        self._active_account = account
        try:
            yield
        finally:
            self._active_account = previous

    def _charge(self, amount: float) -> None:
        # Serialized check-then-spend: without the lock two concurrent
        # charges could both pass the budget test and jointly overspend.
        # Both ledgers (global and tenant) are checked before either is
        # mutated, so a failed charge leaves no partial booking.
        with self._charge_lock:
            if self.stats.cost_spent + amount > self.budget + 1e-12:
                raise BudgetExceededError(
                    f"budget {self.budget:.4f} exhausted "
                    f"(spent {self.stats.cost_spent:.4f}, need {amount:.4f} more)"
                )
            account = self._active_account
            if account is not None:
                account.check(amount)
                self.stats.cost_spent += amount
                account.add(amount)
            else:
                self.stats.cost_spent += amount

    # ------------------------------------------------------------------ #
    # Answer cache seam (shared by collect() and the batch scheduler)
    # ------------------------------------------------------------------ #

    def cache_resolve(
        self, tasks: Sequence[Task], redundancy: int, complete: bool = True
    ) -> "CacheResolution | None":
        """Partition a request against the cache; None when it can't apply.

        Only ask-and-close requests participate: a ``complete=False``
        caller is buying *additional* evidence for tasks it keeps open, so
        serving its own earlier answers back would be self-poisoning.
        """
        if self.cache is None or not complete:
            return None
        return self.cache.resolve(tasks, redundancy)

    def cache_finish(
        self,
        resolution: "CacheResolution",
        answers: dict[str, list[Answer]],
        complete: bool = True,
    ) -> None:
        """Store fresh answers, fan out to duplicates, merge hits, account.

        Cache-served answers never touch the platform answer log, worker
        histories, ``answers_collected``, or the budget — they represent no
        new crowd work. Saved cost is valued at the pricing policy's rate
        for each reused answer. The ``answer_cache`` span is emitted only
        when reuse actually happened, so a reuse-free run's trace tree is
        bit-identical to a cache-off run.
        """
        self.cache.apply(resolution, answers, complete=complete)
        if not resolution.reused:
            return
        saved = 0.0
        for task in resolution.hit_tasks:
            saved += self.pricing.price(task) * len(answers.get(task.task_id, ()))
        for dups in resolution.duplicates.values():
            for dup in dups:
                saved += self.pricing.price(dup) * len(answers.get(dup.task_id, ()))
        self.stats.cache_cost_saved += saved
        account = self._active_account
        if account is not None:
            account.credit_saved(saved)
        if self.tracer.enabled:
            with self.tracer.span(
                "answer_cache",
                hits=len(resolution.hits),
                coalesced=resolution.coalesced_count,
                saved=round(saved, 6),
            ):
                pass

    # ------------------------------------------------------------------ #
    # Answer collection
    # ------------------------------------------------------------------ #

    def ask(self, task: Task, worker: Worker | None = None, now: float = 0.0) -> Answer:
        """Obtain one answer for *task*, charging its reward.

        When *worker* is None, a uniformly random active worker who has not
        yet answered this task is chosen.
        """
        if task.task_id not in self._tasks:
            self.publish([task])
        if not task.is_open:
            raise PlatformError(f"task {task.task_id} is not open")
        if worker is None:
            done = {a.worker_id for a in self._answers_by_task[task.task_id]}
            worker = self.pool.sample(1, exclude=done)[0]
        self._charge(task.reward)
        answer = worker.submit(task, self.rng, now=now)
        self.answers.append(answer)
        self._answers_by_task[task.task_id].append(answer)
        self.stats.answers_collected += 1
        self.stats.answers_by_worker[worker.worker_id] += 1
        return answer

    def collect(
        self,
        tasks: Sequence[Task],
        redundancy: int = 3,
    ) -> dict[str, list[Answer]]:
        """Batch mode: gather *redundancy* answers per task from distinct workers.

        Returns {task_id: [answers]}. Tasks are completed afterwards.
        """
        if redundancy < 1:
            raise PlatformError(f"redundancy must be >= 1, got {redundancy}")
        if redundancy > len(self.pool.active_workers):
            raise NoWorkersAvailableError(
                f"redundancy {redundancy} exceeds pool of {len(self.pool.active_workers)}"
            )
        resolution = self.cache_resolve(tasks, redundancy)
        run_tasks = tasks if resolution is None else resolution.misses
        self.publish([t for t in run_tasks if t.task_id not in self._tasks])
        result: dict[str, list[Answer]] = {}
        for task in run_tasks:
            workers = self.pool.sample(redundancy)
            result[task.task_id] = [self.ask(task, worker) for worker in workers]
            task.complete()
        if resolution is not None:
            self.cache_finish(resolution, result, complete=True)
        return result

    def collect_batch(
        self,
        tasks: Sequence[Task],
        redundancy: int = 3,
        complete: bool = True,
    ) -> dict[str, list[Answer]]:
        """Like :meth:`collect`, routed through the batch runtime when attached.

        Without a scheduler this is exactly :meth:`collect`; with one, tasks
        are dispatched in batches with the configured parallelism and fault
        model (bit-identical to :meth:`collect` at ``max_parallel=1`` with
        fault injection off). Operators call this so a single engine knob
        flips the whole stack between sequential and concurrent execution.
        """
        if self.scheduler is None:
            return self.collect(tasks, redundancy=redundancy)
        return self.scheduler.run(tasks, redundancy=redundancy, complete=complete).answers

    def collect_batched(
        self,
        hits: Sequence["HIT"],
        redundancy: int = 3,
        fatigue: "FatigueModel | None" = None,
    ) -> dict[str, list[Answer]]:
        """Batch mode over HITs: one worker answers a whole HIT in sequence.

        Each assignment gives one worker every task of the HIT, in
        presentation order. With a :class:`~repro.cost.taskdesign.
        FatigueModel`, the worker's answer at slot k degrades: with
        probability ``1 - multiplier(k)`` the answer is replaced by a
        uniform random option (model-agnostic fatigue — effective accuracy
        becomes ``multiplier * base + (1 - multiplier) / |options|``).

        Returns {task_id: [answers]} like :meth:`collect`. Cost accounting
        is identical (per-answer reward); what batching *saves* in reality
        is worker-engagement overhead, which :mod:`repro.cost.taskdesign`
        models for planning.
        """
        from repro.platform.task import HIT  # local import, avoids cycle

        if redundancy < 1:
            raise PlatformError(f"redundancy must be >= 1, got {redundancy}")
        if redundancy > len(self.pool.active_workers):
            raise NoWorkersAvailableError(
                f"redundancy {redundancy} exceeds pool of "
                f"{len(self.pool.active_workers)}"
            )
        result: dict[str, list[Answer]] = defaultdict(list)
        for hit in hits:
            if not isinstance(hit, HIT):
                raise PlatformError("collect_batched expects HIT objects")
            self.publish([t for t in hit.tasks if t.task_id not in self._tasks])
            workers = self.pool.sample(redundancy)
            for worker in workers:
                for slot, task in enumerate(hit.tasks):
                    if not task.is_open:
                        raise PlatformError(f"task {task.task_id} is not open")
                    degraded = (
                        fatigue is not None
                        and task.options
                        and self.rng.random() > fatigue.multiplier(slot)
                    )
                    self._charge(task.reward)
                    if degraded:
                        # Fatigued slip: uniform random option, bypassing
                        # the worker's answer model.
                        value = task.options[int(self.rng.integers(len(task.options)))]
                        duration = worker.latency.service_time(self.rng)
                        answer = Answer(
                            task_id=task.task_id,
                            worker_id=worker.worker_id,
                            value=value,
                            submitted_at=duration,
                            duration=duration,
                            reward_paid=task.reward,
                        )
                        worker.history.append(answer)
                        worker.earned += task.reward
                    else:
                        answer = worker.submit(task, self.rng)
                    self.answers.append(answer)
                    self._answers_by_task[task.task_id].append(answer)
                    self.stats.answers_collected += 1
                    self.stats.answers_by_worker[worker.worker_id] += 1
                    result[task.task_id].append(answer)
            for task in hit.tasks:
                if task.is_open:
                    task.complete()
        return dict(result)

    def worker_stream(self) -> Iterator[Worker]:
        """Online mode: an endless arrival stream of active workers.

        Arrival order is a random interleaving (uniform over active workers
        with no two consecutive repeats when avoidable), which is the
        standard online-assignment arrival model.
        """
        last: str | None = None
        while True:
            actives = self.pool.active_workers
            if not actives:
                raise NoWorkersAvailableError("no active workers remain")
            candidates = [w for w in actives if w.worker_id != last] or actives
            worker = candidates[int(self.rng.integers(len(candidates)))]
            last = worker.worker_id
            yield worker

    # ------------------------------------------------------------------ #
    # Latency timeline
    # ------------------------------------------------------------------ #

    def simulate_timeline(
        self,
        tasks: Sequence[Task],
        redundancy: int = 1,
        price_response: PriceResponseModel | None = None,
        horizon: float = 1e9,
        departure_probability: float = 0.0,
    ) -> TimelineResult:
        """Run a discrete-event timeline for answering *tasks*.

        Workers arrive per their Poisson rates (optionally scaled by the
        price-response model evaluated at each task's reward); each arrival
        claims the next outstanding assignment and completes it after a
        sampled service time. A task's completion time is when its last of
        *redundancy* answers lands. Returns the makespan and per-task
        completion times. Costs are charged exactly as in batch mode.

        *departure_probability* models pool attrition: after each completed
        assignment the worker leaves this timeline for good with that
        probability (they are NOT deactivated in the pool — attrition is a
        per-job phenomenon). A drained pool leaves tasks uncompleted; the
        returned ``completion_times`` simply omits them, which is the
        signal the pool-maintenance techniques react to.
        """
        if not 0.0 <= departure_probability < 1.0:
            raise PlatformError("departure_probability must be in [0, 1)")
        self.publish([t for t in tasks if t.task_id not in self._tasks])
        # Copy-major order: every task gets its first answer before any task
        # gets its second — the wave structure hedged replication relies on.
        pending: list[tuple[Task, int]] = [(t, i) for i in range(redundancy) for t in tasks]
        answered_by: dict[str, set[str]] = defaultdict(set)
        answers_needed = {t.task_id: redundancy for t in tasks}
        completion: dict[str, float] = {}
        collected: list[Answer] = []

        sim = EventSimulator(tracer=self.tracer, max_log=self.event_log_limit)
        mean_reward = float(np.mean([t.reward for t in tasks])) if tasks else 0.0
        multiplier = (
            price_response.rate_multiplier(mean_reward) if price_response is not None else 1.0
        )
        for worker in self.pool.active_workers:
            delay = worker.latency.inter_arrival(self.rng) / multiplier
            sim.schedule(delay, "arrival", worker_id=worker.worker_id)

        def handle(event, simulator) -> None:
            if event.kind != "arrival":
                return
            worker = self.pool.worker(event.payload["worker_id"])
            # Claim the first pending assignment this worker hasn't done.
            claim_index = None
            for i, (task, _copy) in enumerate(pending):
                if worker.worker_id not in answered_by[task.task_id]:
                    claim_index = i
                    break
            departed = False
            if claim_index is not None:
                task, _copy = pending.pop(claim_index)
                answered_by[task.task_id].add(worker.worker_id)
                answer = self.ask(task, worker, now=simulator.now)
                collected.append(answer)
                if departure_probability > 0.0 and self.rng.random() < departure_probability:
                    departed = True
            if pending and not departed:
                delay = worker.latency.inter_arrival(self.rng) / multiplier
                simulator.schedule(delay, "arrival", worker_id=worker.worker_id)

        with self.tracer.span(
            "timeline", sim_start=0.0, tasks=len(tasks), redundancy=redundancy
        ) as span:
            sim.run(handle, until=horizon)
            span.set_tag("events", len(sim.log))
            span.sim_end = sim.now
        # Completion = when the redundancy-th answer *arrives* (answers are
        # claimed in queue order but may land out of order).
        arrival_times: dict[str, list[float]] = defaultdict(list)
        for answer in collected:
            arrival_times[answer.task_id].append(answer.submitted_at)
        for task in tasks:
            times = sorted(arrival_times.get(task.task_id, ()))
            needed = answers_needed[task.task_id]
            if len(times) >= needed:
                completion[task.task_id] = times[needed - 1]
        makespan = max(completion.values(), default=0.0)
        return TimelineResult(makespan=makespan, answers=collected, completion_times=completion)
