"""Simulated crowdsourcing platform: tasks, HITs, events, pricing, market."""

from repro.platform.batch import (
    BatchConfig,
    BatchRecord,
    BatchRunResult,
    BatchScheduler,
)
from repro.platform.cache import (
    AnswerCache,
    CachedAnswer,
    CacheEntry,
    CacheResolution,
    signature_of,
    task_signature,
)
from repro.platform.events import Event, EventSimulator
from repro.platform.platform import PlatformStats, SimulatedPlatform, TimelineResult
from repro.platform.pricing import PriceResponseModel, PricingPolicy
from repro.platform.task import (
    HIT,
    Answer,
    Task,
    TaskState,
    TaskType,
    collect,
    compare,
    fill,
    multi_choice,
    numeric,
    rate,
    single_choice,
)

__all__ = [
    "HIT",
    "Answer",
    "AnswerCache",
    "BatchConfig",
    "BatchRecord",
    "BatchRunResult",
    "BatchScheduler",
    "CacheEntry",
    "CacheResolution",
    "CachedAnswer",
    "Event",
    "EventSimulator",
    "PlatformStats",
    "PriceResponseModel",
    "PricingPolicy",
    "SimulatedPlatform",
    "Task",
    "TaskState",
    "TaskType",
    "TimelineResult",
    "collect",
    "compare",
    "fill",
    "multi_choice",
    "numeric",
    "rate",
    "signature_of",
    "single_choice",
    "task_signature",
]
