"""Multi-tenant crowd service: many requester sessions, one platform.

The paper's task-assignment section assumes many requesters compete for
the same finite worker pool — an effect a single-job library can never
exhibit. :class:`CrowdService` wraps one shared
:class:`~repro.platform.platform.SimulatedPlatform` (and its worker
pool, batch scheduler, and answer cache) behind a tenant registry with:

* per-tenant budgets enforced atomically with the platform's global
  budget (two tenants can never jointly overspend),
* a deficit-round-robin fair-share dispatcher feeding the existing
  batch lanes (a heavy tenant cannot starve a light one),
* admission control via the existing circuit breakers,
* per-tenant labeled metrics and a ``/run`` tenant view.

Determinism contract: a single-tenant service run at a given seed is
bit-identical to the plain engine path — the dispatcher degenerates to
FIFO and adds no RNG draws of its own.
"""

from repro.service.service import CrowdService, WorkUnit
from repro.service.tenancy import (
    Tenant,
    TenantAccount,
    TenantPlatform,
    TenantScheduler,
    TenantSpec,
)

__all__ = [
    "CrowdService",
    "Tenant",
    "TenantAccount",
    "TenantPlatform",
    "TenantScheduler",
    "TenantSpec",
    "WorkUnit",
]
