"""The asyncio multi-tenant crowd service: fair-share dispatch, one platform.

:class:`CrowdService` owns a registry of tenants and a single dispatcher
thread that drains their work-unit queues with **deficit round-robin**
(DRR): each pass over the tenants (in registration order) grants every
backlogged tenant ``quantum_tasks × weight`` credit, and a queue head is
dispatched once its cost (``len(tasks) × redundancy`` assignments) is
covered. A heavy tenant therefore gets at most its weight-share of the
dispatch stream while a light tenant's unit waits a bounded number of
turns — the fairness property B10 gates in CI.

All platform access happens on the dispatcher thread, one unit at a
time, inside ``platform.charging_account(tenant.account)`` — which is
why a single-tenant service run is *bit-identical* to the plain engine
path at the same seed: units execute in FIFO order, the RNG sees the
same draw sequence, and the dispatcher itself consumes no randomness.

Sessions: :meth:`CrowdService.session` builds a
:class:`~repro.lang.interpreter.CrowdSQLSession` on the tenant's
platform façade. Synchronous callers block in :meth:`submit`;
asyncio callers use :meth:`asubmit` (futures completed via
``loop.call_soon_threadsafe``) or :meth:`aexecute`, which runs a whole
SQL script on a bounded session thread pool so hundreds of concurrent
coroutine sessions share a few dozen OS threads.
"""

import asyncio
import math
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from repro.errors import AdmissionRejectedError, ServiceError
from repro.service.tenancy import Tenant, TenantPlatform, TenantSpec

if TYPE_CHECKING:
    from repro.lang.interpreter import CrowdSQLSession
    from repro.platform.batch import BatchRunResult
    from repro.platform.platform import SimulatedPlatform
    from repro.platform.task import Task
    from repro.recovery.breakers import CircuitBreaker


class WorkUnit:
    """One crowd request queued for dispatch on behalf of a tenant."""

    __slots__ = (
        "tenant",
        "tasks",
        "redundancy",
        "complete",
        "cancel",
        "on_batch",
        "enqueued_turn",
        "result",
        "error",
        "_done",
        "_loop",
        "_future",
    )

    def __init__(
        self,
        tenant: Tenant,
        tasks: "list[Task]",
        redundancy: int,
        complete: bool,
        cancel: "Callable[[Task], str | None] | None" = None,
        on_batch: "Callable[[list[Task], BatchRunResult], None] | None" = None,
    ) -> None:
        self.tenant = tenant
        self.tasks = tasks
        self.redundancy = redundancy
        self.complete = complete
        self.cancel = cancel
        self.on_batch = on_batch
        self.enqueued_turn = 0
        self.result: Any = None
        self.error: "BaseException | None" = None
        self._done = threading.Event()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._future: "asyncio.Future | None" = None

    @property
    def cost(self) -> int:
        """DRR cost: assignment count this unit asks the platform for."""
        return max(1, len(self.tasks) * self.redundancy)

    def _resolve(self) -> None:
        self._done.set()
        if self._loop is not None and self._future is not None:
            future, error, result = self._future, self.error, self.result

            def complete_future() -> None:
                if future.cancelled():
                    return
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(result)

            self._loop.call_soon_threadsafe(complete_future)

    def finish(self, result: Any) -> None:
        """Complete the unit successfully and wake every waiter."""
        self.result = result
        self._resolve()

    def fail(self, error: BaseException) -> None:
        """Complete the unit with *error*; waiters re-raise it."""
        self.error = error
        self._resolve()

    def wait(self) -> Any:
        """Block until dispatched; return the result or re-raise the error."""
        self._done.wait()
        if self.error is not None:
            raise self.error
        return self.result


class CrowdService:
    """N requester tenants sharing one simulated platform, fairly.

    Args:
        platform: The shared platform (pool, budget, scheduler, cache).
        quantum_tasks: DRR quantum — assignment credit granted to each
            backlogged tenant per round, scaled by its weight.
        breakers: Admission-control breakers (e.g.
            :class:`~repro.recovery.breakers.BudgetBreaker`,
            :class:`~repro.recovery.breakers.DeadlineBreaker`) consulted
            before each unit dispatches; an open breaker rejects the unit
            with :class:`~repro.errors.AdmissionRejectedError`. Keep these
            separate from the scheduler's own breakers — admission guards
            the *queue*, the scheduler guards *batch boundaries*.
        max_sessions: Thread cap for :meth:`aexecute`'s session pool
            (hundreds of coroutine sessions multiplex onto this many
            OS threads).
    """

    def __init__(
        self,
        platform: "SimulatedPlatform",
        *,
        quantum_tasks: int = 8,
        breakers: "Iterable[CircuitBreaker]" = (),
        max_sessions: int = 32,
    ) -> None:
        if quantum_tasks < 1:
            raise ServiceError(f"quantum_tasks must be >= 1, got {quantum_tasks}")
        if max_sessions < 1:
            raise ServiceError(f"max_sessions must be >= 1, got {max_sessions}")
        self.platform = platform
        self.metrics = platform.metrics
        self.quantum_tasks = quantum_tasks
        self.breakers = list(breakers)
        self.max_sessions = max_sessions
        self._tenants: dict[str, Tenant] = {}
        self._order: list[str] = []  # registration order — the DRR ring
        self._rr_index = 0
        self._turn = 0  # units dispatched so far (queue-wait unit)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._thread: "threading.Thread | None" = None
        self._stopping = False
        self._session_pool: "ThreadPoolExecutor | None" = None

    # ------------------------------------------------------------------ #
    # Tenant registry
    # ------------------------------------------------------------------ #

    def register(self, spec: "TenantSpec | str") -> Tenant:
        """Add a tenant; a bare string registers an unlimited weight-1 spec."""
        if isinstance(spec, str):
            spec = TenantSpec(name=spec)
        with self._lock:
            if spec.name in self._tenants:
                raise ServiceError(f"tenant {spec.name!r} already registered")
            tenant = Tenant(spec)
            self._tenants[spec.name] = tenant
            self._order.append(spec.name)
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Look up a registered tenant; :class:`ServiceError` if unknown."""
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"unknown tenant {name!r}") from None

    @property
    def tenants(self) -> "list[Tenant]":
        return [self._tenants[name] for name in self._order]

    def session(
        self, tenant: "Tenant | str", **session_kwargs: Any
    ) -> "CrowdSQLSession":
        """A CrowdSQL session whose crowd work routes through this service.

        Keyword arguments (``database``, ``redundancy``, ``oracle``,
        ``inference``, ``pipeline``, ...) pass straight to
        :class:`~repro.lang.interpreter.CrowdSQLSession`.
        """
        from repro.lang.interpreter import CrowdSQLSession

        if isinstance(tenant, str):
            tenant = self.tenant(tenant)
        return CrowdSQLSession(
            platform=TenantPlatform(self, tenant), **session_kwargs
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "CrowdService":
        """Start the dispatcher thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stopping = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain queued units, then stop the dispatcher (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        thread.join(timeout=60.0)
        self._thread = None
        if self._session_pool is not None:
            self._session_pool.shutdown(wait=True)
            self._session_pool = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "CrowdService":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def _enqueue(self, unit: WorkUnit) -> None:
        tenant = unit.tenant
        with self._cond:
            if self._stopping or self._thread is None:
                raise ServiceError("service is not running")
            unit.enqueued_turn = self._turn
            tenant.queue.append(unit)
            self.metrics.set_gauge(
                "service.queue_depth",
                float(len(tenant.queue)),
                labels={"tenant": tenant.name},
            )
            self._cond.notify_all()

    def submit(
        self,
        tenant: "Tenant | str",
        tasks: "Sequence[Task]",
        redundancy: int = 3,
        complete: bool = True,
        *,
        cancel: "Callable[[Task], str | None] | None" = None,
        on_batch: "Callable[[list[Task], BatchRunResult], None] | None" = None,
    ) -> Any:
        """Queue one crowd request and block until the dispatcher ran it.

        Returns the underlying
        :class:`~repro.platform.batch.BatchRunResult` (or the plain
        answers dict on a schedulerless platform). Raises whatever the
        run raised — budget exhaustion, admission rejection — in the
        *calling* thread, mirroring the plain engine path.
        """
        if isinstance(tenant, str):
            tenant = self.tenant(tenant)
        unit = WorkUnit(
            tenant, list(tasks), redundancy, complete, cancel=cancel, on_batch=on_batch
        )
        self._enqueue(unit)
        return unit.wait()

    async def asubmit(
        self,
        tenant: "Tenant | str",
        tasks: "Sequence[Task]",
        redundancy: int = 3,
        complete: bool = True,
    ) -> Any:
        """Awaitable :meth:`submit` — the coroutine suspends, no thread blocks."""
        if isinstance(tenant, str):
            tenant = self.tenant(tenant)
        loop = asyncio.get_running_loop()
        unit = WorkUnit(tenant, list(tasks), redundancy, complete)
        unit._loop = loop
        unit._future = loop.create_future()
        self._enqueue(unit)
        return await unit._future

    async def aexecute(self, session: "CrowdSQLSession", sql: str) -> "list[Any]":
        """Run a SQL script for one tenant session without blocking the loop.

        Statement parsing/planning runs on a bounded thread pool; crowd
        waits block that worker thread (not the event loop), so hundreds
        of concurrent sessions need only ``max_sessions`` OS threads.
        """
        loop = asyncio.get_running_loop()
        if self._session_pool is None:
            self._session_pool = ThreadPoolExecutor(
                max_workers=self.max_sessions,
                thread_name_prefix="repro-service-session",
            )
        return await loop.run_in_executor(self._session_pool, session.execute, sql)

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #

    def _backlogged(self) -> bool:
        return any(self._tenants[name].queue for name in self._order)

    def _next_unit_locked(self) -> WorkUnit:
        """Deficit round-robin: pick the next affordable queue head.

        Classic DRR over the registration-order ring: a backlogged
        tenant's deficit grows by ``quantum × weight`` each time the
        pointer passes it; the head dispatches once covered. An idle
        tenant's deficit resets, so credit cannot be hoarded while not
        backlogged. With one tenant this degenerates to FIFO.
        """
        while True:
            tenant = self._tenants[self._order[self._rr_index]]
            if tenant.queue:
                head: WorkUnit = tenant.queue[0]
                if tenant.deficit >= head.cost:
                    tenant.deficit -= head.cost
                    tenant.queue.popleft()
                    if not tenant.queue:
                        tenant.deficit = 0.0
                    self.metrics.set_gauge(
                        "service.queue_depth",
                        float(len(tenant.queue)),
                        labels={"tenant": tenant.name},
                    )
                    return head
                tenant.deficit += self.quantum_tasks * tenant.weight
            else:
                tenant.deficit = 0.0
            self._rr_index = (self._rr_index + 1) % len(self._order)

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._backlogged():
                    self._cond.wait()
                if self._stopping and not self._backlogged():
                    return
                unit = self._next_unit_locked()
                waited = self._turn - unit.enqueued_turn
                self._turn += 1
            self._run_unit(unit, waited)

    def _admission_reason(self, tenant: Tenant) -> "str | None":
        """Why the next unit must be refused, or None to admit."""
        if tenant.account.remaining <= 0:
            return "tenant_budget"
        scheduler = self.platform.scheduler
        for breaker in self.breakers:
            if breaker.check(self.platform, scheduler) is not None:
                return breaker.name
        return None

    def _run_unit(self, unit: WorkUnit, waited: int) -> None:
        tenant = unit.tenant
        labels = {"tenant": tenant.name}
        reason = self._admission_reason(tenant)
        if reason is not None:
            tenant.units_rejected += 1
            self.metrics.inc(
                "service.units_rejected",
                labels={"tenant": tenant.name, "reason": reason},
            )
            unit.fail(AdmissionRejectedError(tenant.name, reason))
            return
        self.metrics.inc("service.units_admitted", labels=labels)
        self.metrics.inc(
            "service.tasks_dispatched", len(unit.tasks), labels=labels
        )
        self.metrics.observe("service.queue_wait", float(waited), labels=labels)
        try:
            with self.platform.charging_account(tenant.account):
                if self.platform.scheduler is not None:
                    result = self.platform.scheduler.run(
                        unit.tasks,
                        redundancy=unit.redundancy,
                        complete=unit.complete,
                        cancel=unit.cancel,
                        on_batch=unit.on_batch,
                    )
                else:
                    result = self.platform.collect(
                        unit.tasks, redundancy=unit.redundancy
                    )
        except BaseException as exc:  # surface in the submitting thread
            unit.fail(exc)
            return
        tenant.units_completed += 1
        tenant.tasks_dispatched += len(unit.tasks)
        unit.finish(result)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def run_status(self) -> "dict[str, Any]":
        """The ``/run`` tenant view: per-tenant ledgers, queues, fairness."""
        platform_budget = self.platform.budget
        return {
            "service": {
                "running": self.running,
                "tenants": len(self._order),
                "turns": self._turn,
                "quantum_tasks": self.quantum_tasks,
            },
            "platform": {
                "budget": (
                    None if math.isinf(platform_budget) else platform_budget
                ),
                "spent": self.platform.stats.cost_spent,
                "answers_collected": self.platform.stats.answers_collected,
                "tasks_published": self.platform.stats.tasks_published,
            },
            "breakers": [
                {"name": b.name, "tripped": b.tripped}
                for b in self.breakers
                if b.tripped
            ],
            "tenants": {
                name: self._tenants[name].status() for name in self._order
            },
        }
