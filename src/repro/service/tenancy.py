"""Tenant model: specs, budget accounts, and per-tenant platform views.

A tenant is one requester sharing the platform. Its
:class:`TenantAccount` is the per-tenant budget ledger the platform's
serialized ``_charge`` checks *atomically with* the global budget; its
:class:`TenantPlatform` is the façade a tenant's
:class:`~repro.lang.interpreter.CrowdSQLSession` holds — identical API
to :class:`~repro.platform.platform.SimulatedPlatform`, but every crowd
request is routed through the service's fair-share dispatcher and every
cost readback is scoped to the tenant's own ledger.
"""

import math
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import BudgetExceededError, ConfigurationError

if TYPE_CHECKING:
    from repro.platform.batch import BatchRunResult
    from repro.platform.platform import PlatformStats, SimulatedPlatform
    from repro.platform.task import Answer, Task
    from repro.service.service import CrowdService


@dataclass(frozen=True)
class TenantSpec:
    """Declared shape of one tenant.

    Attributes:
        name: Unique tenant name (metrics label, registry key).
        budget: Tenant spend ceiling in task-reward currency
            (``inf`` = bounded only by the platform budget).
        weight: Fair-share weight; a weight-2 tenant receives twice the
            dispatch quantum of a weight-1 tenant per round.
    """

    name: str
    budget: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.budget <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: budget must be > 0, got {self.budget}"
            )
        if not self.weight > 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )


class TenantAccount:
    """Per-tenant budget ledger.

    Mutated only inside the platform's serialized ``_charge`` (and
    ``cache_finish``) while this tenant's work unit is active, so
    ``check`` + ``add`` are atomic with the global budget check — the
    property that makes joint overspend impossible.
    """

    def __init__(self, name: str, budget: float = math.inf) -> None:
        self.name = name
        self.budget = budget
        self.spent = 0.0
        self.cost_saved = 0.0

    @property
    def remaining(self) -> float:
        return self.budget - self.spent

    def check(self, amount: float) -> None:
        """Raise without mutating when the ledger cannot cover *amount*."""
        if self.spent + amount > self.budget + 1e-12:
            raise BudgetExceededError(
                f"tenant {self.name!r} budget {self.budget:.4f} exhausted "
                f"(spent {self.spent:.4f}, need {amount:.4f} more)"
            )

    def add(self, amount: float) -> None:
        """Book a charge that already passed :meth:`check`."""
        self.spent += amount

    def credit_saved(self, saved: float) -> None:
        """Book cache-reuse savings (cache hits are free, never charged)."""
        self.cost_saved += saved


class _TenantStats:
    """Tenant-scoped view of :class:`PlatformStats`.

    ``cost_spent`` reads the tenant's own ledger — the executor derives
    per-statement crowd cost from before/after deltas of this attribute,
    which must not see other tenants' concurrent spend. Everything else
    delegates to the shared platform stats.
    """

    def __init__(self, stats: "PlatformStats", account: TenantAccount) -> None:
        self._stats = stats
        self._account = account

    @property
    def cost_spent(self) -> float:
        return self._account.spent

    @property
    def cache_cost_saved(self) -> float:
        return self._account.cost_saved

    def __getattr__(self, name: str) -> Any:
        return getattr(self._stats, name)


class TenantScheduler:
    """Scheduler façade: ``run`` goes through the fair-share dispatcher.

    The streaming executor drives crowd waves through
    ``platform.scheduler.run(tasks, ..., cancel=..., on_batch=...)``;
    routing that call through the service keeps the hooks intact (they
    fire on the dispatcher thread while the session thread is blocked
    inside ``run``, exactly the threading contract of the plain path).
    Everything else (``simulated_clock``, config, breakers) reads the
    real shared scheduler.
    """

    def __init__(self, service: "CrowdService", tenant: "Tenant") -> None:
        self._service = service
        self._tenant = tenant

    def run(
        self,
        tasks: "Sequence[Task]",
        redundancy: int = 3,
        complete: bool = True,
        *,
        cancel: "Callable[[Task], str | None] | None" = None,
        on_batch: "Callable[[list[Task], BatchRunResult], None] | None" = None,
    ) -> "BatchRunResult":
        """Queue one scheduler run through the service's fair-share lanes."""
        return self._service.submit(
            self._tenant,
            tasks,
            redundancy=redundancy,
            complete=complete,
            cancel=cancel,
            on_batch=on_batch,
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._service.platform.scheduler, name)


class TenantPlatform:
    """Per-tenant façade over the shared :class:`SimulatedPlatform`.

    Drop-in for the ``platform`` argument of a
    :class:`~repro.lang.interpreter.CrowdSQLSession`: crowd collection
    routes through the service dispatcher, cost/stat readbacks are
    tenant-scoped, and all read-only surface (pool, metrics, tracer,
    pricing, answer log) delegates to the shared platform.
    """

    def __init__(self, service: "CrowdService", tenant: "Tenant") -> None:
        self._service = service
        self._tenant = tenant
        self._stats = _TenantStats(service.platform.stats, tenant.account)
        self._scheduler = TenantScheduler(service, tenant)

    @property
    def tenant(self) -> "Tenant":
        return self._tenant

    @property
    def stats(self) -> _TenantStats:
        return self._stats

    @property
    def scheduler(self) -> "TenantScheduler | None":
        if self._service.platform.scheduler is None:
            return None
        return self._scheduler

    @property
    def budget(self) -> float:
        return self._tenant.account.budget

    @property
    def remaining_budget(self) -> float:
        shared = self._service.platform.remaining_budget
        return min(shared, self._tenant.account.remaining)

    def collect_batch(
        self,
        tasks: "Sequence[Task]",
        redundancy: int = 3,
        complete: bool = True,
    ) -> "dict[str, list[Answer]]":
        """Collect answers for *tasks* via the service dispatcher."""
        result = self._service.submit(
            self._tenant, tasks, redundancy=redundancy, complete=complete
        )
        if isinstance(result, dict):  # schedulerless platform: plain collect()
            return result
        return result.answers

    def collect(
        self,
        tasks: "Sequence[Task]",
        redundancy: int = 3,
    ) -> "dict[str, list[Answer]]":
        """Sequential-API alias for :meth:`collect_batch` (complete runs)."""
        return self.collect_batch(tasks, redundancy=redundancy, complete=True)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._service.platform, name)


class Tenant:
    """One registered requester: spec + ledger + dispatch queue.

    The queue and deficit are owned by the service (mutated only under
    its condition lock); the account is mutated only under the
    platform's charge lock.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.account = TenantAccount(spec.name, spec.budget)
        self.queue: deque = deque()
        self.deficit = 0.0
        self.units_completed = 0
        self.units_rejected = 0
        self.tasks_dispatched = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight(self) -> float:
        return self.spec.weight

    def status(self) -> dict[str, Any]:
        """The ``/run`` tenant view entry."""
        budget = self.account.budget
        return {
            "budget": None if math.isinf(budget) else budget,
            "spent": self.account.spent,
            "remaining": None if math.isinf(budget) else self.account.remaining,
            "cache_cost_saved": self.account.cost_saved,
            "weight": self.weight,
            "queue_depth": len(self.queue),
            "units_completed": self.units_completed,
            "units_rejected": self.units_rejected,
            "tasks_dispatched": self.tasks_dispatched,
        }
