"""crowddm: crowdsourced data management on a simulated crowd platform.

A from-scratch reproduction of the system landscape surveyed in
*Crowdsourced Data Management: Overview and Challenges* (SIGMOD 2017):
quality control (truth inference, task assignment, worker management),
cost control (pruning, deduction, sampling, task design), latency control
(rounds, statistical models, mitigation), the crowd-powered operators
(filter/join/sort/top-k/count/collect/fill/categorize), and a CrowdSQL
declarative layer — all runnable against simulated workers.

Quickstart::

    from repro import CrowdEngine, EngineConfig

    engine = CrowdEngine(EngineConfig(seed=7, redundancy=5, inference="ds"))
    result = engine.filter(photos, "Does this show a mountain?", truth_fn)
"""

from repro import deco
from repro.core import CrowdEngine, EngineConfig, JobReport, Requester
from repro.data import CNULL, Database, Schema, SchemaBuilder, Table
from repro.errors import CrowdDMError
from repro.lang import CrowdOracle, CrowdSQLSession
from repro.platform import BatchConfig, BatchScheduler, SimulatedPlatform, Task, TaskType
from repro.workers import Worker, WorkerPool

__version__ = "1.0.0"

__all__ = [
    "BatchConfig",
    "BatchScheduler",
    "CNULL",
    "CrowdDMError",
    "CrowdEngine",
    "CrowdOracle",
    "CrowdSQLSession",
    "Database",
    "EngineConfig",
    "JobReport",
    "Requester",
    "Schema",
    "SchemaBuilder",
    "SimulatedPlatform",
    "Table",
    "Task",
    "TaskType",
    "Worker",
    "WorkerPool",
    "__version__",
    "deco",
]
