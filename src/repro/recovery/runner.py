"""Checkpoint-at-batch-boundary execution and the kill-and-resume harness.

:class:`CheckpointingRunner` wraps :class:`~repro.platform.batch.
BatchScheduler` so a long crowd run survives process death: tasks are
dispatched chunk by chunk (one scheduler batch per chunk), and after
every ``interval`` chunks the full run state is checkpointed to disk.
``kill_after`` raises :class:`~repro.errors.SimulatedCrash` at a chunk
boundary — the harness equivalent of ``kill -9`` — after which a *fresh*
runner (in a fresh process, or over a freshly built platform) continues
from the checkpoint via ``resume=True``.

Determinism contract: a killed-and-resumed run produces answers, failure
records, and platform stats **bit-identical** to an uninterrupted run of
the same configuration and seed. This works because every random decision
downstream of a chunk boundary depends only on state the checkpoint
captures (platform/pool RNG states, the scheduler's stream counter and
clock, pool membership) — see ``tests/test_recovery.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import CheckpointError, SimulatedCrash
from repro.recovery.checkpoint import Checkpoint
from repro.recovery.degrade import DegradedResult, FailureInfo, FailurePolicy

if TYPE_CHECKING:
    from repro.platform.platform import SimulatedPlatform
    from repro.platform.task import Answer, Task
    from repro.quality.truth.base import TruthInference


@dataclass
class RunOutcome:
    """What a (possibly resumed) checkpointed run produced."""

    answers: dict[str, "list[Answer]"] = field(default_factory=dict)
    failures: dict[str, FailureInfo] = field(default_factory=dict)
    chunks_done: int = 0
    resumed: bool = False

    def degraded_result(
        self,
        tasks: "Sequence[Task]",
        redundancy: int,
        inference: "TruthInference | None" = None,
    ) -> DegradedResult:
        """Coverage-accounted view of this outcome (see :class:`DegradedResult`)."""
        result = None
        if inference is not None and any(self.answers.values()):
            evidence = {t: a for t, a in self.answers.items() if a}
            result = inference.infer(evidence)
        return DegradedResult.from_answers(
            tasks, self.answers, self.failures, redundancy, inference=result
        )


class CheckpointingRunner:
    """Run tasks through the batch scheduler, checkpointing at chunk boundaries.

    Args:
        platform: Platform with an attached :class:`BatchScheduler`.
        checkpoint_dir: Directory snapshots are written to (one snapshot,
            overwritten atomically as the run advances).
        redundancy: Answers per task.
        interval: Checkpoint every this-many chunks (>= 1).
        inference: Optional truth-inference instance whose EM state is
            included in snapshots and warm-started on resume.
    """

    def __init__(
        self,
        platform: "SimulatedPlatform",
        checkpoint_dir: "Path | str",
        redundancy: int = 3,
        interval: int = 1,
        inference: "TruthInference | None" = None,
    ):
        if platform.scheduler is None:
            raise CheckpointError("CheckpointingRunner requires an attached scheduler")
        if interval < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {interval}")
        self.platform = platform
        self.checkpoint_dir = Path(checkpoint_dir)
        self.redundancy = redundancy
        self.interval = interval
        self.inference = inference

    def run(
        self,
        tasks: "Sequence[Task]",
        resume: bool = False,
        kill_after: int | None = None,
    ) -> RunOutcome:
        """Dispatch every task, checkpointing as configured.

        With ``resume=True``, the checkpoint in ``checkpoint_dir`` is
        restored first and already-completed chunks are skipped; *tasks*
        must be the same (deterministically regenerated) task list with
        the same explicit ids as the original run. ``kill_after=k``
        raises :class:`SimulatedCrash` once *k* chunks have completed
        (after their checkpoint is written).
        """
        scheduler = self.platform.scheduler
        size = scheduler.config.batch_size
        chunks = [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]
        outcome = RunOutcome(resumed=resume)
        start = 0
        if resume:
            start = self._restore(tasks, outcome)
        for index in range(start, len(chunks)):
            chunk = chunks[index]
            result = scheduler.run(chunk, redundancy=self.redundancy)
            outcome.answers.update(result.answers)
            outcome.failures.update(result.failures)
            outcome.chunks_done = index + 1
            last = index == len(chunks) - 1
            if outcome.chunks_done % self.interval == 0 or last:
                self._save(outcome, total_chunks=len(chunks))
            if kill_after is not None and outcome.chunks_done >= kill_after and not last:
                raise SimulatedCrash(
                    f"simulated kill after chunk {outcome.chunks_done}/{len(chunks)}"
                )
        return outcome

    def _save(self, outcome: RunOutcome, total_chunks: int) -> None:
        extra = {
            "chunks_done": outcome.chunks_done,
            "total_chunks": total_chunks,
            "redundancy": self.redundancy,
            "failures": {
                task_id: {
                    "reason": info.reason,
                    "attempts": info.attempts,
                    "outcomes": list(info.outcomes),
                }
                for task_id, info in outcome.failures.items()
            },
        }
        Checkpoint.capture(
            self.platform,
            scheduler=self.platform.scheduler,
            inference=self.inference,
            extra=extra,
        ).save(self.checkpoint_dir)

    def _restore(self, tasks: "Sequence[Task]", outcome: RunOutcome) -> int:
        checkpoint = Checkpoint.load(self.checkpoint_dir)
        checkpoint.restore(
            self.platform,
            scheduler=self.platform.scheduler,
            inference=self.inference,
        )
        extra = checkpoint.extra
        if extra.get("redundancy", self.redundancy) != self.redundancy:
            raise CheckpointError(
                f"checkpoint was taken at redundancy {extra.get('redundancy')}, "
                f"runner configured with {self.redundancy}"
            )
        # Answers for completed chunks come back from the restored log;
        # completed tasks keep their full per-task answer lists.
        chunks_done = int(extra.get("chunks_done", 0))
        size = self.platform.scheduler.config.batch_size
        for task in tasks[: chunks_done * size]:
            outcome.answers[task.task_id] = self.platform.answers_for(task.task_id)
        for task_id, info in extra.get("failures", {}).items():
            outcome.failures[task_id] = FailureInfo(
                task_id,
                reason=info["reason"],
                attempts=info.get("attempts", 0),
                outcomes=list(info.get("outcomes", [])),
            )
        policy = FailurePolicy.parse(self.platform.scheduler.config.failure_policy)
        if policy is FailurePolicy.SKIP:
            for task_id in outcome.failures:
                outcome.answers.pop(task_id, None)
        outcome.chunks_done = chunks_done
        return chunks_done
