"""Recovery machinery: graceful degradation and checkpoint/resume.

* :mod:`repro.recovery.degrade` — failure policies, coverage accounting,
  and :class:`DegradedResult` (partial answers with explicit uncertainty).
* :mod:`repro.recovery.breakers` — budget/deadline circuit breakers
  consulted at batch boundaries.
* :mod:`repro.recovery.checkpoint` — snapshot/restore of engine,
  platform, scheduler, and EM state.
* :mod:`repro.recovery.runner` — checkpoint-at-batch-boundary runner and
  the kill-and-resume harness.
"""

from repro.recovery.breakers import (
    AdaptiveDeadlineBreaker,
    BudgetBreaker,
    CircuitBreaker,
    DeadlineBreaker,
)
from repro.recovery.checkpoint import Checkpoint
from repro.recovery.degrade import (
    CoverageReport,
    DegradedResult,
    FailureInfo,
    FailurePolicy,
)
from repro.recovery.runner import CheckpointingRunner, RunOutcome

__all__ = [
    "AdaptiveDeadlineBreaker",
    "BudgetBreaker",
    "Checkpoint",
    "CheckpointingRunner",
    "CircuitBreaker",
    "CoverageReport",
    "DeadlineBreaker",
    "DegradedResult",
    "FailureInfo",
    "FailurePolicy",
    "RunOutcome",
]
