"""Graceful degradation: partial results with explicit uncertainty.

"Getting It All from the Crowd" (Trushkowsky et al.) argues that a crowd
query which cannot finish should say *how much* it got and *how sure* it
is, not throw everything away. This module is that contract:

* :class:`FailurePolicy` — what a scheduler does when an assignment
  exhausts its retries or a circuit breaker opens: ``fail`` raises (the
  historical behaviour), ``skip`` drops the task silently from the
  answers, ``degrade`` keeps every partial answer and reports coverage.
* :class:`FailureInfo` — structured record of one task's failure.
* :class:`CoverageReport` — accounting over a degraded run; its
  :meth:`~CoverageReport.validate` is the invariant the chaos harness
  asserts (completed + partial + failed == requested, answers add up).
* :class:`DegradedResult` — answers + failures + per-tuple confidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.platform.task import Answer, Task

if TYPE_CHECKING:
    from repro.quality.truth.base import InferenceResult


class FailurePolicy(enum.Enum):
    """What a batch run does with tasks that cannot be completed."""

    FAIL = "fail"        # raise (historical behaviour)
    SKIP = "skip"        # drop the task's partial answers, keep going
    DEGRADE = "degrade"  # keep partial answers, report coverage

    @classmethod
    def parse(cls, value: "str | FailurePolicy") -> "FailurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ConfigurationError(
                f"unknown failure policy {value!r}; available: {options}"
            ) from None


@dataclass
class FailureInfo:
    """Why one task could not be (fully) completed."""

    task_id: str
    reason: str                       # retries_exhausted | budget_exhausted |
                                      # no_workers | breaker:budget | breaker:deadline
    attempts: int = 0
    outcomes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        detail = f" after {self.attempts} attempt(s)" if self.attempts else ""
        history = f" [{', '.join(self.outcomes)}]" if self.outcomes else ""
        return f"task {self.task_id!r}: {self.reason}{detail}{history}"


@dataclass
class CoverageReport:
    """How much of a degraded run actually landed."""

    requested: int            # tasks asked for
    completed: int            # tasks with >= redundancy answers
    partial: int              # tasks with some but < redundancy answers
    failed: int               # tasks with zero answers
    answers_expected: int     # requested * redundancy
    answers_collected: int    # answers actually in the result

    @property
    def coverage(self) -> float:
        """Fraction of expected answers that landed, in [0, 1]."""
        if self.answers_expected <= 0:
            return 1.0
        return min(1.0, self.answers_collected / self.answers_expected)

    @property
    def complete(self) -> bool:
        return self.partial == 0 and self.failed == 0

    def validate(self) -> None:
        """Raise ``AssertionError`` unless the accounting is coherent."""
        assert self.requested >= 0, f"negative requested: {self.requested}"
        assert self.completed + self.partial + self.failed == self.requested, (
            f"coverage split {self.completed}+{self.partial}+{self.failed} "
            f"!= requested {self.requested}"
        )
        assert 0 <= self.answers_collected, "negative answers_collected"
        assert 0.0 <= self.coverage <= 1.0, f"coverage out of range: {self.coverage}"

    def summary(self) -> str:
        """One-line human-readable coverage statement."""
        return (
            f"{self.completed}/{self.requested} tasks complete "
            f"({self.partial} partial, {self.failed} failed), "
            f"answer coverage {self.coverage:.0%}"
        )


@dataclass
class DegradedResult:
    """A crowd result that survived faults: answers + explicit uncertainty.

    Attributes:
        answers: task id -> answers that did land (possibly short or empty).
        failures: task id -> why it fell short (absent for complete tasks).
        confidences: task id -> confidence in the aggregated value. From
            truth inference when available, else the answer-coverage ratio
            for the task (0.0 for tasks with nothing).
        truths: task id -> aggregated value, when inference ran.
        coverage: the run's :class:`CoverageReport`.
    """

    answers: dict[str, list[Answer]]
    failures: dict[str, FailureInfo]
    confidences: dict[str, float]
    coverage: CoverageReport
    truths: dict[str, Any] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return not self.coverage.complete

    @classmethod
    def from_answers(
        cls,
        tasks: Sequence[Task],
        answers: Mapping[str, Sequence[Answer]],
        failures: Mapping[str, FailureInfo],
        redundancy: int,
        inference: "InferenceResult | None" = None,
    ) -> "DegradedResult":
        """Build the result + coverage accounting from a (partial) run."""
        completed = partial = failed = 0
        collected = 0
        confidences: dict[str, float] = {}
        truths: dict[str, Any] = {}
        for task in tasks:
            got = list(answers.get(task.task_id, ()))
            collected += len(got)
            if not got:
                failed += 1
            elif len(got) >= redundancy:
                completed += 1
            else:
                partial += 1
            if inference is not None and task.task_id in inference.truths:
                truths[task.task_id] = inference.truths[task.task_id]
                confidences[task.task_id] = inference.confidences.get(
                    task.task_id, len(got) / redundancy if redundancy else 0.0
                )
            else:
                confidences[task.task_id] = (
                    min(1.0, len(got) / redundancy) if redundancy else 0.0
                )
        report = CoverageReport(
            requested=len(tasks),
            completed=completed,
            partial=partial,
            failed=failed,
            answers_expected=len(tasks) * redundancy,
            answers_collected=collected,
        )
        report.validate()
        return cls(
            answers={t.task_id: list(answers.get(t.task_id, ())) for t in tasks},
            failures=dict(failures),
            confidences=confidences,
            coverage=report,
            truths=truths,
        )
