"""Circuit breakers: stop buying answers before the run hits a wall.

A breaker is consulted at every batch boundary (the only place a crowd
run can cheaply stop). When one opens, the scheduler does not dispatch
further batches; under a non-``fail`` policy the remaining tasks become
explicit failures in the :class:`~repro.recovery.degrade.CoverageReport`
instead of an exception deep inside an operator.

Breakers are deliberately simple threshold monitors — the value of the
pattern is *where* they sit (between batches, before money is spent), not
sophistication of the trip condition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.platform.batch import BatchScheduler
    from repro.platform.platform import SimulatedPlatform


class CircuitBreaker:
    """Base: check() returns a trip reason string, or None to proceed."""

    name = "breaker"

    def __init__(self) -> None:
        self.tripped: str | None = None

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        """Trip reason when the next batch must not be dispatched."""
        raise NotImplementedError

    def reset(self) -> None:
        """Close the breaker again (e.g. after a budget top-up)."""
        self.tripped = None


class BudgetBreaker(CircuitBreaker):
    """Open when remaining budget sinks to *reserve* (absolute currency).

    Keeping a reserve matters because a batch is paid as a unit: tripping
    at zero would already have overdrafted mid-batch.
    """

    name = "breaker:budget"

    def __init__(self, reserve: float):
        super().__init__()
        if reserve < 0:
            raise ConfigurationError(f"budget reserve must be >= 0, got {reserve}")
        self.reserve = reserve

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        remaining = platform.remaining_budget
        if remaining <= self.reserve:
            self.tripped = (
                f"remaining budget {remaining:.4f} <= reserve {self.reserve:.4f}"
            )
            return self.tripped
        return None


class DeadlineBreaker(CircuitBreaker):
    """Open when the scheduler's simulated clock passes *deadline* seconds."""

    name = "breaker:deadline"

    def __init__(self, deadline: float):
        super().__init__()
        if deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline}")
        self.deadline = deadline

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        if scheduler.simulated_clock >= self.deadline:
            self.tripped = (
                f"simulated clock {scheduler.simulated_clock:.1f}s "
                f">= deadline {self.deadline:.1f}s"
            )
            return self.tripped
        return None
