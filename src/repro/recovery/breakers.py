"""Circuit breakers: stop buying answers before the run hits a wall.

A breaker is consulted at every batch boundary (the only place a crowd
run can cheaply stop). When one opens, the scheduler does not dispatch
further batches; under a non-``fail`` policy the remaining tasks become
explicit failures in the :class:`~repro.recovery.degrade.CoverageReport`
instead of an exception deep inside an operator.

Breakers are deliberately simple threshold monitors — the value of the
pattern is *where* they sit (between batches, before money is spent), not
sophistication of the trip condition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.platform.batch import BatchScheduler
    from repro.platform.platform import SimulatedPlatform


class CircuitBreaker:
    """Base: check() returns a trip reason string, or None to proceed."""

    name = "breaker"

    def __init__(self) -> None:
        self.tripped: str | None = None

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        """Trip reason when the next batch must not be dispatched."""
        raise NotImplementedError

    def escalate(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        """Advisory hook consulted before every batch, under every policy.

        Adaptive breakers use it to apply pressure (hedge harder, shrink
        redundancy) *before* the trip condition is reached. Returns the
        name of a newly entered escalation stage, or None when nothing
        changed. The default is a no-op so plain threshold breakers keep
        their exact legacy behaviour.
        """
        return None

    def reset(self) -> None:
        """Close the breaker again (e.g. after a budget top-up)."""
        self.tripped = None


class BudgetBreaker(CircuitBreaker):
    """Open when remaining budget sinks to *reserve* (absolute currency).

    Keeping a reserve matters because a batch is paid as a unit: tripping
    at zero would already have overdrafted mid-batch.
    """

    name = "breaker:budget"

    def __init__(self, reserve: float):
        super().__init__()
        if reserve < 0:
            raise ConfigurationError(f"budget reserve must be >= 0, got {reserve}")
        self.reserve = reserve

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        remaining = platform.remaining_budget
        if remaining <= self.reserve:
            self.tripped = (
                f"remaining budget {remaining:.4f} <= reserve {self.reserve:.4f}"
            )
            return self.tripped
        return None


class DeadlineBreaker(CircuitBreaker):
    """Open when the scheduler's simulated clock passes *deadline* seconds."""

    name = "breaker:deadline"

    def __init__(self, deadline: float):
        super().__init__()
        if deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline}")
        self.deadline = deadline

    def check(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        if scheduler.simulated_clock >= self.deadline:
            self.tripped = (
                f"simulated clock {scheduler.simulated_clock:.1f}s "
                f">= deadline {self.deadline:.1f}s"
            )
            return self.tripped
        return None


class AdaptiveDeadlineBreaker(DeadlineBreaker):
    """A deadline breaker that escalates instead of just blowing through.

    As the simulated clock eats into the deadline, the scheduler is pushed
    up the recovery ladder *before* the trip:

    * past ``hedge_at`` of the deadline — hedge harder: hedging is forced
      on (even when the config left it off) and the straggler-detection
      percentile drops to ``pressure_percentile``;
    * past ``shrink_at`` — additionally shrink redundancy: subsequent
      batches gather ``ceil(redundancy / 2)`` answers per task;
    * at the deadline itself — trip exactly like :class:`DeadlineBreaker`,
      which under ``degrade`` yields a
      :class:`~repro.recovery.degrade.CoverageReport` for the remainder.

    The stage is a pure function of ``simulated_clock / deadline`` and is
    re-derived (and re-applied, idempotently) every batch, so a resumed
    run lands in the same stage without any breaker state in the
    checkpoint; the last *announced* stage lives on the scheduler, which
    the checkpoint does carry.
    """

    name = "breaker:deadline"

    def __init__(
        self,
        deadline: float,
        hedge_at: float = 0.5,
        shrink_at: float = 0.8,
        pressure_percentile: float = 0.75,
    ):
        super().__init__(deadline)
        if not 0.0 < hedge_at <= shrink_at < 1.0:
            raise ConfigurationError(
                f"need 0 < hedge_at <= shrink_at < 1, got {hedge_at}/{shrink_at}"
            )
        if not 0.0 < pressure_percentile < 1.0:
            raise ConfigurationError(
                f"pressure_percentile must be in (0, 1), got {pressure_percentile}"
            )
        self.hedge_at = hedge_at
        self.shrink_at = shrink_at
        self.pressure_percentile = pressure_percentile

    def escalate(
        self, platform: "SimulatedPlatform", scheduler: "BatchScheduler"
    ) -> str | None:
        used = scheduler.simulated_clock / self.deadline
        if used >= self.shrink_at:
            stage = "shrink"
        elif used >= self.hedge_at:
            stage = "hedge"
        else:
            stage = "normal"
        scheduler.apply_deadline_pressure(
            hedge=stage != "normal",
            shrink=stage == "shrink",
            percentile=self.pressure_percentile,
        )
        # The clock is monotonic, so stages only ever advance; announcing
        # via scheduler state keeps resumed runs from re-announcing.
        if stage != scheduler._deadline_stage:
            scheduler._deadline_stage = stage
            return stage
        return None
