"""Checkpoint/resume: JSON snapshots of the live crowd-run state.

A checkpoint captures everything a fresh process needs to continue a run
bit-identically: platform bookkeeping (budget, answer log, published
tasks, stats counters), the worker pool (membership, activity, earnings,
and both RNG states), and the batch scheduler's simulated clock and
RNG-stream counter. Truth-inference EM state rides along via the
:meth:`~repro.quality.truth.base.TruthInference.export_state` hook.

Design constraints that shaped the format:

* **Everything is JSON.** numpy's PCG64 state is a dict of plain Python
  ints, so RNG streams round-trip without pickle.
* **Worker identity is remapped by pool index.** Worker ids come from a
  process-global counter, so a resumed process reconstructs the same pool
  (same config, same seed) under different default ids; restore simply
  overwrites each worker's id with the snapshotted one, index by index.
  Churn joiners (present in the snapshot beyond the reconstructed pool)
  are rebuilt from their serialized model.
* **Answer values go through a typed codec** (tuples, frozensets, dicts
  with non-string keys survive the round trip); genuinely opaque Python
  objects raise :class:`~repro.errors.CheckpointError` instead of being
  silently mangled.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.data.schema import CNULL, is_cnull
from repro.errors import CheckpointError
from repro.platform.platform import _STAT_METRICS
from repro.platform.task import Answer, Task, TaskState, TaskType
from repro.workers.models import (
    AnswerModel,
    ComparisonNoiseModel,
    GladModel,
    OneCoinModel,
    SpammerModel,
)
from repro.workers.worker import LatencyModel, Worker

if TYPE_CHECKING:
    from repro.platform.batch import BatchScheduler
    from repro.platform.platform import SimulatedPlatform
    from repro.quality.truth.base import TruthInference
    from repro.workers.pool import WorkerPool

FORMAT_VERSION = 1

# Stats counters that are *real* wall-clock measurements: restored for
# continuity of reporting but never part of determinism comparisons.
WALL_CLOCK_STATS = ("batch_wall_clock",)


# ---------------------------------------------------------------------- #
# Value codec
# ---------------------------------------------------------------------- #

def encode_value(value: Any) -> Any:
    """Encode one answer/payload value into a JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if is_cnull(value):
        return {"__kind__": "cnull"}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    # Defensive: columnar cell reads return plain Python scalars, but guard
    # against numpy bool_/str_ leaking in from user payloads built off arrays.
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.str_):
        return str(value)
    if isinstance(value, tuple):
        return {"__kind__": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__kind__": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        kind = "frozenset" if isinstance(value, frozenset) else "set"
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"__kind__": kind, "items": items}
    if isinstance(value, dict):
        return {
            "__kind__": "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise CheckpointError(
        f"cannot checkpoint value of type {type(value).__name__}: {value!r}"
    )


def decode_value(data: Any) -> Any:
    """Invert :func:`encode_value`."""
    if not isinstance(data, dict):
        return data
    kind = data.get("__kind__")
    items = data.get("items", [])
    if kind == "cnull":
        return CNULL
    if kind == "tuple":
        return tuple(decode_value(v) for v in items)
    if kind == "list":
        return [decode_value(v) for v in items]
    if kind == "set":
        return {decode_value(v) for v in items}
    if kind == "frozenset":
        return frozenset(decode_value(v) for v in items)
    if kind == "dict":
        return {decode_value(k): decode_value(v) for k, v in items}
    raise CheckpointError(f"unknown encoded value kind {kind!r}")


# ---------------------------------------------------------------------- #
# RNG state
# ---------------------------------------------------------------------- #

def snapshot_rng(rng: np.random.Generator) -> dict:
    """The generator's bit-generator state (plain ints, JSON-safe)."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    """Rewind a generator to a snapshotted state."""
    try:
        rng.bit_generator.state = state
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"cannot restore RNG state: {exc}") from exc


# ---------------------------------------------------------------------- #
# Worker / pool state
# ---------------------------------------------------------------------- #

def _encode_model(model: AnswerModel) -> dict:
    if isinstance(model, OneCoinModel):
        return {"type": "one_coin", "accuracy": model.accuracy}
    if isinstance(model, SpammerModel):
        return {"type": "spammer"}
    if isinstance(model, GladModel):
        return {"type": "glad", "ability": model.ability}
    if isinstance(model, ComparisonNoiseModel):
        return {
            "type": "comparison",
            "sharpness": model.sharpness,
            "fallback_accuracy": model.fallback_accuracy,
            "rating_noise": model.rating_noise,
        }
    # Pool restore only *instantiates* models for workers beyond the
    # reconstructed pool (churn joiners, always one-coin); everything else
    # keeps its live model object, so an opaque marker is enough here.
    return {"type": "opaque", "repr": repr(model)}


def _decode_model(data: dict) -> AnswerModel:
    kind = data.get("type")
    if kind == "one_coin":
        return OneCoinModel(data["accuracy"])
    if kind == "spammer":
        return SpammerModel()
    if kind == "glad":
        return GladModel(data["ability"])
    if kind == "comparison":
        return ComparisonNoiseModel(
            sharpness=data["sharpness"],
            fallback_accuracy=data["fallback_accuracy"],
            rating_noise=data["rating_noise"],
        )
    raise CheckpointError(f"cannot reconstruct worker model {data.get('repr', kind)!r}")


def snapshot_pool(pool: "WorkerPool") -> dict:
    """Serialize pool membership, per-worker scalars, and the pool RNG."""
    return {
        "rng": snapshot_rng(pool.rng),
        "workers": [
            {
                "worker_id": w.worker_id,
                "active": w.active,
                "earned": w.earned,
                "model": _encode_model(w.model),
                "latency": {
                    "mean_seconds": w.latency.mean_seconds,
                    "sigma": w.latency.sigma,
                    "arrival_rate": w.latency.arrival_rate,
                },
            }
            for w in pool.workers
        ],
    }


def restore_pool(pool: "WorkerPool", state: dict) -> None:
    """Rebuild a snapshotted pool on top of a freshly constructed one.

    The first ``len(pool)`` snapshot entries map onto the existing workers
    in order (same config + seed means same models; only the process-global
    id counter differs, so ids are overwritten). Entries beyond that are
    churn joiners and are reconstructed from their serialized models.
    Worker answer histories are rebuilt by :func:`restore_platform` from
    the answer log.
    """
    snaps = state["workers"]
    live = pool._workers
    if len(snaps) < len(live):
        raise CheckpointError(
            f"checkpoint has {len(snaps)} workers but the live pool has {len(live)}"
        )
    for worker, snap in zip(live, snaps):
        worker.worker_id = snap["worker_id"]
        worker.active = snap["active"]
        worker.earned = snap["earned"]
        worker.history = []
    for snap in snaps[len(live):]:
        worker = Worker(
            model=_decode_model(snap["model"]),
            latency=LatencyModel(**snap["latency"]),
            worker_id=snap["worker_id"],
        )
        worker.active = snap["active"]
        worker.earned = snap["earned"]
        live.append(worker)
    pool._by_id = {w.worker_id: w for w in live}
    if len(pool._by_id) != len(live):
        raise CheckpointError("duplicate worker ids after pool restore")
    restore_rng(pool.rng, state["rng"])


# ---------------------------------------------------------------------- #
# Task / answer / platform state
# ---------------------------------------------------------------------- #

def _snapshot_task(task: Task) -> dict:
    return {
        "task_id": task.task_id,
        "task_type": task.task_type.value,
        "question": task.question,
        "options": [encode_value(o) for o in task.options],
        "payload": encode_value(task.payload),
        "truth": encode_value(task.truth),
        "difficulty": task.difficulty,
        "reward": task.reward,
        "is_gold": task.is_gold,
        "state": task.state.value,
    }


def _restore_task(data: dict) -> Task:
    task = Task(
        TaskType(data["task_type"]),
        question=data["question"],
        options=tuple(decode_value(o) for o in data["options"]),
        payload=decode_value(data["payload"]),
        truth=decode_value(data["truth"]),
        difficulty=data["difficulty"],
        reward=data["reward"],
        is_gold=data["is_gold"],
        task_id=data["task_id"],
    )
    task.state = TaskState(data["state"])
    return task


def _snapshot_answer(answer: Answer) -> dict:
    return {
        "task_id": answer.task_id,
        "worker_id": answer.worker_id,
        "value": encode_value(answer.value),
        "submitted_at": answer.submitted_at,
        "duration": answer.duration,
        "reward_paid": answer.reward_paid,
    }


def _restore_answer(data: dict) -> Answer:
    return Answer(
        task_id=data["task_id"],
        worker_id=data["worker_id"],
        value=decode_value(data["value"]),
        submitted_at=data["submitted_at"],
        duration=data["duration"],
        reward_paid=data["reward_paid"],
    )


def snapshot_platform(platform: "SimulatedPlatform") -> dict:
    """Serialize budget, RNG, answer log, published tasks, and stats."""
    stats = platform.stats
    return {
        "budget": platform.budget,
        "rng": snapshot_rng(platform.rng),
        "answers": [_snapshot_answer(a) for a in platform.answers],
        "tasks": [_snapshot_task(t) for t in platform._tasks.values()],
        "stats": {
            "counters": {attr: getattr(stats, attr) for attr in _STAT_METRICS},
            "answers_by_worker": dict(stats.answers_by_worker),
        },
    }


def restore_platform(platform: "SimulatedPlatform", state: dict) -> None:
    """Rebuild platform bookkeeping; the pool must already be restored.

    ``PlatformStats._folded_batches`` is deliberately *not* persisted:
    batch ids come from a process-global counter, so ids from the dead
    process would collide with (and wrongly suppress) this process's
    folds.
    """
    platform.budget = state["budget"]
    restore_rng(platform.rng, state["rng"])
    platform._tasks = {}
    for task_data in state["tasks"]:
        task = _restore_task(task_data)
        platform._tasks[task.task_id] = task
    platform.answers = []
    platform._answers_by_task = defaultdict(list)
    for answer_data in state["answers"]:
        answer = _restore_answer(answer_data)
        platform.answers.append(answer)
        platform._answers_by_task[answer.task_id].append(answer)
        try:
            platform.pool.worker(answer.worker_id).history.append(answer)
        except Exception as exc:
            raise CheckpointError(
                f"answer log references unknown worker {answer.worker_id!r}"
            ) from exc
    stats = platform.stats
    for attr, value in state["stats"]["counters"].items():
        if attr in _STAT_METRICS:
            setattr(stats, attr, value)
    stats.answers_by_worker.clear()
    stats.answers_by_worker.update(state["stats"]["answers_by_worker"])


def snapshot_scheduler(scheduler: "BatchScheduler") -> dict:
    """Serialize the scheduler's simulated clock and stream/batch counters.

    When hedging is live, the per-task-type observation windows ride along
    so a resumed run re-fits the exact same completion models (and hence
    makes the exact same hedge decisions). Deadline pressure itself is
    *not* persisted — it is a pure function of the restored clock and is
    re-derived on the first post-resume batch.
    """
    state = {
        "clock": scheduler._clock,
        "streams": scheduler._streams,
        "batches_run": scheduler.batches_run,
        "deadline_stage": scheduler._deadline_stage,
    }
    if scheduler.hedge_state is not None:
        state["hedge"] = scheduler.hedge_state.export_state()
    return state


def restore_scheduler(scheduler: "BatchScheduler", state: dict) -> None:
    """Rewind a scheduler's clock, stream counter, and lifetime batch count."""
    scheduler._clock = state["clock"]
    scheduler._streams = state["streams"]
    scheduler.batches_run = state["batches_run"]
    scheduler._deadline_stage = state.get("deadline_stage", "normal")
    hedge = state.get("hedge")
    if hedge is not None:
        if scheduler.hedge_state is None:
            from repro.platform.batch import HedgeState

            scheduler.hedge_state = HedgeState(
                percentile=scheduler.config.hedge_percentile,
                min_samples=scheduler.config.hedge_min_samples,
            )
        scheduler.hedge_state.restore_state(hedge)


# ---------------------------------------------------------------------- #
# The on-disk checkpoint
# ---------------------------------------------------------------------- #

class Checkpoint:
    """One snapshot: capture from live objects, save/load a directory."""

    FILENAME = "checkpoint.json"

    def __init__(self, state: dict):
        self.state = state

    @classmethod
    def capture(
        cls,
        platform: "SimulatedPlatform",
        scheduler: "BatchScheduler | None" = None,
        inference: "TruthInference | None" = None,
        extra: dict | None = None,
    ) -> "Checkpoint":
        """Snapshot the live run. *extra* carries caller progress markers
        (chunk index, statement index) and must be JSON-serializable."""
        state: dict[str, Any] = {
            "version": FORMAT_VERSION,
            "pool": snapshot_pool(platform.pool),
            "platform": snapshot_platform(platform),
        }
        if platform.cache is not None:
            state["cache"] = platform.cache.export_entries()
        scheduler = scheduler if scheduler is not None else platform.scheduler
        if scheduler is not None:
            state["scheduler"] = snapshot_scheduler(scheduler)
        if inference is not None:
            em_state = inference.export_state()
            if em_state:
                state["inference"] = em_state
        if extra:
            state["extra"] = extra
        return cls(state)

    @property
    def extra(self) -> dict:
        """Caller progress markers stored at capture time."""
        return self.state.get("extra", {})

    def save(self, directory: "Path | str") -> Path:
        """Write the snapshot atomically (write temp, rename) into *directory*."""
        path = Path(directory)
        try:
            path.mkdir(parents=True, exist_ok=True)
            target = path / self.FILENAME
            tmp = path / (self.FILENAME + ".tmp")
            tmp.write_text(json.dumps(self.state, indent=1), encoding="utf-8")
            tmp.replace(target)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint to {path}: {exc}") from exc
        return target

    @classmethod
    def load(cls, directory: "Path | str") -> "Checkpoint":
        """Read a snapshot previously written by :meth:`save`."""
        path = Path(directory) / cls.FILENAME
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            state = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
        version = state.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {version!r} unsupported (expected {FORMAT_VERSION})"
            )
        return cls(state)

    def restore(
        self,
        platform: "SimulatedPlatform",
        scheduler: "BatchScheduler | None" = None,
        inference: "TruthInference | None" = None,
    ) -> None:
        """Apply the snapshot to freshly constructed live objects.

        The caller must have built *platform* (and its pool/scheduler) with
        the same configuration and seeds as the checkpointed run; restore
        then rewinds RNG streams, bookkeeping, and counters on top.
        """
        restore_pool(platform.pool, self.state["pool"])
        restore_platform(platform, self.state["platform"])
        if platform.cache is not None and "cache" in self.state:
            platform.cache.import_entries(self.state["cache"])
        scheduler = scheduler if scheduler is not None else platform.scheduler
        if scheduler is not None and "scheduler" in self.state:
            restore_scheduler(scheduler, self.state["scheduler"])
        if inference is not None and "inference" in self.state:
            inference.warm_start(self.state["inference"])
