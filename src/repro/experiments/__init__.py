"""Experiment harness: datasets, metrics, runners, report rendering."""

from repro.experiments.calibration import (
    ReliabilityBin,
    expected_calibration_error,
    overconfidence,
    reliability_bins,
)
from repro.experiments.datasets import (
    CountingDataset,
    EntityResolutionDataset,
    FillDataset,
    LabelingDataset,
    RankingDataset,
    collection_universe,
    counting_dataset,
    er_dataset,
    fill_dataset,
    labeling_dataset,
    ranking_dataset,
)
from repro.experiments.harness import (
    ExperimentResult,
    PoolSpec,
    TrialResult,
    make_platform,
    run_trials,
)
from repro.experiments.metrics import (
    accuracy,
    kendall_tau,
    mean,
    precision_at_k,
    precision_recall_f1,
    relative_error,
)
from repro.experiments.report import format_series, format_table, print_series, print_table

__all__ = [
    "CountingDataset",
    "EntityResolutionDataset",
    "ExperimentResult",
    "FillDataset",
    "LabelingDataset",
    "PoolSpec",
    "ReliabilityBin",
    "RankingDataset",
    "TrialResult",
    "accuracy",
    "collection_universe",
    "counting_dataset",
    "expected_calibration_error",
    "er_dataset",
    "fill_dataset",
    "format_series",
    "format_table",
    "kendall_tau",
    "labeling_dataset",
    "make_platform",
    "mean",
    "overconfidence",
    "precision_at_k",
    "precision_recall_f1",
    "print_series",
    "print_table",
    "ranking_dataset",
    "reliability_bins",
    "relative_error",
    "run_trials",
]
