"""Evaluation metrics shared by tests and benchmarks."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError


def accuracy(predicted: Mapping[Any, Any], truth: Mapping[Any, Any]) -> float:
    """Fraction of keys (present in both) with equal values."""
    common = [k for k in predicted if k in truth]
    if not common:
        raise ConfigurationError("no overlapping keys to score")
    return sum(1 for k in common if predicted[k] == truth[k]) / len(common)


def precision_recall_f1(
    predicted: set[Any], truth: set[Any]
) -> tuple[float, float, float]:
    """Set-based precision, recall, F1."""
    if not predicted and not truth:
        return 1.0, 1.0, 1.0
    tp = len(predicted & truth)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(truth) if truth else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


def kendall_tau(order_a: Sequence[Any], order_b: Sequence[Any]) -> float:
    """Kendall tau-a between two total orders over the same items."""
    if set(order_a) != set(order_b):
        raise ConfigurationError("orders must contain the same items")
    n = len(order_a)
    if n < 2:
        return 1.0
    pos_a = {item: i for i, item in enumerate(order_a)}
    pos_b = {item: i for i, item in enumerate(order_b)}
    items = list(order_a)
    concordant = discordant = 0
    for x in range(n):
        for y in range(x + 1, n):
            da = pos_a[items[x]] - pos_a[items[y]]
            db = pos_b[items[x]] - pos_b[items[y]]
            if da * db > 0:
                concordant += 1
            elif da * db < 0:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) // 2)


def precision_at_k(predicted: Sequence[Any], truth: Sequence[Any], k: int) -> float:
    """Overlap of the top-k prefixes (order-insensitive within the prefix)."""
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    top_predicted = set(predicted[:k])
    top_truth = set(truth[:k])
    return len(top_predicted & top_truth) / k


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| (truth 0 handled with absolute error)."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)
