"""Plain-text table and series renderers for benchmark output.

Benchmarks print the same row/series structure the paper-style report in
EXPERIMENTS.md records; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns or rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    width: int = 40,
) -> str:
    """Render a (figure-style) series as labeled bars."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label} -> {y_label}")
    if not ys:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(abs(y) for y in ys) or 1.0
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(abs(y) / peak * width)))
        lines.append(f"{str(x):>12s} | {bar} {y:.4g}")
    return "\n".join(lines)


def print_table(*args: Any, **kwargs: Any) -> None:
    """Print a formatted table preceded by a blank line."""
    print()
    print(format_table(*args, **kwargs))


def print_series(*args: Any, **kwargs: Any) -> None:
    """Print a formatted series preceded by a blank line."""
    print()
    print(format_series(*args, **kwargs))
