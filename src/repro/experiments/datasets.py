"""Synthetic workload generators with controlled ground truth.

Each generator replaces a proprietary dataset used in the surveyed
evaluations (product ER corpora, image-label collections, preference
rankings) with a synthetic population preserving the structural properties
that drive the published comparisons: cluster sizes and separation for ER,
score gaps for ranking, selectivity for filtering/counting, popularity skew
for open-world collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.task import Task, TaskType

_ADJECTIVES = (
    "swift", "crimson", "lunar", "amber", "cobalt", "vivid", "rustic",
    "polar", "ember", "sable", "ivory", "jade", "onyx", "quartz", "teal",
    "umber", "violet", "wicker", "zephyr", "aurora", "basalt", "cedar",
    "delta", "echo", "fjord", "garnet", "harbor", "iris", "juniper", "krait",
)
_NOUNS = (
    "falcon", "orchid", "summit", "harbor", "lantern", "compass", "meadow",
    "pioneer", "quarry", "raven", "sparrow", "tundra", "vortex", "willow",
    "anchor", "beacon", "canyon", "drift", "ember", "forge", "glacier",
    "horizon", "isle", "jungle", "kelp", "ledge", "mesa", "nimbus", "oasis",
    "prairie",
)


@dataclass
class LabelingDataset:
    """Single-choice labeling workload."""

    tasks: list[Task]
    truth: dict[str, Any]
    labels: tuple[str, ...]


def labeling_dataset(
    n_tasks: int,
    labels: tuple[str, ...] = ("positive", "negative", "neutral"),
    difficulty_range: tuple[float, float] = (0.0, 0.6),
    seed: int | None = None,
) -> LabelingDataset:
    """Classification tasks with uniformly random truths and difficulties."""
    if n_tasks < 1:
        raise ConfigurationError("n_tasks must be >= 1")
    if len(labels) < 2:
        raise ConfigurationError("need at least two labels")
    rng = np.random.default_rng(seed)
    tasks = []
    truth = {}
    low, high = difficulty_range
    for i in range(n_tasks):
        label = labels[int(rng.integers(len(labels)))]
        task = Task(
            TaskType.SINGLE_CHOICE,
            question=f"Label item #{i}.",
            options=labels,
            truth=label,
            difficulty=float(rng.uniform(low, high)),
        )
        tasks.append(task)
        truth[task.task_id] = label
    return LabelingDataset(tasks=tasks, truth=truth, labels=labels)


@dataclass
class EntityResolutionDataset:
    """Dirty records with known cluster structure."""

    records: list[str]
    cluster_of: dict[int, int]
    true_pairs: set[tuple[int, int]] = field(default_factory=set)

    def truth_fn(self, a: str, b: str) -> bool:
        """Ground truth: do two record strings name the same entity?"""
        ia, ib = self.records.index(a), self.records.index(b)
        return self.cluster_of[ia] == self.cluster_of[ib]

    def truth_by_index(self, i: int, j: int) -> bool:
        """Ground truth by record index (faster than truth_fn)."""
        return self.cluster_of[i] == self.cluster_of[j]


def _perturb(name: str, rng: np.random.Generator) -> str:
    """Apply a realistic dirty-data perturbation to a record string."""
    words = name.split()
    roll = rng.random()
    if roll < 0.3 and len(words) > 1:          # word reorder
        i, j = rng.choice(len(words), size=2, replace=False)
        words[int(i)], words[int(j)] = words[int(j)], words[int(i)]
    elif roll < 0.55:                          # abbreviation
        k = int(rng.integers(len(words)))
        if len(words[k]) > 3:
            words[k] = words[k][:3] + "."
    elif roll < 0.8:                           # extra qualifier
        words.append(("pro", "mini", "ii", "plus", "new")[int(rng.integers(5))])
    else:                                      # typo: drop one character
        k = int(rng.integers(len(words)))
        if len(words[k]) > 2:
            pos = int(rng.integers(1, len(words[k])))
            words[k] = words[k][:pos] + words[k][pos + 1 :]
    return " ".join(words)


def er_dataset(
    n_entities: int = 40,
    records_per_entity: tuple[int, int] = (1, 4),
    seed: int | None = None,
) -> EntityResolutionDataset:
    """Entity-resolution corpus: distinct entity names, dirty duplicates.

    Entity names are adjective-noun-number triples drawn without
    replacement, so different entities share few tokens (machine pruning
    has signal) while duplicates of one entity share most tokens.
    """
    if n_entities < 2:
        raise ConfigurationError("need at least two entities")
    max_entities = len(_ADJECTIVES) * len(_NOUNS)
    if n_entities > max_entities:
        raise ConfigurationError(f"at most {max_entities} distinct entities supported")
    rng = np.random.default_rng(seed)
    combos = rng.permutation(max_entities)[:n_entities]
    records: list[str] = []
    cluster_of: dict[int, int] = {}
    for cluster, combo in enumerate(combos):
        adjective = _ADJECTIVES[combo // len(_NOUNS)]
        noun = _NOUNS[combo % len(_NOUNS)]
        base = f"{adjective} {noun} {int(rng.integers(100, 999))}"
        copies = int(rng.integers(records_per_entity[0], records_per_entity[1] + 1))
        for c in range(copies):
            text = base if c == 0 else _perturb(base, rng)
            cluster_of[len(records)] = cluster
            records.append(text)
    true_pairs = {
        (i, j)
        for i in range(len(records))
        for j in range(i + 1, len(records))
        if cluster_of[i] == cluster_of[j]
    }
    return EntityResolutionDataset(records=records, cluster_of=cluster_of, true_pairs=true_pairs)


@dataclass
class RankingDataset:
    """Items with latent utilities for sort/top-k experiments."""

    items: list[str]
    scores: dict[str, float]

    def score_fn(self, item: str) -> float:
        """Latent utility of *item* (drives simulated comparison workers)."""
        return self.scores[item]

    @property
    def true_order(self) -> list[int]:
        """Item indices sorted best-first by latent score."""
        return sorted(
            range(len(self.items)), key=lambda i: -self.scores[self.items[i]]
        )


def ranking_dataset(
    n_items: int = 30,
    score_spread: float = 1.0,
    seed: int | None = None,
) -> RankingDataset:
    """Items with latent scores spread uniformly over [0, score_spread].

    A smaller spread makes adjacent comparisons harder for Bradley–Terry
    workers — the knob the sort benchmarks sweep.
    """
    if n_items < 2:
        raise ConfigurationError("need at least two items")
    rng = np.random.default_rng(seed)
    items = [f"candidate-{i:03d}" for i in range(n_items)]
    raw = rng.permutation(n_items) / max(1, n_items - 1) * score_spread
    scores = {item: float(s) for item, s in zip(items, raw)}
    return RankingDataset(items=items, scores=scores)


@dataclass
class CountingDataset:
    """A population with a known-selectivity boolean predicate."""

    items: list[str]
    truth: dict[str, bool]
    selectivity: float

    def truth_fn(self, item: str) -> bool:
        """Ground-truth predicate verdict for *item*."""
        return self.truth[item]

    @property
    def true_count(self) -> int:
        return sum(1 for v in self.truth.values() if v)


def counting_dataset(
    population: int = 10_000,
    selectivity: float = 0.3,
    seed: int | None = None,
) -> CountingDataset:
    """Population for crowd COUNT with exact target selectivity."""
    if population < 1:
        raise ConfigurationError("population must be >= 1")
    if not 0.0 <= selectivity <= 1.0:
        raise ConfigurationError("selectivity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    items = [f"object-{i:05d}" for i in range(population)]
    positives = set(
        int(i) for i in rng.choice(population, size=int(round(population * selectivity)), replace=False)
    )
    truth = {item: (i in positives) for i, item in enumerate(items)}
    return CountingDataset(items=items, truth=truth, selectivity=selectivity)


def collection_universe(n_items: int = 200, seed: int | None = None) -> list[str]:
    """Universe of distinct collectible items (popularity = list order)."""
    if n_items < 1:
        raise ConfigurationError("n_items must be >= 1")
    rng = np.random.default_rng(seed)
    suffixes = rng.permutation(n_items)
    return [f"species-{int(s):04d}" for s in suffixes]


@dataclass
class FillDataset:
    """A relation with crowd columns plus the hidden completion answers."""

    rows: list[dict[str, Any]]
    answers: dict[str, dict[str, str]]   # key column value -> {column: truth}

    def truth_fn(self, row: dict[str, Any], column: str) -> str:
        """Ground-truth value of *column* for *row*."""
        return self.answers[row["name"]][column]


def fill_dataset(n_rows: int = 25, seed: int | None = None) -> FillDataset:
    """Directory-style records with two crowd-known attributes each."""
    rng = np.random.default_rng(seed)
    rows = []
    answers: dict[str, dict[str, str]] = {}
    for i in range(n_rows):
        name = f"person-{i:03d}"
        rows.append({"name": name})
        answers[name] = {
            "hometown": f"city-{int(rng.integers(50)):02d}",
            "employer": f"org-{int(rng.integers(30)):02d}",
        }
    return FillDataset(rows=rows, answers=answers)


@dataclass
class TextClassificationDataset:
    """Synthetic text corpus with class-specific vocabulary."""

    documents: list[str]
    labels: list[str]
    classes: tuple[str, ...]
    heldout_documents: list[str] = field(default_factory=list)
    heldout_labels: list[str] = field(default_factory=list)

    def truth_fn(self, document: str) -> str:
        """Ground-truth class of *document*."""
        return self.labels[self.documents.index(document)]


def text_classification_dataset(
    n_documents: int = 200,
    classes: tuple[str, ...] = ("sports", "finance", "cooking"),
    words_per_document: int = 12,
    signal_strength: float = 0.6,
    heldout: int = 100,
    seed: int | None = None,
) -> TextClassificationDataset:
    """Bag-of-words documents: each class mixes its own vocabulary with a
    shared one. *signal_strength* is the probability a word is drawn from
    the class vocabulary (higher = easier classification). A heldout split
    of the same distribution supports learning-curve measurement.
    """
    if n_documents < len(classes):
        raise ConfigurationError("need at least one document per class")
    if not 0.0 <= signal_strength <= 1.0:
        raise ConfigurationError("signal_strength must be in [0, 1]")
    rng = np.random.default_rng(seed)
    shared = [f"word{i}" for i in range(40)]
    class_vocab = {
        label: [f"{label}term{i}" for i in range(15)] for label in classes
    }

    def make_doc(label: str) -> str:
        words = []
        for _ in range(words_per_document):
            if rng.random() < signal_strength:
                pool = class_vocab[label]
            else:
                pool = shared
            words.append(pool[int(rng.integers(len(pool)))])
        return " ".join(words)

    def make_split(count: int) -> tuple[list[str], list[str]]:
        documents, labels = [], []
        for i in range(count):
            label = classes[i % len(classes)]
            documents.append(make_doc(label))
            labels.append(label)
        order = rng.permutation(count)
        return [documents[i] for i in order], [labels[i] for i in order]

    documents, labels = make_split(n_documents)
    heldout_docs, heldout_labels = make_split(heldout) if heldout else ([], [])
    return TextClassificationDataset(
        documents=documents,
        labels=labels,
        classes=classes,
        heldout_documents=heldout_docs,
        heldout_labels=heldout_labels,
    )
