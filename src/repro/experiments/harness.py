"""Experiment harness: platform construction and repeated-trial running.

Benchmarks describe *what* to run; this module owns *how*: reproducible
platform/pool construction from a small spec, multi-trial averaging, and a
uniform result record that the report renderers consume.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool


@dataclass(frozen=True)
class PoolSpec:
    """Declarative description of a worker population."""

    kind: str = "heterogeneous"      # uniform | heterogeneous | spammers | glad | comparison
    size: int = 25
    accuracy: float = 0.8            # uniform pools
    accuracy_low: float = 0.55       # heterogeneous pools
    accuracy_high: float = 0.95
    spammer_fraction: float = 0.0    # spammer pools
    sharpness: float = 6.0           # comparison pools
    ability_mean: float = 1.5        # glad pools
    ability_std: float = 1.0

    def build(self, seed: int | None = None) -> WorkerPool:
        """Instantiate the described worker pool with *seed*."""
        if self.kind == "uniform":
            return WorkerPool.uniform(self.size, self.accuracy, seed=seed)
        if self.kind == "heterogeneous":
            return WorkerPool.heterogeneous(
                self.size, self.accuracy_low, self.accuracy_high, seed=seed
            )
        if self.kind == "spammers":
            return WorkerPool.with_spammers(
                self.size, self.spammer_fraction, self.accuracy, seed=seed
            )
        if self.kind == "glad":
            return WorkerPool.glad_spectrum(
                self.size, self.ability_mean, self.ability_std, seed=seed
            )
        if self.kind == "comparison":
            return WorkerPool.comparison_pool(self.size, self.sharpness, seed=seed)
        raise ConfigurationError(f"unknown pool kind {self.kind!r}")


def make_platform(
    spec: PoolSpec,
    seed: int = 0,
    budget: float = math.inf,
    tracer=None,
    metrics=None,
) -> SimulatedPlatform:
    """Deterministic platform: pool seeded with *seed*, market with seed+1.

    *tracer* / *metrics* are passed through so experiments can observe a
    trial without rebuilding the platform wiring themselves.
    """
    return SimulatedPlatform(
        spec.build(seed=seed), budget=budget, seed=seed + 1,
        tracer=tracer, metrics=metrics,
    )


@dataclass
class TrialResult:
    """One trial's named measurements."""

    values: dict[str, float]


@dataclass
class ExperimentResult:
    """Aggregated measurements over repeated trials."""

    name: str
    trials: list[TrialResult] = field(default_factory=list)

    def mean(self, key: str) -> float:
        """Mean of metric *key* across trials."""
        vals = [t.values[key] for t in self.trials if key in t.values]
        if not vals:
            raise ConfigurationError(f"no trials recorded metric {key!r}")
        return sum(vals) / len(vals)

    def std(self, key: str) -> float:
        """Sample standard deviation of metric *key* (0 for one trial)."""
        vals = [t.values[key] for t in self.trials if key in t.values]
        if len(vals) < 2:
            return 0.0
        mu = sum(vals) / len(vals)
        return math.sqrt(sum((v - mu) ** 2 for v in vals) / (len(vals) - 1))

    def summary(self, keys: Sequence[str] | None = None) -> dict[str, float]:
        """Metric means as a dict (all metrics unless *keys* given)."""
        keys = keys or sorted({k for t in self.trials for k in t.values})
        return {k: self.mean(k) for k in keys}


def quick_mode() -> bool:
    """True when benchmarks should run a reduced CI-smoke workload.

    Enabled by ``pytest benchmarks --quick`` (which exports the variable)
    or by setting ``CROWDDM_BENCH_QUICK=1`` directly.
    """
    return os.environ.get("CROWDDM_BENCH_QUICK", "").strip() not in ("", "0")


def run_trials(
    name: str,
    trial_fn: Callable[[int], Mapping[str, float]],
    n_trials: int = 3,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run *trial_fn(seed)* for seeds base_seed..base_seed+n-1 and aggregate.

    In quick mode (see :func:`quick_mode`) only the first trial runs, so CI
    smoke jobs get the full code path at a fraction of the wall-clock.
    """
    if n_trials < 1:
        raise ConfigurationError("n_trials must be >= 1")
    if quick_mode():
        n_trials = 1
    result = ExperimentResult(name=name)
    for trial in range(n_trials):
        values = dict(trial_fn(base_seed + trial))
        result.trials.append(TrialResult(values={k: float(v) for k, v in values.items()}))
    return result
