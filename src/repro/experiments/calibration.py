"""Confidence calibration analysis for truth-inference output.

A truth-inference method's per-task confidence is only useful for routing
(early termination, task selection, human escalation) if it is
*calibrated*: among tasks reported at ~0.8 confidence, ~80% should be
right. These helpers compute the standard reliability diagram and expected
calibration error (ECE) from an
:class:`~repro.quality.truth.base.InferenceResult` plus ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.quality.truth.base import InferenceResult


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of a reliability diagram."""

    low: float
    high: float
    count: int
    mean_confidence: float
    accuracy: float

    @property
    def gap(self) -> float:
        """|confidence - accuracy| for this bin."""
        return abs(self.mean_confidence - self.accuracy)


def reliability_bins(
    result: InferenceResult,
    truth: Mapping[str, Any],
    n_bins: int = 10,
) -> list[ReliabilityBin]:
    """Bin tasks by reported confidence; measure accuracy per bin.

    Only tasks present in both the result and *truth* are scored. Empty
    bins are omitted.
    """
    if n_bins < 1:
        raise ConfigurationError("n_bins must be >= 1")
    scored = [
        (result.confidences.get(task_id, 0.0), result.truths[task_id] == truth[task_id])
        for task_id in result.truths
        if task_id in truth
    ]
    if not scored:
        raise ConfigurationError("no overlapping tasks to calibrate on")
    bins: list[ReliabilityBin] = []
    width = 1.0 / n_bins
    for b in range(n_bins):
        low = b * width
        high = low + width if b < n_bins - 1 else 1.0 + 1e-9
        members = [(c, ok) for c, ok in scored if low <= c < high]
        if not members:
            continue
        confidences = [c for c, _ok in members]
        hits = [1.0 if ok else 0.0 for _c, ok in members]
        bins.append(
            ReliabilityBin(
                low=low,
                high=min(high, 1.0),
                count=len(members),
                mean_confidence=sum(confidences) / len(members),
                accuracy=sum(hits) / len(members),
            )
        )
    return bins


def expected_calibration_error(
    result: InferenceResult,
    truth: Mapping[str, Any],
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over the bins."""
    bins = reliability_bins(result, truth, n_bins)
    total = sum(b.count for b in bins)
    return sum(b.count * b.gap for b in bins) / total


def overconfidence(result: InferenceResult, truth: Mapping[str, Any]) -> float:
    """Signed mean (confidence - correctness): positive = overconfident."""
    scored = [
        (result.confidences.get(task_id, 0.0), result.truths[task_id] == truth[task_id])
        for task_id in result.truths
        if task_id in truth
    ]
    if not scored:
        raise ConfigurationError("no overlapping tasks")
    return sum(c - (1.0 if ok else 0.0) for c, ok in scored) / len(scored)
