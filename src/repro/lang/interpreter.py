"""CrowdSQL session: parse → plan → optimize → execute.

:class:`CrowdSQLSession` is the REPL-style entry point the declarative
systems expose — CrowdDB's "SQL with CROWD in it". It owns a database
catalog, a platform connection, and the quality configuration, and runs
scripts of ';'-separated statements.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.data.database import Database
from repro.data.expressions import contains_crowd_predicate
from repro.data.schema import Column, ColumnType, Schema
from repro.errors import ExecutionError
from repro.lang.ast_nodes import (
    CreateTable,
    Delete,
    DropTable,
    Explain,
    Insert,
    Select,
    Statement,
    Update,
)
from repro.lang.executor import CrowdOracle, Executor, QueryResult
from repro.lang.optimizer import CostModel, Optimizer, estimate_plan_cost
from repro.lang.parser import parse
from repro.lang.planner import build_plan
from repro.lang.streaming import StreamingExecutor
from repro.platform.platform import SimulatedPlatform
from repro.quality.truth import TruthInference

_TYPE_MAP = {
    "STRING": ColumnType.STRING,
    "INTEGER": ColumnType.INTEGER,
    "FLOAT": ColumnType.FLOAT,
    "BOOLEAN": ColumnType.BOOLEAN,
}


@dataclass
class StatementResult:
    """Outcome of one non-query statement."""

    kind: str           # created | dropped | inserted
    table: str
    row_count: int = 0


#: Statement-node class → SQL verb, for profiler/run-status labels.
_STATEMENT_VERBS = {
    "CreateTable": "CREATE TABLE",
    "DropTable": "DROP TABLE",
    "Insert": "INSERT",
    "Select": "SELECT",
    "Update": "UPDATE",
    "Delete": "DELETE",
}


def describe_statement(statement: Statement) -> str:
    """Short human label for *statement* (verb + target table).

    The parser does not retain source text, so this is the closest thing
    to the statement itself the profiler and ``/run`` endpoint can show.
    """
    if isinstance(statement, Explain):
        return "EXPLAIN " + describe_statement(statement.select)
    verb = _STATEMENT_VERBS.get(type(statement).__name__, type(statement).__name__)
    target = getattr(statement, "table", None) or getattr(statement, "name", None)
    return f"{verb} {target}" if target else verb


class CrowdSQLSession:
    """Execute CrowdSQL against a database and a crowd platform.

    Args:
        database: Catalog (a fresh one is created when omitted).
        platform: Marketplace; required only when queries touch the crowd.
        redundancy: Votes per crowd question.
        inference: Vote aggregation method.
        oracle: Simulation ground truth for crowd answers.
        optimize: Apply the rule-based optimizer (on by default; the T7
            benchmark turns it off to measure the difference).
        profiler: Optional :class:`~repro.obs.profiler.QueryProfiler`;
            when set, every executed statement is bracketed and lands in
            the profile document.
        pipeline: Stream SELECTs through the
            :class:`~repro.lang.streaming.StreamingExecutor` (pipelined
            waves + upstream cancellation). Off by default — the barrier
            path stays bit-identical to previous releases.
    """

    def __init__(
        self,
        database: Database | None = None,
        platform: SimulatedPlatform | None = None,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        oracle: CrowdOracle | None = None,
        optimize: bool = True,
        profiler: Any | None = None,
        pipeline: bool = False,
    ):
        # `is None` check: an empty Database is falsy (it defines __len__).
        self.database = Database() if database is None else database
        self.platform = platform
        self.redundancy = redundancy
        self.inference = inference
        self.oracle = oracle or CrowdOracle()
        self.optimize = optimize
        self.profiler = profiler
        self.pipeline = pipeline
        #: Label of the statement currently executing (the /run endpoint
        #: reads this from the server thread), or None when idle.
        self.current_statement: str | None = None

    # ------------------------------------------------------------------ #

    def execute(
        self,
        sql: str,
        skip: int = 0,
        on_statement: "Callable[[int, QueryResult | StatementResult], None] | None" = None,
    ) -> list[QueryResult | StatementResult]:
        """Run a script; returns one result per executed statement, in order.

        *skip* drops the first N statements without executing them (resume
        from a checkpoint whose database/platform state already reflects
        them). *on_statement* is called after each executed statement with
        ``(statement_index, result)`` — the hook checkpointing builds on.
        """
        results: list[QueryResult | StatementResult] = []
        for index, statement in enumerate(parse(sql).statements):
            if index < skip:
                continue
            label = describe_statement(statement)
            self.current_statement = label
            try:
                if self.profiler is not None:
                    with self.profiler.statement(index, label) as capture:
                        result = self._execute_statement(statement)
                        capture.finish(result)
                else:
                    result = self._execute_statement(statement)
            finally:
                self.current_statement = None
            results.append(result)
            if on_statement is not None:
                on_statement(index, result)
        return results

    def query(self, sql: str) -> QueryResult:
        """Run a script whose final statement is a SELECT; return its rows."""
        results = self.execute(sql)
        last = results[-1]
        if not isinstance(last, QueryResult):
            raise ExecutionError("last statement did not produce rows")
        return last

    def explain(self, sql: str) -> str:
        """Plan text (and estimated crowd cost) without executing."""
        statements = parse(sql).statements
        chunks = []
        for statement in statements:
            if not isinstance(statement, Select):
                chunks.append(f"-- {type(statement).__name__}: no plan")
                continue
            plan = build_plan(statement, self.database)
            if self.optimize:
                plan = Optimizer(self.database, CostModel(self.redundancy)).optimize(plan)
            cost = estimate_plan_cost(plan, self.database, CostModel(self.redundancy))
            chunks.append(plan.explain() + f"\n-- estimated crowd cost: {cost:.4f}")
        return "\n\n".join(chunks)

    # ------------------------------------------------------------------ #

    def _execute_statement(self, statement: Statement) -> QueryResult | StatementResult:
        if isinstance(statement, CreateTable):
            return self._create(statement)
        if isinstance(statement, DropTable):
            self.database.drop_table(statement.name, if_exists=statement.if_exists)
            return StatementResult(kind="dropped", table=statement.name)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Select):
            return self._select(statement)
        if isinstance(statement, Explain):
            return self._explain(statement)
        if isinstance(statement, Update):
            return self._update(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _explain(self, statement: Explain) -> QueryResult:
        """EXPLAIN: return the plan text as rows instead of executing."""
        plan = build_plan(statement.select, self.database)
        if self.optimize:
            plan = Optimizer(self.database, CostModel(self.redundancy)).optimize(plan)
        cost = estimate_plan_cost(plan, self.database, CostModel(self.redundancy))
        lines = plan.explain().splitlines() + [f"-- estimated crowd cost: {cost:.4f}"]
        return QueryResult(
            columns=("plan",),
            rows=[{"plan": line} for line in lines],
        )

    def _matching_rowids(self, table_name: str, where) -> list[int]:
        """Rowids of *table_name* whose rows satisfy *where* (crowd-aware)."""
        table = self.database.table(table_name)
        if where is None:
            return [row.rowid for row in table]
        if contains_crowd_predicate(where):
            if self.platform is None:
                raise ExecutionError(
                    "statement requires crowd work but the session has no platform"
                )
            executor = Executor(
                self.database,
                self.platform,
                redundancy=self.redundancy,
                inference=self.inference,
                oracle=self.oracle,
            )
            from repro.lang.executor import ExecutionStats

            stats = ExecutionStats()
            return [
                row.rowid
                for row in table
                if executor._eval_crowd(where, row.as_dict(), stats) is True
            ]
        return [row.rowid for row in table if where.evaluate(row.as_dict()) is True]

    def _update(self, statement: Update) -> StatementResult:
        table = self.database.table(statement.table)
        for column, _value in statement.assignments:
            table.schema.column(column)  # validate existence up front
        rowids = self._matching_rowids(statement.table, statement.where)
        for rowid in rowids:
            for column, value in statement.assignments:
                table.update_cell(rowid, column, value)
        return StatementResult(
            kind="updated", table=statement.table, row_count=len(rowids)
        )

    def _delete(self, statement: Delete) -> StatementResult:
        table = self.database.table(statement.table)
        rowids = self._matching_rowids(statement.table, statement.where)
        for rowid in rowids:
            table.delete(rowid)
        return StatementResult(
            kind="deleted", table=statement.table, row_count=len(rowids)
        )

    def _create(self, statement: CreateTable) -> StatementResult:
        columns = [
            Column(
                c.name,
                _TYPE_MAP[c.type_name],
                crowd=c.crowd,
                nullable=not c.not_null,
            )
            for c in statement.columns
        ]
        schema = Schema(
            columns,
            primary_key=statement.primary_key,
            crowd_table=statement.crowd_table,
        )
        self.database.create_table(
            statement.name, schema, if_not_exists=statement.if_not_exists
        )
        return StatementResult(kind="created", table=statement.name)

    def _insert(self, statement: Insert) -> StatementResult:
        table = self.database.table(statement.table)
        columns = statement.columns or table.schema.column_names
        inserted = 0
        for row in statement.rows:
            if len(row) != len(columns):
                raise ExecutionError(
                    f"INSERT row has {len(row)} values for {len(columns)} columns"
                )
            table.insert(dict(zip(columns, row, strict=True)))
            inserted += 1
        return StatementResult(kind="inserted", table=statement.table, row_count=inserted)

    def _select(self, statement: Select) -> QueryResult:
        plan = build_plan(statement, self.database)
        if self.optimize:
            plan = Optimizer(self.database, CostModel(self.redundancy)).optimize(plan)
        platform = self.platform
        if platform is None:
            platform = _require_no_crowd(plan)
        executor_cls = (
            StreamingExecutor if self.pipeline and self.platform is not None else Executor
        )
        executor = executor_cls(
            self.database,
            platform,
            redundancy=self.redundancy,
            inference=self.inference,
            oracle=self.oracle,
        )
        return executor.execute(plan)


def _require_no_crowd(plan: Any) -> SimulatedPlatform:
    """Queries without crowd operators may run platform-less."""
    from repro.lang.planner import count_crowd_operators

    if count_crowd_operators(plan) > 0:
        raise ExecutionError(
            "query requires crowd work but the session has no platform"
        )
    # A dummy platform that is never used.
    from repro.workers.pool import WorkerPool

    return SimulatedPlatform(WorkerPool.uniform(1, 1.0, seed=0), seed=0)
