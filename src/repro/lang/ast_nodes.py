"""Abstract syntax for CrowdSQL statements.

Expressions reuse :mod:`repro.data.expressions` directly (the parser builds
:class:`~repro.data.expressions.Expression` trees), so only statement-level
nodes live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.expressions import Expression


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE statement."""

    name: str
    type_name: str          # STRING | INTEGER | FLOAT | BOOLEAN
    crowd: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    crowd_table: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class OrderSpec:
    """ORDER BY item: machine order on a column."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class CrowdOrderSpec:
    """CROWDORDER BY item: crowd-comparison order on a column's values."""

    column: str
    ascending: bool = False   # crowd order defaults to best-first


@dataclass(frozen=True)
class JoinClause:
    """JOIN (machine) or CROWDJOIN (crowd-verified equality)."""

    table: str
    alias: str | None
    condition: Expression | None   # None only for CROWDJOIN with CROWDEQUAL
    crowd: bool = False


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate select item: COUNT(*) / SUM(c) / AVG(c) / MIN(c) / MAX(c).

    ``column`` is None for COUNT(*). ``output_name`` is the result column:
    ``count`` for COUNT(*), else ``{func}_{column}`` (e.g. ``sum_price``).
    """

    func: str                 # COUNT | SUM | AVG | MIN | MAX
    column: str | None = None

    @property
    def output_name(self) -> str:
        if self.column is None:
            return "count"
        return f"{self.func.lower()}_{self.column}"


@dataclass(frozen=True)
class Select:
    columns: tuple[str, ...]            # () means SELECT * (when no aggregates)
    table: str
    alias: str | None = None
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    order: tuple[OrderSpec, ...] = ()
    crowd_order: CrowdOrderSpec | None = None
    limit: int | None = None
    distinct: bool = False
    aggregates: tuple[AggregateSpec, ...] = ()
    group_by: str | None = None
    having: Expression | None = None


@dataclass(frozen=True)
class Update:
    """UPDATE table SET col = literal [, ...] [WHERE expr]."""

    table: str
    assignments: tuple[tuple[str, Any], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class Delete:
    """DELETE FROM table [WHERE expr]."""

    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class Explain:
    """EXPLAIN SELECT ...: show the (optimized) plan instead of executing."""

    select: Select


Statement = CreateTable | DropTable | Insert | Select | Update | Delete | Explain


@dataclass
class ParsedScript:
    """A sequence of parsed statements from one SQL text."""

    statements: list[Statement] = field(default_factory=list)
