"""Pull-based executor for CrowdSQL logical plans.

Machine operators evaluate rows directly; crowd operators route through the
platform with the configured redundancy and truth-inference method. Ground
truth for the simulated workers comes from a :class:`CrowdOracle`, which a
real deployment would simply omit (workers would supply knowledge instead).

Machine-side work is vectorized where the plan shape allows it: scan/filter
chains over a base table evaluate one fused predicate on the table's column
arrays, crowd filters pre-drop rows whose machine-decidable prefix is
definitely False before any crowd question is purchased, and machine
equi-joins build/probe on column arrays instead of nested-loop row dicts.
Every fast path produces bit-identical rows, ordering, and crowd purchase
sequences to the row-at-a-time code it replaces, which stays in place as
the fallback for plan shapes the vectorizer does not cover.

Per-run accounting (questions, answers, spend) is collected in
:class:`ExecutionStats` so the T7 benchmark can compare plans.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cost.similarity import jaccard_tokens
from repro.data.columnstore import ColumnVector
from repro.data.database import Database
from repro.data.expressions import (
    And,
    ColumnRef,
    Comparison,
    CrowdPredicate,
    Expression,
    Not,
    Or,
    conjoin,
    contains_crowd_predicate,
    evaluate_tristate,
    is_crowd_unknown,
    split_conjuncts,
)
from repro.data.schema import Column, ColumnType, Schema, is_cnull
from repro.data.table import Table
from repro.errors import ExecutionError, ExpressionError
from repro.lang.planner import (
    AggregateNode,
    CrowdFilterNode,
    CrowdJoinNode,
    CrowdOrderNode,
    DistinctNode,
    FillNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.obs.instrument import operator_span
from repro.operators.fill import CrowdFill
from repro.operators.sort import CrowdComparator, merge_sort_crowd
from repro.platform.cache import signature_of
from repro.platform.platform import SimulatedPlatform
from repro.platform.task import Task, TaskType
from repro.quality.truth import MajorityVote, TruthInference

YES = "yes"
NO = "no"


def _default_equal_truth(a: Any, b: Any) -> bool:
    """Simulation default for CROWDEQUAL: token-normalized equality."""
    if isinstance(a, str) and isinstance(b, str):
        return sorted(a.lower().split()) == sorted(b.lower().split())
    return a == b


@dataclass
class CrowdOracle:
    """Ground truth the simulated workers answer from.

    Attributes:
        equal_fn: CROWDEQUAL(a, b) truth; defaults to normalized equality.
        filter_fn: CROWDFILTER(value, question) truth; required when the
            query uses CROWDFILTER.
        order_score_fn: Latent utility for CROWDORDER BY values; defaults
            to the value itself when numeric.
        fill_fn: (row dict, column) -> value for CNULL resolution; required
            when a referenced crowd column has unresolved cells.
        equal_similarity_prune: Optional threshold in (0, 1]: CROWDEQUAL
            over two strings with token-Jaccard below it is auto-answered
            "no" without crowd spend (machine pruning inside the executor).
    """

    equal_fn: Callable[[Any, Any], bool] = _default_equal_truth
    filter_fn: Callable[[Any, str], bool] | None = None
    order_score_fn: Callable[[Any], float] | None = None
    fill_fn: Callable[[dict[str, Any], str], Any] | None = None
    equal_similarity_prune: float | None = None


@dataclass
class ExecutionStats:
    crowd_questions: int = 0
    crowd_answers: int = 0
    crowd_cost: float = 0.0
    cells_filled: int = 0
    pairs_pruned: int = 0
    tasks_cancelled: int = 0   # pending HITs cancelled by early termination
    cost_avoided: float = 0.0  # spend avoided by those cancellations


@dataclass
class QueryResult:
    """Rows plus per-query crowd accounting."""

    columns: tuple[str, ...]
    rows: list[dict[str, Any]]
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    plan_text: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list[Any]:
        """All values of one result column, in row order."""
        return [row[name] for row in self.rows]


class Executor:
    """Executes logical plans against a database + platform pair.

    Args:
        database: Catalog with the base tables.
        platform: Marketplace for crowd operators.
        redundancy: Votes per crowd question.
        inference: Aggregation for crowd votes (default majority).
        oracle: Simulation ground truth (see :class:`CrowdOracle`).
    """

    def __init__(
        self,
        database: Database,
        platform: SimulatedPlatform,
        redundancy: int = 3,
        inference: TruthInference | None = None,
        oracle: CrowdOracle | None = None,
    ):
        self.database = database
        self.platform = platform
        self.redundancy = redundancy
        self.inference = inference or MajorityVote()
        self.oracle = oracle or CrowdOracle()
        # Statement-local verdict memo, keyed by the same content signature
        # the platform's AnswerCache uses (see repro.platform.cache): a
        # repeated predicate over identical values costs zero questions
        # within a statement, and with a cache attached to the platform the
        # raw votes are also reused *across* statements.
        self._verdicts: dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def execute(self, plan: LogicalPlan) -> QueryResult:
        """Run a logical plan; returns rows plus crowd accounting."""
        stats = ExecutionStats()
        schema, rows = self._run(plan.root, stats)
        return QueryResult(
            columns=schema.column_names,
            rows=rows,
            stats=stats,
            plan_text=plan.explain(),
        )

    # ------------------------------------------------------------------ #
    # Node dispatch
    # ------------------------------------------------------------------ #

    def _run(self, node: PlanNode, stats: ExecutionStats) -> tuple[Schema, list[dict[str, Any]]]:
        if isinstance(node, ScanNode):
            table = self.database.table(node.table)
            return table.schema, [row.as_dict() for row in table]
        if isinstance(node, FillNode):
            return self._run_fill(node, stats)
        if isinstance(node, FilterNode):
            fast = self._vectorized_filter(node)
            if fast is not None:
                return fast
            schema, rows = self._run(node.child, stats)
            kept = [r for r in rows if node.predicate.evaluate(r) is True]
            return schema, kept
        if isinstance(node, CrowdFilterNode):
            return self._run_crowd_filter(node, stats)
        if isinstance(node, JoinNode):
            return self._run_join(node, stats, crowd=False)
        if isinstance(node, CrowdJoinNode):
            return self._run_join(node, stats, crowd=True)
        if isinstance(node, ProjectNode):
            schema, rows = self._run(node.child, stats)
            projected_schema = schema.project(node.columns)
            projected = [{c: r[c] for c in node.columns} for r in rows]
            return projected_schema, projected
        if isinstance(node, DistinctNode):
            schema, rows = self._run(node.child, stats)
            seen: set[tuple[Any, ...]] = set()
            unique = []
            for row in rows:
                key = tuple(row[c] for c in schema.column_names)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            return schema, unique
        if isinstance(node, OrderNode):
            schema, rows = self._run(node.child, stats)
            for column, _ascending in node.keys:
                if column not in schema:
                    raise ExecutionError(f"ORDER BY unknown column {column!r}")
            return schema, self._apply_order(rows, node.keys)
        if isinstance(node, CrowdOrderNode):
            return self._run_crowd_order(node, stats)
        if isinstance(node, LimitNode):
            schema, rows = self._run(node.child, stats)
            return schema, rows[: node.limit]
        if isinstance(node, AggregateNode):
            return self._run_aggregate(node, stats)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Vectorized machine-side fast paths
    # ------------------------------------------------------------------ #

    def _columnar_rows(self, node: PlanNode) -> tuple[Table, np.ndarray] | None:
        """Resolve a machine-only scan/filter subtree to (table, positions).

        Positions index the table's live row order (insertion order). Filters
        in the chain are applied vectorized, innermost first. Returns None
        when the subtree is not a pure machine-side scan/filter chain over a
        base table; callers then fall back to row-at-a-time execution.
        """
        if isinstance(node, ScanNode):
            table = self.database.table(node.table)
            return table, np.arange(len(table), dtype=np.int64)
        if isinstance(node, FilterNode) and not contains_crowd_predicate(node.predicate):
            below = self._columnar_rows(node.child)
            if below is None:
                return None
            table, pos = below
            if pos.size == 0:
                return table, pos
            batch, n = self._batch_for(table, node.predicate, pos)
            true, _null, _cnull = evaluate_tristate(node.predicate, batch, n)
            return table, pos[true]
        return None

    @staticmethod
    def _batch_for(
        table: Table, expr: Expression, pos: np.ndarray
    ) -> tuple[dict[str, ColumnVector], int]:
        """Column batch for *expr* restricted to live-order positions *pos*.

        Columns the expression references but the table lacks are left out of
        the batch so the vector evaluator raises the same "row has no column"
        error the row path does.
        """
        full = pos.size == len(table)
        batch: dict[str, ColumnVector] = {}
        for name in expr.columns():
            if name not in table.schema:
                continue
            vec = table.column_vector(name)
            if not full:
                vec = ColumnVector(vec.values[pos], vec.null[pos], vec.cnull[pos])
            batch[name] = vec
        return batch, int(pos.size)

    @staticmethod
    def _materialize(table: Table, pos: np.ndarray) -> list[dict[str, Any]]:
        """Row dicts (schema order) for live-order positions *pos*."""
        store = table.store
        rowids = table.rowids()
        return [store.row_dict(int(rowids[p])) for p in pos.tolist()]

    @staticmethod
    def _apply_order(
        rows: list[dict[str, Any]], keys: tuple[tuple[str, bool], ...]
    ) -> list[dict[str, Any]]:
        """Stable multi-key sort: apply keys minor-to-major; NULL/CNULL
        always sorts last regardless of direction."""
        ordered = list(rows)
        for column, ascending in reversed(keys):

            def missing(row: dict[str, Any], column=column) -> bool:
                value = row[column]
                return value is None or is_cnull(value)

            present = [r for r in ordered if not missing(r)]
            absent = [r for r in ordered if missing(r)]
            present.sort(key=lambda r: r[column], reverse=not ascending)
            ordered = present + absent
        return ordered

    def _vectorized_filter(self, node: FilterNode) -> tuple[Schema, list[dict[str, Any]]] | None:
        """Fuse a machine filter chain over a scan into one vectorized pass."""
        try:
            resolved = self._columnar_rows(node)
        except ExpressionError:
            # The row path short-circuits conjunctions per row, so an error
            # raised vectorized may not be reachable row-at-a-time; re-run
            # the exact per-row semantics instead of guessing.
            return None
        if resolved is None:
            return None
        table, pos = resolved
        return table.schema, self._materialize(table, pos)

    @staticmethod
    def _machine_prefix(expr: Expression) -> tuple[Expression, Expression] | None:
        """Split ``And(machine_subtree, crowd_rest)`` off a predicate tree.

        Walks the left spine of the And tree peeling crowd-dependent right
        arms; the leftmost crowd-free subtree is the machine prefix, exactly
        the unit :meth:`_eval_crowd` evaluates in one ``Expression.evaluate``
        call. Returns (prefix, rest) or None when there is no such split.
        """
        arms: list[Expression] = []
        while isinstance(expr, And) and contains_crowd_predicate(expr):
            arms.append(expr.right)
            expr = expr.left
        if not arms or contains_crowd_predicate(expr):
            return None
        arms.reverse()
        return expr, conjoin(arms)

    def _run_crowd_filter(
        self, node: CrowdFilterNode, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]]:
        fast = self._crowd_filter_prepass(node, stats)
        if fast is not None:
            return fast
        schema, rows = self._run(node.child, stats)
        kept = [r for r in rows if self._eval_crowd(node.predicate, r, stats) is True]
        return schema, kept

    def _crowd_filter_prepass(
        self, node: CrowdFilterNode, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]] | None:
        """Vectorize the machine-decidable prefix of a crowd filter.

        Only rows whose machine prefix is *definitely False* are dropped
        before crowd evaluation — rows where the prefix is NULL or
        CROWD_UNKNOWN still reach the crowd exactly as in the row path, so
        the sequence of purchased questions (and hence the platform RNG
        stream and every cache entry) is bit-identical.
        """
        if not contains_crowd_predicate(node.predicate):
            # Degenerate crowd filter over a machine predicate: pure
            # vectorized filter, no purchases at all.
            try:
                resolved = self._columnar_rows(node.child)
                if resolved is None:
                    return None
                table, pos = resolved
                if pos.size:
                    batch, n = self._batch_for(table, node.predicate, pos)
                    true, _null, _cnull = evaluate_tristate(node.predicate, batch, n)
                    pos = pos[true]
            except ExpressionError:
                return None
            return table.schema, self._materialize(table, pos)
        split = self._machine_prefix(node.predicate)
        if split is None:
            return None
        prefix, rest = split
        try:
            resolved = self._columnar_rows(node.child)
            if resolved is None:
                return None
            table, pos = resolved
            if pos.size == 0:
                return table.schema, []
            batch, n = self._batch_for(table, prefix, pos)
            true, null, cnull = evaluate_tristate(prefix, batch, n)
        except ExpressionError:
            return None
        # _eval_crowd short-circuits an And only on definite False; a NULL or
        # CROWD_UNKNOWN prefix still buys the crowd answers, and at the crowd
        # And level CROWD_UNKNOWN counts as satisfied while NULL poisons the
        # row. Mirror all three cases exactly.
        candidate = true | null | cnull
        satisfied = (true | cnull)[candidate]
        store = table.store
        rowids = table.rowids()
        kept = []
        for p, ok in zip(pos[candidate].tolist(), satisfied.tolist(), strict=True):
            row = store.row_dict(int(rowids[p]))
            if self._eval_crowd(rest, row, stats) is True and ok:
                kept.append(row)
        return table.schema, kept

    @staticmethod
    def _equi_split(
        condition: Expression, left_schema: Schema, right_schema: Schema
    ) -> tuple[list[tuple[str, str]], list[Expression]] | None:
        """Split a join condition into equi-key column pairs + residual.

        Returns ([(left_col, right_col), ...], residual_conjuncts) or None
        when no cross-schema column equality exists (or the condition needs
        the crowd), in which case callers use the nested-loop path.
        """
        if contains_crowd_predicate(condition):
            return None
        keys: list[tuple[str, str]] = []
        residual: list[Expression] = []
        for c in split_conjuncts(condition):
            if (
                isinstance(c, Comparison)
                and c.op == "="
                and isinstance(c.left, ColumnRef)
                and isinstance(c.right, ColumnRef)
            ):
                a, b = c.left.name, c.right.name
                if a in left_schema and b in right_schema:
                    keys.append((a, b))
                    continue
                if b in left_schema and a in right_schema:
                    keys.append((b, a))
                    continue
            residual.append(c)
        if not keys:
            return None
        return keys, residual

    @staticmethod
    def _join_key(values: list[Any]) -> tuple[Any, ...] | None:
        """Hashable key tuple, or None when the row cannot equi-match.

        NULL and CNULL never compare True; NaN fails ``x == x`` under the
        row path's ``==`` but would collide with itself in a dict, so all
        three are excluded from the build and probe sides.
        """
        for v in values:
            if v is None or is_cnull(v) or v != v:
                return None
        return tuple(values)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _aggregate_value(func: str, values: list[Any]) -> Any:
        """Compute one aggregate over non-NULL/non-CNULL values."""
        if func == "COUNT":
            return len(values)
        if not values:
            return None
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        raise ExecutionError(f"unknown aggregate {func!r}")

    def _run_aggregate(
        self, node: AggregateNode, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]]:
        schema, rows = self._run(node.child, stats)
        for spec in node.aggregates:
            if spec.column is not None and spec.column not in schema:
                raise ExecutionError(f"aggregate over unknown column {spec.column!r}")
        if node.group_by is not None and node.group_by not in schema:
            raise ExecutionError(f"GROUP BY unknown column {node.group_by!r}")

        def compute(bucket: list[dict[str, Any]]) -> dict[str, Any]:
            out: dict[str, Any] = {}
            for spec in node.aggregates:
                if spec.column is None:
                    out[spec.output_name] = len(bucket)
                    continue
                values = [
                    row[spec.column]
                    for row in bucket
                    if row[spec.column] is not None and not is_cnull(row[spec.column])
                ]
                if spec.func in ("SUM", "AVG") and any(
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                    for v in values
                ):
                    raise ExecutionError(
                        f"{spec.func} requires numeric values in {spec.column!r}"
                    )
                out[spec.output_name] = self._aggregate_value(spec.func, values)
            return out

        # Result schema: grouping column (if any) + one column per aggregate.
        columns: list[Column] = []
        if node.group_by is not None:
            columns.append(Column(node.group_by, schema.column(node.group_by).ctype))
        for spec in node.aggregates:
            if spec.func == "COUNT":
                ctype = ColumnType.INTEGER
            elif spec.func in ("SUM", "AVG"):
                ctype = ColumnType.FLOAT
            else:  # MIN / MAX inherit the source column type
                ctype = schema.column(spec.column).ctype  # type: ignore[arg-type]
            columns.append(Column(spec.output_name, ctype))
        out_schema = Schema(columns)

        if node.group_by is None:
            return out_schema, [compute(rows)]
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for row in rows:
            buckets.setdefault(row[node.group_by], []).append(row)
        result_rows = []
        for key in sorted(buckets, key=repr):
            grouped = compute(buckets[key])
            grouped = {node.group_by: key, **grouped}
            result_rows.append(grouped)
        return out_schema, result_rows

    # ------------------------------------------------------------------ #
    # Crowd-powered pieces
    # ------------------------------------------------------------------ #

    def _run_fill(
        self, node: FillNode, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]]:
        table = self.database.table(node.table)
        pending = [c for c in table.cnull_cells() if c[1] in set(node.columns)]
        if pending:
            if self.oracle.fill_fn is None:
                raise ExecutionError(
                    f"table {node.table!r} has {len(pending)} unresolved CNULL "
                    f"cell(s) in {node.columns!r} but no fill oracle is configured"
                )
            before = self.platform.stats.cost_spent
            filler = CrowdFill(
                self.platform,
                truth_fn=self.oracle.fill_fn,
                redundancy=self.redundancy,
                inference=self.inference,
            )
            result = filler.run(table, columns=node.columns)
            stats.cells_filled += result.filled_cells
            stats.crowd_questions += result.filled_cells
            stats.crowd_answers += result.questions_asked
            stats.crowd_cost += self.platform.stats.cost_spent - before
        schema, rows = self._run(node.child, stats)
        # Re-read from the (now filled) table rows when the child is a scan.
        if isinstance(node.child, ScanNode):
            rows = [row.as_dict() for row in table]
        return schema, rows

    def _run_join(
        self,
        node: JoinNode | CrowdJoinNode,
        stats: ExecutionStats,
        crowd: bool,
    ) -> tuple[Schema, list[dict[str, Any]]]:
        if not crowd:
            fast = self._columnar_join(node)
            if fast is not None:
                return fast
        left_schema, left_rows = self._run(node.left, stats)
        right_schema, right_rows = self._run(node.right, stats)
        joined_schema = left_schema.join(right_schema, "left", "right")
        clashes = set(left_schema.column_names) & set(right_schema.column_names)
        if clashes:
            raise ExecutionError(
                f"join inputs share column name(s) {sorted(clashes)}; "
                "rename columns so names are unique"
            )
        out = []
        if crowd:
            with operator_span(
                self.platform, "crowdjoin", left=len(left_rows), right=len(right_rows)
            ) as span:
                for lrow in left_rows:
                    for rrow in right_rows:
                        merged = {**lrow, **rrow}
                        if self._eval_crowd(node.condition, merged, stats) is True:
                            out.append(merged)
                span.set_tag("matched", len(out))
        else:
            out = self._machine_join(
                left_schema, right_schema, left_rows, right_rows, node.condition
            )
        return joined_schema, out

    def _machine_join(
        self,
        left_schema: Schema,
        right_schema: Schema,
        left_rows: list[dict[str, Any]],
        right_rows: list[dict[str, Any]],
        condition: Expression,
    ) -> list[dict[str, Any]]:
        """Machine join over materialized rows: hash on equi keys if any."""
        split = self._equi_split(condition, left_schema, right_schema)
        if split is None:
            out = []
            for lrow in left_rows:
                for rrow in right_rows:
                    merged = {**lrow, **rrow}
                    if condition.evaluate(merged) is True:
                        out.append(merged)
            return out
        keys, residual = split
        lcols = [a for a, _ in keys]
        rcols = [b for _, b in keys]
        index: dict[tuple[Any, ...], list[int]] = {}
        for i, rrow in enumerate(right_rows):
            key = self._join_key([rrow[c] for c in rcols])
            if key is not None:
                index.setdefault(key, []).append(i)
        res_expr = conjoin(residual) if residual else None
        out = []
        for lrow in left_rows:
            key = self._join_key([lrow[c] for c in lcols])
            if key is None:
                continue
            for i in index.get(key, ()):
                merged = {**lrow, **right_rows[i]}
                if res_expr is None or res_expr.evaluate(merged) is True:
                    out.append(merged)
        return out

    def _columnar_join(
        self, node: JoinNode
    ) -> tuple[Schema, list[dict[str, Any]]] | None:
        """Equi-join two machine scan/filter chains on their column arrays.

        Build/probe happens on key arrays before any row dict exists; only
        matched pairs materialize. Output order is the nested-loop order —
        left rows in order, each left row's matches in right insertion
        order — so results are bit-identical to the fallback.
        """
        try:
            lres = self._columnar_rows(node.left)
            rres = self._columnar_rows(node.right) if lres is not None else None
        except ExpressionError:
            return None
        if lres is None or rres is None:
            return None
        ltab, lpos = lres
        rtab, rpos = rres
        left_schema, right_schema = ltab.schema, rtab.schema
        joined_schema = left_schema.join(right_schema, "left", "right")
        clashes = set(left_schema.column_names) & set(right_schema.column_names)
        if clashes:
            raise ExecutionError(
                f"join inputs share column name(s) {sorted(clashes)}; "
                "rename columns so names are unique"
            )
        split = self._equi_split(node.condition, left_schema, right_schema)
        if split is None:
            return None
        keys, residual = split
        lcols = [a for a, _ in keys]
        rcols = [b for _, b in keys]
        lkeys = self._key_columns(ltab, lpos, lcols)
        rkeys = self._key_columns(rtab, rpos, rcols)
        if (
            len(keys) == 1
            and lkeys[0][0].dtype == rkeys[0][0].dtype
            and lkeys[0][0].dtype.kind in "bif"
        ):
            lmatch, rmatch = self._probe_sorted(lkeys[0], rkeys[0])
        else:
            lmatch, rmatch = self._probe_dict(lkeys, rkeys)
        res_expr = conjoin(residual) if residual else None
        lrids = ltab.rowids()[lpos] if lpos.size != len(ltab) else ltab.rowids()
        rrids = rtab.rowids()[rpos] if rpos.size != len(rtab) else rtab.rowids()
        lstore, rstore = ltab.store, rtab.store
        lcache: dict[int, dict[str, Any]] = {}
        rcache: dict[int, dict[str, Any]] = {}
        out = []
        for lp, rp in zip(lmatch.tolist(), rmatch.tolist(), strict=True):
            lrow = lcache.get(lp)
            if lrow is None:
                lrow = lcache[lp] = lstore.row_dict(int(lrids[lp]))
            rrow = rcache.get(rp)
            if rrow is None:
                rrow = rcache[rp] = rstore.row_dict(int(rrids[rp]))
            merged = {**lrow, **rrow}
            if res_expr is None or res_expr.evaluate(merged) is True:
                out.append(merged)
        return joined_schema, out

    @staticmethod
    def _key_columns(
        table: Table, pos: np.ndarray, cols: list[str]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """(values, usable) per key column, restricted to positions *pos*.

        ``usable`` clears NULL/CNULL cells and float NaNs — cells that can
        never equi-match under the row path's ``==`` semantics.
        """
        out = []
        full = pos.size == len(table)
        for name in cols:
            vec = table.column_vector(name)
            values = vec.values if full else vec.values[pos]
            usable = vec.defined if full else vec.defined[pos]
            if values.dtype.kind == "f":
                usable = usable & ~np.isnan(values)
            out.append((values, usable))
        return out

    @staticmethod
    def _probe_sorted(
        lkey: tuple[np.ndarray, np.ndarray], rkey: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-key same-dtype build/probe via stable sort + searchsorted.

        Returns parallel (left_position, right_position) match arrays in
        nested-loop emission order.
        """
        lvals, lok = lkey
        rvals, rok = rkey
        li = np.flatnonzero(lok)
        ri = np.flatnonzero(rok)
        build = rvals[ri]
        order = np.argsort(build, kind="stable")
        skeys = build[order]
        probe = lvals[li]
        lo = np.searchsorted(skeys, probe, side="left")
        hi = np.searchsorted(skeys, probe, side="right")
        counts = hi - lo
        has = counts > 0
        counts = counts[has]
        total = int(counts.sum())
        starts = np.repeat(lo[has], counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        rmatch = ri[order[starts + offsets]]
        lmatch = np.repeat(li[has], counts)
        return lmatch, rmatch

    @staticmethod
    def _probe_dict(
        lkeys: list[tuple[np.ndarray, np.ndarray]],
        rkeys: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Composite/mixed-type build/probe through a Python dict.

        Tuple keys bucket by Python ``==``/``hash``, the same equality the
        row path's ``=`` comparator uses (so 1 and 1.0 share a bucket).
        """
        rok = rkeys[0][1]
        for _, usable in rkeys[1:]:
            rok = rok & usable
        rlists = [values.tolist() for values, _ in rkeys]
        index: dict[tuple[Any, ...], list[int]] = {}
        for i in np.flatnonzero(rok).tolist():
            index.setdefault(tuple(lst[i] for lst in rlists), []).append(i)
        lok = lkeys[0][1]
        for _, usable in lkeys[1:]:
            lok = lok & usable
        llists = [values.tolist() for values, _ in lkeys]
        lmatch: list[int] = []
        rmatch: list[int] = []
        for i in np.flatnonzero(lok).tolist():
            bucket = index.get(tuple(lst[i] for lst in llists))
            if bucket:
                lmatch.extend([i] * len(bucket))
                rmatch.extend(bucket)
        return np.asarray(lmatch, dtype=np.int64), np.asarray(rmatch, dtype=np.int64)

    def _run_crowd_order(
        self, node: CrowdOrderNode, stats: ExecutionStats
    ) -> tuple[Schema, list[dict[str, Any]]]:
        schema, rows = self._run(node.child, stats)
        if node.column not in schema:
            raise ExecutionError(f"CROWDORDER BY unknown column {node.column!r}")
        if len(rows) < 2:
            return schema, rows
        values = [row[node.column] for row in rows]
        score_fn = self.oracle.order_score_fn
        if score_fn is None:
            if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
                score_fn = float
            else:
                raise ExecutionError(
                    "CROWDORDER BY over non-numeric values requires an "
                    "order_score_fn oracle"
                )
        before = self.platform.stats.cost_spent
        comparator = CrowdComparator(
            self.platform,
            values,
            score_fn,
            redundancy=self.redundancy,
            inference=self.inference,
        )
        result = merge_sort_crowd(comparator)
        stats.crowd_questions += result.comparisons_asked
        stats.crowd_answers += result.answers_bought
        stats.crowd_cost += self.platform.stats.cost_spent - before
        order = result.order if not node.ascending else list(reversed(result.order))
        return schema, [rows[i] for i in order]

    # ------------------------------------------------------------------ #
    # Crowd-aware expression evaluation
    # ------------------------------------------------------------------ #

    def _eval_crowd(self, expr: Expression, row: dict[str, Any], stats: ExecutionStats) -> Any:
        """Evaluate *expr* on *row*, buying crowd answers as needed."""
        if isinstance(expr, CrowdPredicate):
            return self._resolve_predicate(expr, row, stats)
        if not contains_crowd_predicate(expr):
            return expr.evaluate(row)
        if isinstance(expr, And):
            lhs = self._eval_crowd(expr.left, row, stats)
            if lhs is False:
                return False
            rhs = self._eval_crowd(expr.right, row, stats)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        if isinstance(expr, Or):
            lhs = self._eval_crowd(expr.left, row, stats)
            if lhs is True:
                return True
            rhs = self._eval_crowd(expr.right, row, stats)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        if isinstance(expr, Not):
            value = self._eval_crowd(expr.operand, row, stats)
            if value is None or is_crowd_unknown(value):
                return value
            return not value
        raise ExecutionError(
            f"crowd predicates may appear only under AND/OR/NOT, not inside "
            f"{type(expr).__name__}"
        )

    def _crowd_question(
        self, predicate: CrowdPredicate, row: dict[str, Any]
    ) -> tuple[str, tuple[Any, ...]]:
        """Render *predicate* against *row* into the HIT question text."""
        values = predicate.operand_values(row)
        if predicate.kind == "equal":
            if len(values) != 2:
                raise ExecutionError("CROWDEQUAL takes exactly two operands")
            question = f"Do these refer to the same thing? A: {values[0]} | B: {values[1]}"
        elif predicate.kind == "filter":
            if len(values) != 1:
                raise ExecutionError("CROWDFILTER takes exactly one operand")
            question = f"{predicate.question} — value: {values[0]}"
        elif predicate.kind == "order":
            if len(values) != 2:
                raise ExecutionError("CROWDORDER takes exactly two operands")
            question = f"Does A rank at least as high as B? A: {values[0]} | B: {values[1]}"
        else:
            raise ExecutionError(f"unknown crowd predicate kind {predicate.kind!r}")
        return question, values

    def _plan_task(
        self,
        predicate: CrowdPredicate,
        question: str,
        values: tuple[Any, ...],
        stats: ExecutionStats,
    ) -> Task | None:
        """Build the yes/no task for *predicate*, or None when pruned."""
        if predicate.kind == "equal":
            a, b = values
            prune = self.oracle.equal_similarity_prune
            if (
                prune is not None
                and isinstance(a, str)
                and isinstance(b, str)
                and jaccard_tokens(a, b) < prune
            ):
                stats.pairs_pruned += 1
                return None
            truth = self.oracle.equal_fn(a, b)
        elif predicate.kind == "filter":
            if self.oracle.filter_fn is None:
                raise ExecutionError(
                    "query uses CROWDFILTER but no filter oracle is configured"
                )
            truth = self.oracle.filter_fn(values[0], predicate.question)
        else:
            score = self.oracle.order_score_fn or (
                lambda v: float(v) if isinstance(v, (int, float)) else 0.0
            )
            truth = score(values[0]) >= score(values[1])
        return Task(
            TaskType.SINGLE_CHOICE,
            question=question,
            options=(YES, NO),
            truth=YES if truth else NO,
        )

    def _verdict_from(self, task: Task, answers: list[Any]) -> bool:
        """Infer the yes/no verdict for *task* from its collected votes."""
        if answers:
            return self.inference.infer({task.task_id: answers}).truths[task.task_id] == YES
        # Skip/degrade failure policy: no votes came back — conservatively
        # treat the predicate as not satisfied rather than crashing.
        return False

    def _resolve_predicate(
        self, predicate: CrowdPredicate, row: dict[str, Any], stats: ExecutionStats
    ) -> bool:
        question, values = self._crowd_question(predicate, row)
        signature = signature_of(TaskType.SINGLE_CHOICE, question, (YES, NO))
        if signature in self._verdicts:
            return self._verdicts[signature]

        task = self._plan_task(predicate, question, values, stats)
        if task is None:
            self._verdicts[signature] = False
            return False

        before = self.platform.stats.cost_spent
        collected = self.platform.collect_batch([task], redundancy=self.redundancy)
        answers = collected.get(task.task_id, [])
        verdict = self._verdict_from(task, answers)
        stats.crowd_questions += 1
        stats.crowd_answers += len(answers)
        stats.crowd_cost += self.platform.stats.cost_spent - before
        self._verdicts[signature] = verdict
        return verdict
