"""Tokenizer for the CrowdSQL dialect.

Hand-written scanner producing a flat token stream. Keywords are
case-insensitive; identifiers preserve case. String literals use single
quotes with ``''`` as the escape, SQL-style.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError


class TokenType(enum.Enum):
    """Lexical categories produced by the scanner."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IS", "IN", "NULL",
    "CNULL", "CREATE", "CROWD", "TABLE", "DROP", "INSERT", "INTO", "VALUES",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "JOIN", "ON", "AS", "PRIMARY",
    "KEY", "STRING", "INTEGER", "FLOAT", "BOOLEAN", "TEXT", "INT", "TRUE",
    "FALSE", "CROWDEQUAL", "CROWDORDER", "CROWDFILTER", "CROWDJOIN",
    "IF", "EXISTS", "GROUP", "COUNT", "DISTINCT", "STAR",
    "SUM", "AVG", "MIN", "MAX", "HAVING", "UPDATE", "SET", "DELETE",
    "EXPLAIN",
}

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the named keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Scan *text* into tokens (always ending with an EOF token)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # line comment
            while i < n and text[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, column
        if ch == "'":
            # SQL string literal with '' escape.
            advance(1)
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start_line, start_col)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chunks.append("'")
                        advance(2)
                        continue
                    advance(1)
                    break
                chunks.append(text[i])
                advance(1)
            tokens.append(Token(TokenType.STRING, "".join(chunks), start_line, start_col))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is punctuation (t.col).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            value: Any = float(literal) if "." in literal else int(literal)
            advance(j - i)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            advance(j - i)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_col))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start_line, start_col))
            continue
        matched_operator = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_operator = op
                break
        if matched_operator:
            advance(len(matched_operator))
            normalized = "!=" if matched_operator == "<>" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, normalized, start_line, start_col))
            continue
        if ch in _PUNCT:
            advance(1)
            tokens.append(Token(TokenType.PUNCT, ch, start_line, start_col))
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens


def iter_statements(tokens: list[Token]) -> Iterator[list[Token]]:
    """Split a token stream on top-level semicolons (each chunk + EOF)."""
    current: list[Token] = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.PUNCT and token.value == ";":
            if current:
                current.append(Token(TokenType.EOF, None, token.line, token.column))
                yield current
                current = []
            continue
        current.append(token)
    if current:
        last = current[-1]
        current.append(Token(TokenType.EOF, None, last.line, last.column))
        yield current
