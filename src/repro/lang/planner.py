"""Logical plans for CrowdSQL queries.

The planner translates a parsed SELECT into a tree of logical operators.
Crowd work appears explicitly in the plan (CrowdFilterNode, CrowdJoinNode,
CrowdOrderNode, FillNode), which is what lets the optimizer reason about
*where the money goes* — the core idea of the declarative systems
(CrowdDB / Deco / CrowdOP) the tutorial profiles.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.expressions import (
    CrowdPredicate,
    Expression,
    contains_crowd_predicate,
)
from repro.errors import PlanError
from repro.lang.ast_nodes import Select


@dataclass
class PlanNode:
    """Base logical operator."""

    def children(self) -> tuple["PlanNode", ...]:
        """Direct child operators (inputs), left to right."""
        return ()

    def describe(self) -> str:
        """One-line label used by EXPLAIN output."""
        return type(self).__name__

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    table: str

    def describe(self) -> str:
        return f"Scan({self.table})"


@dataclass
class FillNode(PlanNode):
    """Resolve CNULL cells of the child's base table for given columns."""

    child: PlanNode
    table: str
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"CrowdFill({self.table}: {', '.join(self.columns)})"


@dataclass
class FilterNode(PlanNode):
    """Machine-evaluable predicate."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass
class CrowdFilterNode(PlanNode):
    """Predicate requiring crowd answers (contains a CrowdPredicate)."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"CrowdFilter({self.predicate!r})"


@dataclass
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    condition: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Join({self.condition!r})"


@dataclass
class CrowdJoinNode(PlanNode):
    """Join whose condition needs the crowd (CROWDJOIN / crowd predicate)."""

    left: PlanNode
    right: PlanNode
    condition: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"CrowdJoin({self.condition!r})"


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class OrderNode(PlanNode):
    child: PlanNode
    keys: tuple[tuple[str, bool], ...]   # (column, ascending), major first

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(
            f"{column} {'ASC' if ascending else 'DESC'}"
            for column, ascending in self.keys
        )
        return f"Order({rendered})"


@dataclass
class CrowdOrderNode(PlanNode):
    child: PlanNode
    column: str
    ascending: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"CrowdOrder({self.column} {'ASC' if self.ascending else 'DESC'})"


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class AggregateNode(PlanNode):
    """COUNT/SUM/AVG/MIN/MAX, optionally grouped by one column."""

    child: PlanNode
    aggregates: tuple  # tuple[AggregateSpec, ...] (avoid an import cycle)
    group_by: str | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = ", ".join(a.output_name for a in self.aggregates)
        suffix = f" GROUP BY {self.group_by}" if self.group_by else ""
        return f"Aggregate({parts}{suffix})"


@dataclass
class LogicalPlan:
    """Root wrapper, with bookkeeping for EXPLAIN output."""

    root: PlanNode
    notes: list[str] = field(default_factory=list)

    def explain(self) -> str:
        """Indented tree rendering plus optimizer notes."""
        lines: list[str] = []

        def render(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children():
                render(child, depth + 1)

        render(self.root, 0)
        if self.notes:
            lines.append("-- " + "; ".join(self.notes))
        return "\n".join(lines)


def _referenced_crowd_columns(
    database: Database, table: str, select: Select
) -> tuple[str, ...]:
    """Crowd columns of *table* the query touches that still hold CNULLs.

    Plans are built per execution, so consulting current catalog state is
    sound; a table with no unresolved cells needs no FillNode.
    """
    base_table = database.table(table)
    schema = base_table.schema
    pending = {column for _rowid, column in base_table.cnull_cells()}
    crowd_cols = {c.name for c in schema.crowd_columns} & pending
    if not crowd_cols:
        return ()
    referenced: set[str] = set()
    if select.columns or select.aggregates:
        referenced |= set(select.columns)
        referenced |= {a.column for a in select.aggregates if a.column is not None}
        if select.group_by is not None:
            referenced.add(select.group_by)
    else:
        referenced |= set(schema.column_names)
    if select.where is not None:
        referenced |= select.where.columns()
    for join in select.joins:
        if join.condition is not None:
            referenced |= join.condition.columns()
    for spec in select.order:
        referenced.add(spec.column)
    if select.crowd_order is not None:
        referenced.add(select.crowd_order.column)
    return tuple(sorted(referenced & crowd_cols))


def build_plan(select: Select, database: Database) -> LogicalPlan:
    """Translate a SELECT AST into an (unoptimized) logical plan."""
    if select.table not in database:
        raise PlanError(f"unknown table {select.table!r}")
    plan: PlanNode = ScanNode(select.table)
    notes: list[str] = []

    fill_columns = _referenced_crowd_columns(database, select.table, select)
    if fill_columns:
        plan = FillNode(plan, select.table, fill_columns)
        notes.append(f"crowd-fill {select.table}({', '.join(fill_columns)})")

    for join in select.joins:
        if join.table not in database:
            raise PlanError(f"unknown table {join.table!r}")
        right: PlanNode = ScanNode(join.table)
        right_fill = _referenced_crowd_columns(database, join.table, select)
        if right_fill:
            right = FillNode(right, join.table, right_fill)
            notes.append(f"crowd-fill {join.table}({', '.join(right_fill)})")
        if join.condition is None:
            raise PlanError("join requires an ON condition")
        crowd = join.crowd or contains_crowd_predicate(join.condition)
        if crowd:
            plan = CrowdJoinNode(plan, right, join.condition)
        else:
            plan = JoinNode(plan, right, join.condition)

    if select.where is not None:
        if contains_crowd_predicate(select.where):
            plan = CrowdFilterNode(plan, select.where)
        else:
            plan = FilterNode(plan, select.where)

    if select.aggregates:
        plan = AggregateNode(plan, select.aggregates, group_by=select.group_by)
        if select.having is not None:
            plan = FilterNode(plan, select.having)

    if select.crowd_order is not None:
        plan = CrowdOrderNode(
            plan, select.crowd_order.column, ascending=select.crowd_order.ascending
        )
    elif select.order:
        plan = OrderNode(
            plan,
            tuple((spec.column, spec.ascending) for spec in select.order),
        )

    if select.columns and not select.aggregates:
        plan = ProjectNode(plan, select.columns)

    # DISTINCT applies to the projected columns (SQL semantics), so the
    # Distinct node sits above the projection.
    if select.distinct:
        plan = DistinctNode(plan)

    if select.limit is not None:
        plan = LimitNode(plan, select.limit)

    return LogicalPlan(root=plan, notes=notes)


def count_crowd_operators(plan: LogicalPlan) -> int:
    """How many crowd-powered operators the plan contains (for tests/EXPLAIN)."""
    crowd_types = (CrowdFilterNode, CrowdJoinNode, CrowdOrderNode, FillNode)
    return sum(1 for node in plan.root.walk() if isinstance(node, crowd_types))


def crowd_predicates_of(expression: Expression) -> list[CrowdPredicate]:
    """All CrowdPredicate nodes inside an expression tree."""
    found: list[CrowdPredicate] = []

    def visit(node: Expression) -> None:
        if isinstance(node, CrowdPredicate):
            found.append(node)
        for attr in ("left", "right", "operand"):
            child = getattr(node, attr, None)
            if isinstance(child, Expression):
                visit(child)
        for child in getattr(node, "operands", ()):
            if isinstance(child, Expression):
                visit(child)

    visit(expression)
    return found
