"""Recursive-descent parser for CrowdSQL.

Grammar (informal):

    script      := statement (';' statement)* [';']
    statement   := create | drop | insert | select | update | delete | explain
    create      := CREATE [CROWD] TABLE [IF NOT EXISTS] name
                   '(' coldef (',' coldef)* [',' PRIMARY KEY '(' names ')'] ')'
    coldef      := name type [CROWD] [NOT NULL]
    type        := STRING | TEXT | INTEGER | INT | FLOAT | BOOLEAN
    drop        := DROP TABLE [IF EXISTS] name
    insert      := INSERT INTO name ['(' names ')'] VALUES tuple (',' tuple)*
    update      := UPDATE name SET col '=' literal (',' col '=' literal)*
                   [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]
    explain     := EXPLAIN select
    select      := SELECT [DISTINCT] items FROM name [AS alias]
                   (JOIN name [AS alias] ON expr | CROWDJOIN name [AS alias] ON expr)*
                   [WHERE expr]
                   [GROUP BY name] [HAVING having_expr]
                   [ORDER BY name [ASC|DESC] | CROWDORDER BY name [ASC|DESC]]
                   [LIMIT n]
    items       := item (',' item)*      -- column names and/or aggregates
    item        := name | COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' name ')'
    expr        := or_expr with NOT/comparison/IS [NOT] NULL/IS [NOT] CNULL/
                   IN list/CROWDEQUAL(e, e)/CROWDFILTER(e, 'question')

Expressions are built directly as :mod:`repro.data.expressions` trees.
Qualified names ``t.col`` are accepted and resolved to ``col`` (aliases are
a readability feature; the executor requires join-input column names to be
unique, which :class:`~repro.data.schema.Schema.join` enforces by prefixing
clashes).
"""

from __future__ import annotations

from typing import Any

from repro.data.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    CrowdPredicate,
    Expression,
    InList,
    IsCNull,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.data.schema import CNULL
from repro.errors import ParseError
from repro.lang.ast_nodes import (
    AggregateSpec,
    ColumnDef,
    CreateTable,
    CrowdOrderSpec,
    Delete,
    DropTable,
    Explain,
    Insert,
    JoinClause,
    OrderSpec,
    ParsedScript,
    Select,
    Statement,
    Update,
)

from repro.lang.lexer import Token, TokenType, iter_statements, tokenize

_AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

_TYPE_ALIASES = {
    "STRING": "STRING",
    "TEXT": "STRING",
    "INTEGER": "INTEGER",
    "INT": "INTEGER",
    "FLOAT": "FLOAT",
    "BOOLEAN": "BOOLEAN",
}


class _Parser:
    """One statement's token cursor."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------ cursor ------------------------------ #

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message} (got {token.value!r})", token.line, token.column)

    def expect_keyword(self, *names: str) -> Token:
        if self.current.is_keyword(*names):
            return self.advance()
        raise self.error(f"expected {' or '.join(names)}")

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> Token:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == symbol:
            return self.advance()
        raise self.error(f"expected {symbol!r}")

    def accept_punct(self, symbol: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_identifier(self) -> str:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        # Allow non-reserved-looking keywords as identifiers where unambiguous.
        raise self.error("expected identifier")

    def qualified_name(self) -> str:
        """identifier ['.' identifier] -> unqualified column name."""
        first = self.expect_identifier()
        if self.accept_punct("."):
            return self.expect_identifier()
        return first

    # ---------------------------- statements ---------------------------- #

    def parse_statement(self) -> Statement:
        if self.current.is_keyword("CREATE"):
            return self.parse_create()
        if self.current.is_keyword("DROP"):
            return self.parse_drop()
        if self.current.is_keyword("INSERT"):
            return self.parse_insert()
        if self.current.is_keyword("SELECT"):
            return self.parse_select()
        if self.current.is_keyword("UPDATE"):
            return self.parse_update()
        if self.current.is_keyword("DELETE"):
            return self.parse_delete()
        if self.current.is_keyword("EXPLAIN"):
            self.advance()
            select = self.parse_statement()
            if not isinstance(select, Select):
                raise self.error("EXPLAIN supports SELECT statements only")
            return Explain(select=select)
        raise self.error(
            "expected CREATE, DROP, INSERT, SELECT, UPDATE, DELETE, or EXPLAIN"
        )

    def parse_create(self) -> CreateTable:
        self.expect_keyword("CREATE")
        crowd_table = self.accept_keyword("CROWD")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier()
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.current.is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_punct("(")
                keys = [self.expect_identifier()]
                while self.accept_punct(","):
                    keys.append(self.expect_identifier())
                self.expect_punct(")")
                primary_key = tuple(keys)
            else:
                col_name = self.expect_identifier()
                type_token = self.advance()
                is_keyword = type_token.type is TokenType.KEYWORD
                if not is_keyword or type_token.value not in _TYPE_ALIASES:
                    raise ParseError(
                        f"unknown column type {type_token.value!r}",
                        type_token.line,
                        type_token.column,
                    )
                crowd = self.accept_keyword("CROWD")
                not_null = False
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    not_null = True
                columns.append(
                    ColumnDef(col_name, _TYPE_ALIASES[type_token.value], crowd, not_null)
                )
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return CreateTable(
            name=name,
            columns=tuple(columns),
            primary_key=primary_key,
            crowd_table=crowd_table,
            if_not_exists=if_not_exists,
        )

    def parse_drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTable(name=self.expect_identifier(), if_exists=if_exists)

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier()]
            while self.accept_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows: list[tuple[Any, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_literal_value()]
            while self.accept_punct(","):
                values.append(self.parse_literal_value())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return Insert(table=table, columns=columns, rows=tuple(rows))

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_identifier()
            token = self.current
            if token.type is not TokenType.OPERATOR or token.value != "=":
                raise self.error("expected '=' in SET assignment")
            self.advance()
            assignments.append((column, self.parse_literal_value()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return Update(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return Delete(table=table, where=where)

    def parse_literal_value(self) -> Any:
        token = self.current
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.is_keyword("NULL"):
            self.advance()
            return None
        if token.is_keyword("CNULL"):
            self.advance()
            return CNULL
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        if token.type is TokenType.OPERATOR and token.value == "-":
            self.advance()
            number = self.current
            if number.type is TokenType.NUMBER:
                self.advance()
                return -number.value
            raise self.error("expected number after unary minus")
        raise self.error("expected literal value")

    def parse_select_item(self) -> str | AggregateSpec:
        """One select-list item: a column name or an aggregate call."""
        if self.current.is_keyword(*_AGGREGATE_FUNCS):
            func = self.advance().value
            self.expect_punct("(")
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                if func != "COUNT":
                    raise self.error(f"{func}(*) is not supported; only COUNT(*)")
                self.advance()
                column = None
            else:
                column = self.qualified_name()
            self.expect_punct(")")
            return AggregateSpec(func=func, column=column)
        return self.qualified_name()

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        columns: tuple[str, ...] = ()
        aggregates: tuple[AggregateSpec, ...] = ()
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
        else:
            items = [self.parse_select_item()]
            while self.accept_punct(","):
                items.append(self.parse_select_item())
            columns = tuple(i for i in items if isinstance(i, str))
            aggregates = tuple(i for i in items if isinstance(i, AggregateSpec))
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value

        joins: list[JoinClause] = []
        while self.current.is_keyword("JOIN", "CROWDJOIN"):
            crowd = self.advance().value == "CROWDJOIN"
            join_table = self.expect_identifier()
            join_alias = None
            if self.accept_keyword("AS"):
                join_alias = self.expect_identifier()
            elif self.current.type is TokenType.IDENTIFIER:
                join_alias = self.advance().value
            self.expect_keyword("ON")
            condition = self.parse_expression()
            joins.append(JoinClause(join_table, join_alias, condition, crowd=crowd))

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()

        group_by = None
        having = None
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = self.qualified_name()
        if self.current.is_keyword("HAVING"):
            if not aggregates:
                raise self.error("HAVING requires aggregates")
            self.advance()
            having = self.parse_having_expression()
        if aggregates:
            extra = set(columns) - ({group_by} if group_by else set())
            if extra:
                raise self.error(
                    f"non-aggregated column(s) {sorted(extra)} require GROUP BY"
                )
        elif group_by is not None:
            raise self.error("GROUP BY requires at least one aggregate")

        order: tuple[OrderSpec, ...] = ()
        crowd_order = None
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            specs = []
            while True:
                column = self.qualified_name()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                specs.append(OrderSpec(column=column, ascending=ascending))
                if not self.accept_punct(","):
                    break
            order = tuple(specs)
        elif self.current.is_keyword("CROWDORDER"):
            self.advance()
            self.expect_keyword("BY")
            column = self.qualified_name()
            ascending = False
            if self.accept_keyword("ASC"):
                ascending = True
            else:
                self.accept_keyword("DESC")
            crowd_order = CrowdOrderSpec(column=column, ascending=ascending)

        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = token.value

        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return Select(
            columns=columns,
            table=table,
            alias=alias,
            joins=tuple(joins),
            where=where,
            order=order,
            crowd_order=crowd_order,
            limit=limit,
            distinct=distinct,
            aggregates=aggregates,
            group_by=group_by,
            having=having,
        )

    # --------------------------- expressions ---------------------------- #

    def parse_having_expression(self) -> Expression:
        """HAVING predicate: aggregate calls become refs to output columns."""
        self._in_having = True
        try:
            return self.parse_expression()
        finally:
            self._in_having = False

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return Comparison(token.value, left, right)
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            if self.accept_keyword("NULL"):
                return IsNull(left, negated=negated)
            if self.accept_keyword("CNULL"):
                return IsCNull(left, negated=negated)
            raise self.error("expected NULL or CNULL after IS")
        if token.is_keyword("IN") or token.is_keyword("NOT"):
            negated = False
            if token.is_keyword("NOT"):
                # lookahead: NOT IN
                saved = self.pos
                self.advance()
                if not self.current.is_keyword("IN"):
                    self.pos = saved
                    return left
                negated = True
            self.expect_keyword("IN")
            self.expect_punct("(")
            values = [self.parse_literal_value()]
            while self.accept_punct(","):
                values.append(self.parse_literal_value())
            self.expect_punct(")")
            return InList(left, tuple(values), negated=negated)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("+", "-")
        ):
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_primary()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("*", "/")
        ):
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_primary())
        return left

    def parse_primary(self) -> Expression:
        token = self.current
        if getattr(self, "_in_having", False) and token.is_keyword(*_AGGREGATE_FUNCS):
            func = self.advance().value
            self.expect_punct("(")
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                if func != "COUNT":
                    raise self.error(f"{func}(*) is not supported; only COUNT(*)")
                self.advance()
                column = None
            else:
                column = self.qualified_name()
            self.expect_punct(")")
            return ColumnRef(AggregateSpec(func=func, column=column).output_name)
        if token.is_keyword("CROWDEQUAL"):
            self.advance()
            self.expect_punct("(")
            first = self.parse_expression()
            self.expect_punct(",")
            second = self.parse_expression()
            self.expect_punct(")")
            return CrowdPredicate("equal", (first, second))
        if token.is_keyword("CROWDFILTER"):
            self.advance()
            self.expect_punct("(")
            operand = self.parse_expression()
            self.expect_punct(",")
            question_token = self.current
            if question_token.type is not TokenType.STRING:
                raise self.error("CROWDFILTER expects a quoted question")
            self.advance()
            self.expect_punct(")")
            return CrowdPredicate("filter", (operand,), question=question_token.value)
        if token.is_keyword("CROWDORDER"):
            self.advance()
            self.expect_punct("(")
            first = self.parse_expression()
            self.expect_punct(",")
            second = self.parse_expression()
            self.expect_punct(")")
            return CrowdPredicate("order", (first, second))
        if self.accept_punct("("):
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("CNULL"):
            self.advance()
            return Literal(CNULL)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.type is TokenType.OPERATOR and token.value == "-":
            self.advance()
            return Arithmetic("-", Literal(0), self.parse_primary())
        if token.type is TokenType.IDENTIFIER:
            return ColumnRef(self.qualified_name())
        raise self.error("expected expression")


def parse(sql: str) -> ParsedScript:
    """Parse a script of ';'-separated CrowdSQL statements."""
    script = ParsedScript()
    for statement_tokens in iter_statements(tokenize(sql)):
        parser = _Parser(statement_tokens)
        script.statements.append(parser.parse_statement())
    if not script.statements:
        raise ParseError("empty SQL script")
    return script


def parse_one(sql: str) -> Statement:
    """Parse exactly one statement."""
    script = parse(sql)
    if len(script.statements) != 1:
        raise ParseError(f"expected one statement, got {len(script.statements)}")
    return script.statements[0]
