"""Rule-based optimizer for CrowdSQL logical plans.

Crowd answers cost real money, so the optimizer's prime directive — the
CrowdOP insight — is **machine work before crowd work**:

1. *Split* conjunctive filters into separate nodes.
2. *Classify* each conjunct as machine or crowd.
3. *Push* machine filters below crowd filters (and below crowd fills when
   the filter doesn't read a crowd column) so every free predicate shrinks
   the row set before any task is purchased.
4. *Order* consecutive crowd filters by estimated cost per eliminated row:
   cheaper, more selective crowd predicates run first.

The cost model is deliberately simple (selectivity defaults per predicate
kind, cardinality from table sizes) but is enough to reproduce the
plan-quality gaps the T7 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.database import Database
from repro.data.expressions import (
    Expression,
    contains_crowd_predicate,
    split_conjuncts,
)
from repro.lang.planner import (
    AggregateNode,
    CrowdFilterNode,
    CrowdJoinNode,
    CrowdOrderNode,
    DistinctNode,
    FillNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    crowd_predicates_of,
)

#: Default selectivity guesses per predicate shape.
MACHINE_SELECTIVITY = 0.4
CROWD_EQUAL_SELECTIVITY = 0.15
CROWD_FILTER_SELECTIVITY = 0.5
CROWD_ORDER_SELECTIVITY = 0.5


@dataclass
class CostModel:
    """Estimates used to order crowd predicates."""

    redundancy: int = 3
    task_price: float = 0.01

    def crowd_filter_cost_per_row(self, predicate: Expression) -> float:
        """Expected spend to evaluate this predicate on one row."""
        n_crowd = max(1, len(crowd_predicates_of(predicate)))
        return n_crowd * self.redundancy * self.task_price

    def selectivity(self, predicate: Expression) -> float:
        """Estimated surviving-row fraction for *predicate*."""
        crowds = crowd_predicates_of(predicate)
        if not crowds:
            return MACHINE_SELECTIVITY
        kinds = {c.kind for c in crowds}
        if kinds == {"equal"}:
            return CROWD_EQUAL_SELECTIVITY
        if kinds == {"filter"}:
            return CROWD_FILTER_SELECTIVITY
        return CROWD_ORDER_SELECTIVITY

    def rank_key(self, predicate: Expression) -> float:
        """Lower = run earlier: cost weighted by how little it filters."""
        return self.crowd_filter_cost_per_row(predicate) * self.selectivity(predicate)


@dataclass
class Optimizer:
    """Applies the rewrite rules to a logical plan."""

    database: Database
    cost_model: CostModel = field(default_factory=CostModel)

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        """Return a rewritten plan (machine-first, crowd-cost ordered)."""
        root = self._rewrite(plan.root)
        notes = list(plan.notes) + ["optimized: machine-first, crowd-cost ordering"]
        return LogicalPlan(root=root, notes=notes)

    # ------------------------------------------------------------------ #

    def _rewrite(self, node: PlanNode) -> PlanNode:
        # Bottom-up: rewrite children first.
        if isinstance(node, (FilterNode, CrowdFilterNode)):
            child = self._rewrite(node.child)
            return self._rebuild_filters(child, [node.predicate])
        if isinstance(node, FillNode):
            return FillNode(self._rewrite(node.child), node.table, node.columns)
        if isinstance(node, JoinNode):
            return JoinNode(
                self._rewrite(node.left), self._rewrite(node.right), node.condition
            )
        if isinstance(node, CrowdJoinNode):
            return CrowdJoinNode(
                self._rewrite(node.left), self._rewrite(node.right), node.condition
            )
        if isinstance(node, ProjectNode):
            return ProjectNode(self._rewrite(node.child), node.columns)
        if isinstance(node, DistinctNode):
            return DistinctNode(self._rewrite(node.child))
        if isinstance(node, OrderNode):
            return OrderNode(self._rewrite(node.child), node.keys)
        if isinstance(node, CrowdOrderNode):
            return CrowdOrderNode(self._rewrite(node.child), node.column, node.ascending)
        if isinstance(node, LimitNode):
            return LimitNode(self._rewrite(node.child), node.limit)
        if isinstance(node, AggregateNode):
            return AggregateNode(
                self._rewrite(node.child), node.aggregates, node.group_by
            )
        return node

    def _rebuild_filters(self, child: PlanNode, predicates: list[Expression]) -> PlanNode:
        """Split, classify, and stack filters machine-first above *child*."""
        conjuncts: list[Expression] = []
        for predicate in predicates:
            conjuncts.extend(split_conjuncts(predicate))

        machine = [c for c in conjuncts if not contains_crowd_predicate(c)]
        crowd = [c for c in conjuncts if contains_crowd_predicate(c)]

        # Collapse adjacent pre-existing filters below (idempotent re-runs).
        while isinstance(child, (FilterNode, CrowdFilterNode)):
            inner = split_conjuncts(child.predicate)
            machine.extend(c for c in inner if not contains_crowd_predicate(c))
            crowd.extend(c for c in inner if contains_crowd_predicate(c))
            child = child.child

        # Machine filters may additionally sink below a FillNode when they
        # don't read any column the fill resolves — filtering first means
        # fewer CNULL cells bought.
        plan = child
        sinkable: list[Expression] = []
        stacked: list[Expression] = []
        if isinstance(plan, FillNode):
            fill_cols = set(plan.columns)
            for conjunct in machine:
                if conjunct.columns() & fill_cols:
                    stacked.append(conjunct)
                else:
                    sinkable.append(conjunct)
            inner: PlanNode = plan.child
            for conjunct in sinkable:
                inner = FilterNode(inner, conjunct)
            plan = FillNode(inner, plan.table, plan.columns)
        else:
            stacked = machine

        for conjunct in stacked:
            plan = FilterNode(plan, conjunct)

        # Crowd filters: cheapest effective first.
        for conjunct in sorted(crowd, key=self.cost_model.rank_key):
            plan = CrowdFilterNode(plan, conjunct)
        return plan


def estimate_plan_cost(
    plan: LogicalPlan,
    database: Database,
    cost_model: CostModel | None = None,
) -> float:
    """Predicted crowd spend of a plan (EXPLAIN's cost column).

    Walks bottom-up propagating cardinality estimates and charging crowd
    operators per estimated input row (or row pair for crowd joins).
    """
    model = cost_model or CostModel()

    def visit(node: PlanNode) -> tuple[float, float]:
        """Returns (estimated cardinality, estimated crowd cost so far)."""
        if isinstance(node, ScanNode):
            return float(len(database.table(node.table))), 0.0
        if isinstance(node, FillNode):
            card, cost = visit(node.child)
            cnull_cells = database.table(node.table).cnull_cells()
            referenced = [c for c in cnull_cells if c[1] in node.columns]
            cost += len(referenced) * model.redundancy * model.task_price
            return card, cost
        if isinstance(node, FilterNode):
            card, cost = visit(node.child)
            return card * MACHINE_SELECTIVITY, cost
        if isinstance(node, CrowdFilterNode):
            card, cost = visit(node.child)
            cost += card * model.crowd_filter_cost_per_row(node.predicate)
            return card * model.selectivity(node.predicate), cost
        if isinstance(node, JoinNode):
            left_card, left_cost = visit(node.left)
            right_card, right_cost = visit(node.right)
            return left_card * right_card * MACHINE_SELECTIVITY, left_cost + right_cost
        if isinstance(node, CrowdJoinNode):
            left_card, left_cost = visit(node.left)
            right_card, right_cost = visit(node.right)
            pairs = left_card * right_card
            cost = left_cost + right_cost + pairs * model.redundancy * model.task_price
            return pairs * CROWD_EQUAL_SELECTIVITY, cost
        if isinstance(node, CrowdOrderNode):
            card, cost = visit(node.child)
            # merge-sort comparisons ~ n log2 n
            import math

            comparisons = card * max(1.0, math.log2(max(card, 2.0)))
            cost += comparisons * model.redundancy * model.task_price
            return card, cost
        if isinstance(node, AggregateNode):
            card, cost = visit(node.child)
            # Grouped output cardinality is data-dependent; guess sqrt.
            return (card ** 0.5 if node.group_by else 1.0), cost
        if isinstance(node, (OrderNode, DistinctNode, ProjectNode)):
            return visit(node.children()[0])
        if isinstance(node, LimitNode):
            card, cost = visit(node.child)
            return min(card, float(node.limit)), cost
        children = node.children()
        if children:
            return visit(children[0])
        return 0.0, 0.0

    _card, cost = visit(plan.root)
    return cost
