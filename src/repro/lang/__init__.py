"""CrowdSQL: lexer, parser, planner, optimizer, executor, session."""

from repro.lang.ast_nodes import (
    ColumnDef,
    CreateTable,
    CrowdOrderSpec,
    DropTable,
    Insert,
    JoinClause,
    OrderSpec,
    ParsedScript,
    Select,
)
from repro.lang.executor import (
    CrowdOracle,
    ExecutionStats,
    Executor,
    QueryResult,
)
from repro.lang.interpreter import CrowdSQLSession, StatementResult
from repro.lang.lexer import Token, TokenType, tokenize
from repro.lang.optimizer import CostModel, Optimizer, estimate_plan_cost
from repro.lang.parser import parse, parse_one
from repro.lang.planner import (
    LogicalPlan,
    build_plan,
    count_crowd_operators,
)
from repro.lang.streaming import StreamingExecutor

__all__ = [
    "ColumnDef",
    "CostModel",
    "CreateTable",
    "CrowdOracle",
    "CrowdOrderSpec",
    "CrowdSQLSession",
    "DropTable",
    "ExecutionStats",
    "Executor",
    "Insert",
    "JoinClause",
    "LogicalPlan",
    "Optimizer",
    "OrderSpec",
    "ParsedScript",
    "QueryResult",
    "Select",
    "StatementResult",
    "StreamingExecutor",
    "Token",
    "TokenType",
    "build_plan",
    "count_crowd_operators",
    "estimate_plan_cost",
    "parse",
    "parse_one",
    "tokenize",
]
